//! Table- and page-granularity protocols.
//!
//! Section 3.1.1 and Section 8: protocols that serialize all writes touching
//! the same physical page (Aurora-style redo shipping) or the same table
//! (Meta's pre-C5 internal protocol) are row-granularity protocols run with a
//! coarser conflict key. This module implements exactly that on the shared
//! pipeline runtime: the schedule stage routes every write to the worker lane
//! owning its *conflict group*, so writes within a group apply strictly in
//! log order while different groups proceed in parallel. With
//! [`Granularity::Row`] the very same machinery becomes a (simplified)
//! row-granularity protocol, which the ablation benchmarks use as a sanity
//! point.

use std::sync::Arc;

use c5_common::{ReplicaConfig, RowRef};
use c5_core::pipeline::{
    PipelineOptions, PipelinePolicy, PipelineRuntime, PipelineSignals, QueuePlan, WorkSink,
};
use c5_log::{LogRecord, Segment};
use c5_storage::MvStore;

use crate::framework::BaselineShared;

/// The conflict granularity of a [`CoarseGrainReplica`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Writes to the same table serialize.
    Table,
    /// Writes to the same page serialize; a page holds this many rows
    /// (Section 3.1.1 reasons with 64 rows per 4 KiB page).
    Page {
        /// Rows per page.
        rows_per_page: u64,
    },
    /// Writes to the same row serialize (the C5 constraint, provided here for
    /// ablations that want the coarse-grain machinery with the finest key).
    Row,
}

impl Granularity {
    /// The conflict group of a row under this granularity.
    pub fn conflict_group(self, row: RowRef) -> u128 {
        match self {
            Granularity::Table => row.table.as_u32() as u128,
            Granularity::Page { rows_per_page } => {
                let page = row.key.as_u64() / rows_per_page.max(1);
                ((row.table.as_u32() as u128) << 64) | page as u128
            }
            Granularity::Row => row.packed(),
        }
    }

    /// Protocol name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Table => "table-granularity",
            Granularity::Page { .. } => "page-granularity",
            Granularity::Row => "row-granularity",
        }
    }
}

/// The coarse-grain ordering policy: route every write to the lane owning its
/// conflict group.
struct CoarsePolicy {
    granularity: Granularity,
    shared: Arc<BaselineShared>,
}

impl PipelinePolicy for CoarsePolicy {
    type Item = LogRecord;

    fn name(&self) -> &'static str {
        self.granularity.name()
    }

    fn schedule(&self, segment: Segment, sink: &mut WorkSink<LogRecord>) {
        self.shared.note_segment(&segment);
        let lanes = sink.lanes() as u128;
        for record in segment.records {
            let group = self.granularity.conflict_group(record.write.row);
            // Routing every write of a group to the same lane preserves the
            // group's log order; sending in log order preserves it per queue.
            sink.send_to((group % lanes) as usize, record);
            if sink.workers_gone() {
                return;
            }
        }
    }

    fn apply(&self, _worker: usize, record: LogRecord, _signals: &PipelineSignals) {
        let is_boundary = record.is_txn_last();
        self.shared.install_record(&record);
        // Expose at transaction boundaries so lag is sampled the moment a
        // transaction applies (the expose stage still drives periodic cuts
        // and GC; expose_progress is safe to call concurrently).
        if is_boundary {
            self.shared.expose_progress();
        }
    }

    crate::framework::baseline_policy_probes!();
}

/// A replica that serializes writes within each conflict group and
/// parallelizes across groups.
pub struct CoarseGrainReplica {
    granularity: Granularity,
    runtime: PipelineRuntime<CoarsePolicy>,
}

impl CoarseGrainReplica {
    /// Creates and starts a coarse-grain replica with `config.workers`
    /// workers.
    pub fn new(granularity: Granularity, store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        config
            .validate()
            .expect("replica configuration must be valid");
        let shared = BaselineShared::new(store, &config);
        let policy = Arc::new(CoarsePolicy {
            granularity,
            shared,
        });
        let options = PipelineOptions {
            workers: config.workers,
            queue: QueuePlan::PerWorker { capacity: 4096 },
            ingest_capacity: config.segment_channel_capacity,
            expose_interval: config.snapshot_interval,
            label: granularity.name(),
        };
        Arc::new(Self {
            granularity,
            runtime: PipelineRuntime::start(policy, options),
        })
    }

    /// The replica's granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }
}

c5_core::delegate_replica_to_pipeline!(CoarseGrainReplica, runtime);

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, SeqNo, TableId, Timestamp, TxnId, Value};
    use c5_core::replica::{drive_segments, ClonedConcurrencyControl};
    use c5_log::{segments_from_entries, TxnEntry};

    fn log_over_tables(txns: u64, tables: u32) -> Vec<Segment> {
        let entries: Vec<TxnEntry> = (1..=txns)
            .map(|i| {
                let table = (i % tables as u64) as u32;
                TxnEntry::new(
                    TxnId(i),
                    Timestamp(i),
                    vec![RowWrite::update(RowRef::new(table, i), Value::from_u64(i))],
                )
            })
            .collect();
        segments_from_entries(&entries, 8)
    }

    fn run(granularity: Granularity) {
        let store = Arc::new(MvStore::default());
        let replica = CoarseGrainReplica::new(
            granularity,
            Arc::clone(&store),
            ReplicaConfig::default().with_workers(4),
        );
        let segments = log_over_tables(100, 4);
        drive_segments(replica.as_ref(), segments);
        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 100);
        assert_eq!(metrics.applied_seq, SeqNo(100));
        assert_eq!(metrics.exposed_seq, SeqNo(100));
        assert_eq!(replica.lag().len(), 100);
    }

    #[test]
    fn table_granularity_applies_everything() {
        run(Granularity::Table);
    }

    #[test]
    fn page_granularity_applies_everything() {
        run(Granularity::Page { rows_per_page: 16 });
    }

    #[test]
    fn row_granularity_applies_everything() {
        run(Granularity::Row);
    }

    #[test]
    fn per_group_order_is_preserved() {
        // Many conflicting updates to a single row spread over four workers:
        // the final value must be the last transaction's.
        let store = Arc::new(MvStore::default());
        let replica = CoarseGrainReplica::new(
            Granularity::Page { rows_per_page: 4 },
            Arc::clone(&store),
            ReplicaConfig::default().with_workers(4),
        );
        let entries: Vec<TxnEntry> = (1..=200u64)
            .map(|i| {
                TxnEntry::new(
                    TxnId(i),
                    Timestamp(i),
                    vec![RowWrite::update(RowRef::new(0, 3), Value::from_u64(i))],
                )
            })
            .collect();
        drive_segments(replica.as_ref(), segments_from_entries(&entries, 16));
        assert_eq!(
            replica.read_view().get(RowRef::new(0, 3)).unwrap().as_u64(),
            Some(200)
        );
    }

    #[test]
    fn conflict_groups_match_granularity() {
        let row_a = RowRef::new(1, 10);
        let row_b = RowRef::new(1, 11);
        let row_c = RowRef::new(2, 10);
        assert_eq!(
            Granularity::Table.conflict_group(row_a),
            Granularity::Table.conflict_group(row_b)
        );
        assert_ne!(
            Granularity::Table.conflict_group(row_a),
            Granularity::Table.conflict_group(row_c)
        );
        let page = Granularity::Page { rows_per_page: 8 };
        assert_eq!(page.conflict_group(row_a), page.conflict_group(row_b));
        assert_ne!(
            page.conflict_group(row_a),
            page.conflict_group(RowRef::new(1, 100))
        );
        assert_ne!(
            Granularity::Row.conflict_group(row_a),
            Granularity::Row.conflict_group(row_b)
        );
        assert_eq!(Granularity::Table.name(), "table-granularity");
        let _ = TableId(0);
    }
}
