//! Table- and page-granularity protocols.
//!
//! Section 3.1.1 and Section 8: protocols that serialize all writes touching
//! the same physical page (Aurora-style redo shipping) or the same table
//! (Meta's pre-C5 internal protocol) are row-granularity protocols run with a
//! coarser conflict key. This module implements exactly that: every write is
//! routed to the worker owning its *conflict group*, so writes within a group
//! apply strictly in log order while different groups proceed in parallel.
//! With [`Granularity::Row`] the very same machinery becomes a (simplified)
//! row-granularity protocol, which the ablation benchmarks use as a sanity
//! point.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use c5_common::{ReplicaConfig, RowRef, SeqNo};
use c5_core::lag::LagTracker;
use c5_core::replica::{ClonedConcurrencyControl, ReadView, ReplicaMetrics};
use c5_log::{LogRecord, Segment};
use c5_storage::MvStore;

use crate::framework::BaselineShared;

/// The conflict granularity of a [`CoarseGrainReplica`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Writes to the same table serialize.
    Table,
    /// Writes to the same page serialize; a page holds this many rows
    /// (Section 3.1.1 reasons with 64 rows per 4 KiB page).
    Page {
        /// Rows per page.
        rows_per_page: u64,
    },
    /// Writes to the same row serialize (the C5 constraint, provided here for
    /// ablations that want the coarse-grain machinery with the finest key).
    Row,
}

impl Granularity {
    /// The conflict group of a row under this granularity.
    pub fn conflict_group(self, row: RowRef) -> u128 {
        match self {
            Granularity::Table => row.table.as_u32() as u128,
            Granularity::Page { rows_per_page } => {
                let page = row.key.as_u64() / rows_per_page.max(1);
                ((row.table.as_u32() as u128) << 64) | page as u128
            }
            Granularity::Row => row.packed(),
        }
    }

    /// Protocol name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Granularity::Table => "table-granularity",
            Granularity::Page { .. } => "page-granularity",
            Granularity::Row => "row-granularity",
        }
    }
}

/// A replica that serializes writes within each conflict group and
/// parallelizes across groups.
pub struct CoarseGrainReplica {
    granularity: Granularity,
    shared: Arc<BaselineShared>,
    worker_txs: Mutex<Option<Vec<Sender<LogRecord>>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    finished: AtomicBool,
}

impl CoarseGrainReplica {
    /// Creates and starts a coarse-grain replica with `config.workers`
    /// workers.
    pub fn new(granularity: Granularity, store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        config
            .validate()
            .expect("replica configuration must be valid");
        let shared = BaselineShared::new(store, config.op_cost);
        let mut worker_txs = Vec::with_capacity(config.workers);
        let mut threads = Vec::with_capacity(config.workers);
        for worker_id in 0..config.workers {
            let (tx, rx) = bounded::<LogRecord>(4096);
            worker_txs.push(tx);
            let shared_w = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-worker-{worker_id}", granularity.name()))
                    .spawn(move || worker_loop(shared_w, rx))
                    .expect("spawn worker"),
            );
        }
        Arc::new(Self {
            granularity,
            shared,
            worker_txs: Mutex::new(Some(worker_txs)),
            threads: Mutex::new(threads),
            finished: AtomicBool::new(false),
        })
    }

    /// The replica's granularity.
    pub fn granularity(&self) -> Granularity {
        self.granularity
    }
}

fn worker_loop(shared: Arc<BaselineShared>, rx: Receiver<LogRecord>) {
    while let Ok(record) = rx.recv() {
        let is_boundary = record.is_txn_last();
        shared.install_record(&record);
        if is_boundary {
            shared.expose_progress();
        }
    }
    // Channel closed: one final exposure in case the last record of the log
    // was applied by this worker before earlier gaps filled in.
    shared.expose_progress();
}

impl ClonedConcurrencyControl for CoarseGrainReplica {
    fn name(&self) -> &'static str {
        self.granularity.name()
    }

    fn apply_segment(&self, segment: Segment) {
        self.shared.note_segment(&segment);
        let guard = self.worker_txs.lock();
        let Some(worker_txs) = guard.as_ref() else {
            return;
        };
        let workers = worker_txs.len() as u128;
        for record in &segment.records {
            let group = self.granularity.conflict_group(record.write.row);
            let worker = (group % workers) as usize;
            // Routing every write of a group to the same worker preserves the
            // group's log order; sending in log order preserves it per queue.
            let _ = worker_txs[worker].send(record.clone());
        }
    }

    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        self.worker_txs.lock().take();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
        self.shared.wait_drained();
    }

    fn applied_seq(&self) -> SeqNo {
        self.shared.tracker.applied_watermark()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.shared.cursor.exposed()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        self.shared.read_view()
    }

    fn lag(&self) -> Arc<LagTracker> {
        Arc::clone(&self.shared.lag)
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.shared.metrics()
    }
}

impl Drop for CoarseGrainReplica {
    fn drop(&mut self) {
        self.worker_txs.lock().take();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, TableId, Timestamp, TxnId, Value};
    use c5_core::replica::drive_segments;
    use c5_log::{segments_from_entries, TxnEntry};

    fn log_over_tables(txns: u64, tables: u32) -> Vec<Segment> {
        let entries: Vec<TxnEntry> = (1..=txns)
            .map(|i| {
                let table = (i % tables as u64) as u32;
                TxnEntry::new(
                    TxnId(i),
                    Timestamp(i),
                    vec![RowWrite::update(RowRef::new(table, i), Value::from_u64(i))],
                )
            })
            .collect();
        segments_from_entries(&entries, 8)
    }

    fn run(granularity: Granularity) {
        let store = Arc::new(MvStore::default());
        let replica = CoarseGrainReplica::new(
            granularity,
            Arc::clone(&store),
            ReplicaConfig::default().with_workers(4),
        );
        let segments = log_over_tables(100, 4);
        drive_segments(replica.as_ref(), segments);
        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 100);
        assert_eq!(metrics.applied_seq, SeqNo(100));
        assert_eq!(metrics.exposed_seq, SeqNo(100));
        assert_eq!(replica.lag().len(), 100);
    }

    #[test]
    fn table_granularity_applies_everything() {
        run(Granularity::Table);
    }

    #[test]
    fn page_granularity_applies_everything() {
        run(Granularity::Page { rows_per_page: 16 });
    }

    #[test]
    fn row_granularity_applies_everything() {
        run(Granularity::Row);
    }

    #[test]
    fn per_group_order_is_preserved() {
        // Many conflicting updates to a single row spread over four workers:
        // the final value must be the last transaction's.
        let store = Arc::new(MvStore::default());
        let replica = CoarseGrainReplica::new(
            Granularity::Page { rows_per_page: 4 },
            Arc::clone(&store),
            ReplicaConfig::default().with_workers(4),
        );
        let entries: Vec<TxnEntry> = (1..=200u64)
            .map(|i| {
                TxnEntry::new(
                    TxnId(i),
                    Timestamp(i),
                    vec![RowWrite::update(RowRef::new(0, 3), Value::from_u64(i))],
                )
            })
            .collect();
        drive_segments(replica.as_ref(), segments_from_entries(&entries, 16));
        assert_eq!(
            replica.read_view().get(RowRef::new(0, 3)).unwrap().as_u64(),
            Some(200)
        );
    }

    #[test]
    fn conflict_groups_match_granularity() {
        let row_a = RowRef::new(1, 10);
        let row_b = RowRef::new(1, 11);
        let row_c = RowRef::new(2, 10);
        assert_eq!(
            Granularity::Table.conflict_group(row_a),
            Granularity::Table.conflict_group(row_b)
        );
        assert_ne!(
            Granularity::Table.conflict_group(row_a),
            Granularity::Table.conflict_group(row_c)
        );
        let page = Granularity::Page { rows_per_page: 8 };
        assert_eq!(page.conflict_group(row_a), page.conflict_group(row_b));
        assert_ne!(
            page.conflict_group(row_a),
            page.conflict_group(RowRef::new(1, 100))
        );
        assert_ne!(
            Granularity::Row.conflict_group(row_a),
            Granularity::Row.conflict_group(row_b)
        );
        assert_eq!(Granularity::Table.name(), "table-granularity");
        let _ = TableId(0);
    }
}
