//! State and helpers shared by every baseline protocol.
//!
//! All baselines expose the same observable surface as C5 — an applied
//! watermark, a transaction-aligned exposed prefix, replication-lag samples —
//! and all of them run on the shared pipeline runtime
//! ([`c5_core::pipeline`]), so the experiments measure every protocol
//! identically. This module holds the common bookkeeping so each baseline
//! only implements its own *ordering policy* (what may run in parallel with
//! what).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use c5_common::{ReplicaConfig, SeqNo, Timestamp};
use c5_core::lag::LagTracker;
use c5_core::pipeline::{BoundaryLedger, GcDriver};
use c5_core::progress::WatermarkTracker;
use c5_core::replica::{ReadView, ReplicaMetrics};
use c5_core::snapshotter::SnapshotCursor;
use c5_log::{LogRecord, Segment};
use c5_storage::MvStore;

/// Shared bookkeeping for a baseline replica.
pub struct BaselineShared {
    /// The backup's store.
    pub store: Arc<MvStore>,
    /// Applied-prefix tracker.
    pub tracker: WatermarkTracker,
    /// Replication-lag samples.
    pub lag: Arc<LagTracker>,
    /// Exposed-prefix cursor (timestamped; baselines expose the latest
    /// transaction-aligned applied prefix).
    pub cursor: SnapshotCursor,
    /// Boundary/lag bookkeeping (shared with every other policy).
    ledger: BoundaryLedger,
    /// Per-operation cost model (`d`).
    pub op_cost: c5_common::OpCost,
    /// Version-GC horizon trailing the exposed cut.
    gc: GcDriver,
    applied_writes: AtomicU64,
    applied_txns: AtomicU64,
}

impl BaselineShared {
    /// Creates shared state over `store`, taking the cost model and GC trail
    /// from `config`.
    pub fn new(store: Arc<MvStore>, config: &ReplicaConfig) -> Arc<Self> {
        let cursor = SnapshotCursor::timestamped(Arc::clone(&store));
        let gc = GcDriver::new(Arc::clone(&store), config.gc_trail);
        let ledger = BoundaryLedger::new();
        let lag = Arc::clone(ledger.lag());
        Arc::new(Self {
            store,
            tracker: WatermarkTracker::new(),
            lag,
            cursor,
            ledger,
            op_cost: config.op_cost,
            gc,
            applied_writes: AtomicU64::new(0),
            applied_txns: AtomicU64::new(0),
        })
    }

    /// Records the transaction boundaries of a segment (call from the
    /// schedule stage, in log order) and remembers the last position seen.
    pub fn note_segment(&self, segment: &Segment) {
        self.ledger.note_segment(segment);
    }

    /// Installs one record's write into the store (the caller is responsible
    /// for only calling this when the protocol's ordering policy allows it),
    /// charging the backup-side cost and updating progress counters.
    pub fn install_record(&self, record: &LogRecord) {
        self.op_cost.charge_backup();
        self.store.install(
            record.write.row,
            Timestamp(record.seq.as_u64()),
            record.write.kind,
            record.write.value.clone(),
        );
        self.tracker.mark_applied(record.seq, record.is_txn_last());
        self.applied_writes.fetch_add(1, Ordering::Relaxed);
        if record.is_txn_last() {
            self.applied_txns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Advances the exposed prefix to the latest transaction-aligned applied
    /// position and records lag samples for the newly exposed transactions.
    /// Safe to call from workers and the expose stage concurrently (the cut
    /// advance is monotonic, the boundary drain serialized).
    pub fn expose_progress(&self) {
        let n = self.tracker.boundary_watermark();
        if n > self.cursor.exposed() {
            self.cursor.advance(n);
        }
        self.ledger.drain_exposed(self.cursor.exposed());
    }

    /// Drives the GC horizon towards the exposed cut (called from the expose
    /// stage).
    pub fn collect_garbage(&self) {
        self.gc.run(self.cursor.exposed());
    }

    /// The last log position shipped to this replica so far.
    pub fn final_seq(&self) -> SeqNo {
        self.ledger.shipped_seq()
    }

    /// A read view of the exposed prefix.
    pub fn read_view(&self) -> Box<dyn ReadView> {
        self.cursor.read_view()
    }

    /// Progress counters in the shared format.
    pub fn metrics(&self) -> ReplicaMetrics {
        ReplicaMetrics {
            applied_writes: self.applied_writes.load(Ordering::Relaxed),
            applied_txns: self.applied_txns.load(Ordering::Relaxed),
            applied_seq: self.tracker.applied_watermark(),
            exposed_seq: self.cursor.exposed(),
            deferred_writes: 0,
            reclaimed_versions: self.gc.reclaimed(),
            cross_shard_txns: 0,
        }
    }
}

/// Expands the [`c5_core::pipeline::PipelinePolicy`] methods that every
/// baseline policy implements identically by delegating to its
/// `shared: Arc<BaselineShared>` field — the expose step, garbage
/// collection, and all progress probes. Invoke inside the policy's
/// `impl PipelinePolicy` block, leaving only the ordering policy
/// (`name`/`schedule`/`apply`) to write by hand.
macro_rules! baseline_policy_probes {
    () => {
        fn expose(&self, _signals: &c5_core::pipeline::PipelineSignals) {
            self.shared.expose_progress();
        }

        fn collect_garbage(&self) {
            self.shared.collect_garbage();
        }

        fn applied_seq(&self) -> c5_common::SeqNo {
            self.shared.tracker.applied_watermark()
        }

        fn exposure_target(&self) -> c5_common::SeqNo {
            self.shared.tracker.boundary_watermark()
        }

        fn exposed_seq(&self) -> c5_common::SeqNo {
            self.shared.cursor.exposed()
        }

        fn shipped_seq(&self) -> c5_common::SeqNo {
            self.shared.final_seq()
        }

        fn read_view(&self) -> Box<dyn c5_core::replica::ReadView> {
            self.shared.read_view()
        }

        fn lag(&self) -> std::sync::Arc<c5_core::lag::LagTracker> {
            std::sync::Arc::clone(&self.shared.lag)
        }

        fn metrics(&self) -> c5_core::replica::ReplicaMetrics {
            self.shared.metrics()
        }

        fn store(&self) -> &std::sync::Arc<c5_storage::MvStore> {
            &self.shared.store
        }
    };
}
pub(crate) use baseline_policy_probes;

impl std::fmt::Debug for BaselineShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineShared")
            .field("applied", &self.tracker.applied_watermark())
            .field("exposed", &self.cursor.exposed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, RowWrite, TxnId, Value};
    use c5_log::{segments_from_entries, TxnEntry};

    fn segment() -> Segment {
        let entries = vec![
            TxnEntry::new(
                TxnId(1),
                Timestamp(1),
                vec![
                    RowWrite::insert(RowRef::new(0, 1), Value::from_u64(1)),
                    RowWrite::insert(RowRef::new(0, 2), Value::from_u64(2)),
                ],
            ),
            TxnEntry::new(
                TxnId(2),
                Timestamp(2),
                vec![RowWrite::update(RowRef::new(0, 1), Value::from_u64(10))],
            ),
        ];
        segments_from_entries(&entries, 16).remove(0)
    }

    #[test]
    fn install_and_expose_track_progress_and_lag() {
        let shared = BaselineShared::new(Arc::new(MvStore::default()), &ReplicaConfig::default());
        let seg = segment();
        shared.note_segment(&seg);
        for record in &seg.records {
            shared.install_record(record);
        }
        shared.expose_progress();

        let metrics = shared.metrics();
        assert_eq!(metrics.applied_writes, 3);
        assert_eq!(metrics.applied_txns, 2);
        assert_eq!(metrics.applied_seq, SeqNo(3));
        assert_eq!(metrics.exposed_seq, SeqNo(3));
        assert_eq!(shared.lag.len(), 2);
        assert_eq!(shared.final_seq(), SeqNo(3));

        let view = shared.read_view();
        assert_eq!(view.get(RowRef::new(0, 1)).unwrap().as_u64(), Some(10));
    }

    #[test]
    fn exposure_waits_for_transaction_boundaries() {
        let shared = BaselineShared::new(Arc::new(MvStore::default()), &ReplicaConfig::default());
        let seg = segment();
        shared.note_segment(&seg);
        // Apply only the first write of txn 1.
        shared.install_record(&seg.records[0]);
        shared.expose_progress();
        assert_eq!(shared.metrics().exposed_seq, SeqNo::ZERO);
        assert_eq!(shared.lag.len(), 0);
    }

    #[test]
    fn gc_reclaims_versions_behind_the_cut() {
        let shared = BaselineShared::new(
            Arc::new(MvStore::default()),
            &ReplicaConfig::default().with_gc_trail(0),
        );
        // One hot row updated by every transaction.
        let entries: Vec<TxnEntry> = (1..=64u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![RowWrite::update(RowRef::new(0, 1), Value::from_u64(t))],
                )
            })
            .collect();
        for seg in segments_from_entries(&entries, 16) {
            shared.note_segment(&seg);
            for record in &seg.records {
                shared.install_record(record);
            }
        }
        shared.expose_progress();
        shared.collect_garbage();
        let metrics = shared.metrics();
        assert!(metrics.reclaimed_versions > 0);
        // The exposed read is unaffected.
        assert_eq!(
            shared.read_view().get(RowRef::new(0, 1)).unwrap().as_u64(),
            Some(64)
        );
    }
}
