//! State and helpers shared by every baseline protocol.
//!
//! All baselines expose the same observable surface as C5 — an applied
//! watermark, a transaction-aligned exposed prefix, replication-lag samples —
//! so the experiments measure every protocol identically. This module holds
//! that machinery so each baseline only implements its own *ordering policy*
//! (what may run in parallel with what).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use c5_common::{OpCost, SeqNo, Timestamp};
use c5_core::lag::LagTracker;
use c5_core::progress::WatermarkTracker;
use c5_core::replica::{ReadView, ReplicaMetrics};
use c5_core::snapshotter::SnapshotCursor;
use c5_log::{now_nanos, LogRecord, Segment};
use c5_storage::MvStore;

/// Shared bookkeeping for a baseline replica.
pub struct BaselineShared {
    /// The backup's store.
    pub store: Arc<MvStore>,
    /// Applied-prefix tracker.
    pub tracker: WatermarkTracker,
    /// Replication-lag samples.
    pub lag: Arc<LagTracker>,
    /// Exposed-prefix cursor (timestamped; baselines expose the latest
    /// transaction-aligned applied prefix).
    pub cursor: SnapshotCursor,
    /// Transaction boundaries awaiting exposure, in log order.
    boundaries: Mutex<std::collections::VecDeque<(SeqNo, u64)>>,
    /// Per-operation cost model (`d`).
    pub op_cost: OpCost,
    applied_writes: AtomicU64,
    applied_txns: AtomicU64,
    final_seq: AtomicU64,
}

impl BaselineShared {
    /// Creates shared state over `store`.
    pub fn new(store: Arc<MvStore>, op_cost: OpCost) -> Arc<Self> {
        let cursor = SnapshotCursor::timestamped(Arc::clone(&store));
        Arc::new(Self {
            store,
            tracker: WatermarkTracker::new(),
            lag: Arc::new(LagTracker::new()),
            cursor,
            boundaries: Mutex::new(std::collections::VecDeque::new()),
            op_cost,
            applied_writes: AtomicU64::new(0),
            applied_txns: AtomicU64::new(0),
            final_seq: AtomicU64::new(0),
        })
    }

    /// Records the transaction boundaries of a segment (call from the
    /// dispatch path, in log order) and remembers the last position seen.
    pub fn note_segment(&self, segment: &Segment) {
        let mut boundaries = self.boundaries.lock();
        for record in &segment.records {
            if record.is_txn_last() {
                boundaries.push_back((record.seq, record.commit_wall_nanos));
            }
        }
        if let Some(last) = segment.last_seq() {
            self.final_seq.fetch_max(last.as_u64(), Ordering::Release);
        }
    }

    /// Installs one record's write into the store (the caller is responsible
    /// for only calling this when the protocol's ordering policy allows it),
    /// charging the backup-side cost and updating progress counters.
    pub fn install_record(&self, record: &LogRecord) {
        self.op_cost.charge_backup();
        self.store.install(
            record.write.row,
            Timestamp(record.seq.as_u64()),
            record.write.kind,
            record.write.value.clone(),
        );
        self.tracker.mark_applied(record.seq, record.is_txn_last());
        self.applied_writes.fetch_add(1, Ordering::Relaxed);
        if record.is_txn_last() {
            self.applied_txns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Advances the exposed prefix to the latest transaction-aligned applied
    /// position and records lag samples for the newly exposed transactions.
    pub fn expose_progress(&self) {
        let n = self.tracker.boundary_watermark();
        if n > self.cursor.exposed() {
            self.cursor.advance(n);
        }
        let exposed = self.cursor.exposed();
        let now = now_nanos();
        let mut boundaries = self.boundaries.lock();
        while let Some(&(seq, committed_at)) = boundaries.front() {
            if seq <= exposed {
                boundaries.pop_front();
                self.lag.record(seq, committed_at, now);
            } else {
                break;
            }
        }
    }

    /// The last log position shipped to this replica so far.
    pub fn final_seq(&self) -> SeqNo {
        SeqNo(self.final_seq.load(Ordering::Acquire))
    }

    /// Blocks until every shipped write has been applied and exposed.
    pub fn wait_drained(&self) {
        let target = self.final_seq();
        while self.tracker.applied_watermark() < target {
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        self.expose_progress();
    }

    /// A read view of the exposed prefix.
    pub fn read_view(&self) -> Box<dyn ReadView> {
        self.cursor.read_view()
    }

    /// Progress counters in the shared format.
    pub fn metrics(&self) -> ReplicaMetrics {
        ReplicaMetrics {
            applied_writes: self.applied_writes.load(Ordering::Relaxed),
            applied_txns: self.applied_txns.load(Ordering::Relaxed),
            applied_seq: self.tracker.applied_watermark(),
            exposed_seq: self.cursor.exposed(),
            deferred_retries: 0,
        }
    }
}

impl std::fmt::Debug for BaselineShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineShared")
            .field("applied", &self.tracker.applied_watermark())
            .field("exposed", &self.cursor.exposed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, RowWrite, TxnId, Value};
    use c5_log::{segments_from_entries, TxnEntry};

    fn segment() -> Segment {
        let entries = vec![
            TxnEntry::new(
                TxnId(1),
                Timestamp(1),
                vec![
                    RowWrite::insert(RowRef::new(0, 1), Value::from_u64(1)),
                    RowWrite::insert(RowRef::new(0, 2), Value::from_u64(2)),
                ],
            ),
            TxnEntry::new(
                TxnId(2),
                Timestamp(2),
                vec![RowWrite::update(RowRef::new(0, 1), Value::from_u64(10))],
            ),
        ];
        segments_from_entries(&entries, 16).remove(0)
    }

    #[test]
    fn install_and_expose_track_progress_and_lag() {
        let shared = BaselineShared::new(Arc::new(MvStore::default()), OpCost::free());
        let seg = segment();
        shared.note_segment(&seg);
        for record in &seg.records {
            shared.install_record(record);
        }
        shared.expose_progress();

        let metrics = shared.metrics();
        assert_eq!(metrics.applied_writes, 3);
        assert_eq!(metrics.applied_txns, 2);
        assert_eq!(metrics.applied_seq, SeqNo(3));
        assert_eq!(metrics.exposed_seq, SeqNo(3));
        assert_eq!(shared.lag.len(), 2);
        assert_eq!(shared.final_seq(), SeqNo(3));

        let view = shared.read_view();
        assert_eq!(view.get(RowRef::new(0, 1)).unwrap().as_u64(), Some(10));
    }

    #[test]
    fn exposure_waits_for_transaction_boundaries() {
        let shared = BaselineShared::new(Arc::new(MvStore::default()), OpCost::free());
        let seg = segment();
        shared.note_segment(&seg);
        // Apply only the first write of txn 1.
        shared.install_record(&seg.records[0]);
        shared.expose_progress();
        assert_eq!(shared.metrics().exposed_seq, SeqNo::ZERO);
        assert_eq!(shared.lag.len(), 0);
    }
}
