//! KuaFu: the transaction-granularity baseline.
//!
//! KuaFu (Hong et al., ICDE 2013) is the paper's main comparison point and is
//! "nearly identical to MySQL 8's writeset-based parallel replication"
//! (Section 6). The protocol's defining constraint (Section 3.1): for any two
//! transactions whose write sets intersect, all of the earlier one's writes
//! execute before any of the later one's. Transactions with disjoint write
//! sets apply concurrently, each on a single worker.
//!
//! On the shared pipeline runtime, the schedule stage tracks, per row, the
//! last transaction that wrote it, so every incoming transaction knows
//! exactly which earlier transactions it must wait for. Workers pull
//! transactions from the shared queue in commit order, wait until every
//! dependency has finished, then apply the transaction's writes.
//!
//! Section 7.3's ablation ("we re-ran the experiment but disabled its
//! scheduler's calculation of transaction-granularity constraints") is the
//! [`KuaFuConfig::ignore_constraints`] flag: dependencies are still computed
//! but not waited on, which removes the protocol's correctness guarantee and
//! serves purely to show that the constraints — not implementation overhead —
//! are what make KuaFu lag.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use c5_common::{ReplicaConfig, RowRef};
use c5_core::pipeline::{
    PipelineOptions, PipelinePolicy, PipelineRuntime, PipelineSignals, QueuePlan, WorkSink,
};
use c5_log::{LogRecord, Segment};
use c5_storage::MvStore;

use crate::framework::BaselineShared;

/// KuaFu-specific configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct KuaFuConfig {
    /// Skip waiting on write-set dependencies (the Section 7.3 ablation).
    /// The replica no longer guarantees convergence; use only to measure the
    /// cost of the constraints themselves.
    pub ignore_constraints: bool,
}

/// A transaction handed to the workers.
struct TxnWork {
    /// Dense transaction index in commit order (1-based).
    index: u64,
    /// Indices of earlier transactions whose write sets intersect this one's.
    deps: Vec<u64>,
    records: Vec<LogRecord>,
}

/// Tracks which transaction indices have finished applying.
#[derive(Default)]
struct CompletionBoard {
    done: Mutex<HashSet<u64>>,
    cv: Condvar,
}

impl CompletionBoard {
    fn mark_done(&self, index: u64) {
        self.done.lock().insert(index);
        self.cv.notify_all();
    }

    /// Waits until every index in `deps` is done; returns `false` if
    /// `should_abort` fires first.
    fn wait_for(&self, deps: &[u64], should_abort: &impl Fn() -> bool) -> bool {
        if deps.is_empty() {
            return true;
        }
        let mut done = self.done.lock();
        loop {
            if deps.iter().all(|d| done.contains(d)) {
                return true;
            }
            if should_abort() {
                return false;
            }
            self.cv.wait_for(&mut done, Duration::from_millis(1));
        }
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

/// Schedule-stage state: which transaction last wrote each row.
#[derive(Default)]
struct DispatchState {
    last_writer: HashMap<RowRef, u64>,
    next_index: u64,
    pending_txn: Vec<LogRecord>,
}

/// KuaFu's ordering policy on the shared pipeline runtime.
struct KuaFuPolicy {
    config: KuaFuConfig,
    shared: Arc<BaselineShared>,
    board: CompletionBoard,
    /// Only the schedule stage locks this.
    dispatch: Mutex<DispatchState>,
}

impl PipelinePolicy for KuaFuPolicy {
    type Item = TxnWork;

    fn name(&self) -> &'static str {
        if self.config.ignore_constraints {
            "kuafu-unconstrained"
        } else {
            "kuafu"
        }
    }

    fn schedule(&self, segment: Segment, sink: &mut WorkSink<TxnWork>) {
        self.shared.note_segment(&segment);
        // Group records into whole transactions and compute, per transaction,
        // the set of earlier transactions it conflicts with.
        let mut dispatch = self.dispatch.lock();
        for record in segment.records {
            let is_last = record.is_txn_last();
            dispatch.pending_txn.push(record);
            if is_last {
                let records = std::mem::take(&mut dispatch.pending_txn);
                dispatch.next_index += 1;
                let index = dispatch.next_index;
                let mut deps: Vec<u64> = Vec::new();
                for r in &records {
                    if let Some(&writer) = dispatch.last_writer.get(&r.write.row) {
                        if writer != index && !deps.contains(&writer) {
                            deps.push(writer);
                        }
                    }
                    dispatch.last_writer.insert(r.write.row, index);
                }
                sink.send(TxnWork {
                    index,
                    deps,
                    records,
                });
                if sink.workers_gone() {
                    return;
                }
            }
        }
    }

    fn apply(&self, _worker: usize, work: TxnWork, signals: &PipelineSignals) {
        if !self.config.ignore_constraints
            && !self
                .board
                .wait_for(&work.deps, &|| signals.shutdown_requested())
        {
            return;
        }
        for record in &work.records {
            self.shared.install_record(record);
        }
        self.board.mark_done(work.index);
        // Expose after every transaction so lag is sampled the moment it
        // applies (the expose stage still drives periodic cuts and GC).
        self.shared.expose_progress();
    }

    fn interrupt(&self) {
        self.board.wake_all();
    }

    crate::framework::baseline_policy_probes!();
}

/// The KuaFu replica.
pub struct KuaFuReplica {
    config: KuaFuConfig,
    runtime: PipelineRuntime<KuaFuPolicy>,
}

impl KuaFuReplica {
    /// Creates and starts a KuaFu replica with `replica_config.workers`
    /// workers.
    pub fn new(
        store: Arc<MvStore>,
        replica_config: ReplicaConfig,
        config: KuaFuConfig,
    ) -> Arc<Self> {
        replica_config
            .validate()
            .expect("replica configuration must be valid");
        let shared = BaselineShared::new(store, &replica_config);
        let policy = Arc::new(KuaFuPolicy {
            config,
            shared,
            board: CompletionBoard::default(),
            dispatch: Mutex::new(DispatchState::default()),
        });
        let options = PipelineOptions {
            workers: replica_config.workers,
            queue: QueuePlan::Shared { capacity: 4096 },
            ingest_capacity: replica_config.segment_channel_capacity,
            expose_interval: replica_config.snapshot_interval,
            label: "kuafu",
        };
        Arc::new(Self {
            config,
            runtime: PipelineRuntime::start(policy, options),
        })
    }

    /// The KuaFu-specific configuration.
    pub fn kuafu_config(&self) -> KuaFuConfig {
        self.config
    }
}

c5_core::delegate_replica_to_pipeline!(KuaFuReplica, runtime);

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, Timestamp, TxnId, Value};
    use c5_core::replica::{drive_segments, ClonedConcurrencyControl};
    use c5_log::{segments_from_entries, TxnEntry};

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    /// Adversarial-style log: every transaction inserts unique rows and
    /// updates the shared row 0, so every transaction conflicts with its
    /// predecessor.
    fn conflicting_log(txns: u64, inserts: u64) -> Vec<Segment> {
        let entries: Vec<TxnEntry> = (1..=txns)
            .map(|t| {
                let mut writes: Vec<RowWrite> = (0..inserts)
                    .map(|i| RowWrite::insert(row(1 + t * inserts + i), Value::from_u64(i)))
                    .collect();
                writes.push(RowWrite::update(row(0), Value::from_u64(t)));
                TxnEntry::new(TxnId(t), Timestamp(t), writes)
            })
            .collect();
        segments_from_entries(&entries, 32)
    }

    fn replica(workers: usize, config: KuaFuConfig) -> (Arc<MvStore>, Arc<KuaFuReplica>) {
        let store = Arc::new(MvStore::default());
        store.install(
            row(0),
            Timestamp::ZERO,
            c5_common::WriteKind::Insert,
            Some(Value::from_u64(0)),
        );
        let replica = KuaFuReplica::new(
            Arc::clone(&store),
            ReplicaConfig::default().with_workers(workers),
            config,
        );
        (store, replica)
    }

    #[test]
    fn conflicting_transactions_serialize_correctly() {
        let (_store, replica) = replica(4, KuaFuConfig::default());
        drive_segments(replica.as_ref(), conflicting_log(100, 3));

        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 100);
        assert_eq!(metrics.exposed_seq, metrics.applied_seq);
        // The hot row reflects the last transaction: conflicting transactions
        // were applied in commit order.
        assert_eq!(replica.read_view().get(row(0)).unwrap().as_u64(), Some(100));
        assert_eq!(replica.lag().len(), 100);
        assert_eq!(replica.name(), "kuafu");
    }

    #[test]
    fn non_conflicting_transactions_apply_fully() {
        let (_store, replica) = replica(4, KuaFuConfig::default());
        let entries: Vec<TxnEntry> = (1..=200u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![RowWrite::insert(row(t), Value::from_u64(t))],
                )
            })
            .collect();
        drive_segments(replica.as_ref(), segments_from_entries(&entries, 16));
        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 200);
        assert_eq!(metrics.applied_writes, 200);
    }

    #[test]
    fn unconstrained_mode_still_applies_everything() {
        let (_store, replica) = replica(
            4,
            KuaFuConfig {
                ignore_constraints: true,
            },
        );
        drive_segments(replica.as_ref(), conflicting_log(50, 2));
        assert_eq!(replica.metrics().applied_txns, 50);
        assert_eq!(replica.name(), "kuafu-unconstrained");
    }

    #[test]
    fn dependencies_are_computed_per_write_set_intersection() {
        // txn1 writes {1}, txn2 writes {2}, txn3 writes {1,2}: txn3 depends on
        // both, txn2 depends on nothing. We verify behaviourally: the final
        // state reflects txn3's writes even with many workers racing.
        let (_store, replica) = replica(4, KuaFuConfig::default());
        let entries = vec![
            TxnEntry::new(
                TxnId(1),
                Timestamp(1),
                vec![RowWrite::update(row(1), Value::from_u64(1))],
            ),
            TxnEntry::new(
                TxnId(2),
                Timestamp(2),
                vec![RowWrite::update(row(2), Value::from_u64(2))],
            ),
            TxnEntry::new(
                TxnId(3),
                Timestamp(3),
                vec![
                    RowWrite::update(row(1), Value::from_u64(31)),
                    RowWrite::update(row(2), Value::from_u64(32)),
                ],
            ),
        ];
        drive_segments(replica.as_ref(), segments_from_entries(&entries, 16));
        let view = replica.read_view();
        assert_eq!(view.get(row(1)).unwrap().as_u64(), Some(31));
        assert_eq!(view.get(row(2)).unwrap().as_u64(), Some(32));
    }
}
