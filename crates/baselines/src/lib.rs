//! Baseline cloned concurrency control protocols.
//!
//! The paper's evaluation (Sections 6–8) compares C5 against the protocols
//! that were deployed or proposed before it:
//!
//! * **KuaFu** ([`kuafu::KuaFuReplica`]) — the state-of-the-art
//!   transaction-granularity protocol (Hong et al., ICDE 2013), essentially
//!   identical to MySQL 8's writeset-based parallel replication: transactions
//!   with disjoint write sets apply in parallel, transactions whose write
//!   sets intersect apply in commit order, and all of a transaction's writes
//!   execute on one worker.
//! * **Single-threaded replay** ([`single::SingleThreadedReplica`]) — MySQL
//!   5.6's default and the protocol whose two-hour production lag opens
//!   Section 8 / Figure 12.
//! * **Table- and page-granularity** ([`coarse::CoarseGrainReplica`]) —
//!   protocols that serialize writes touching the same table (Meta's earlier
//!   internal protocol, Figure 12) or the same physical page (Aurora-style
//!   redo shipping, Section 3.1.1). Both are the row-granularity protocol run
//!   with a coarser conflict key, which is exactly how this crate implements
//!   them.
//!
//! Every baseline implements the same
//! [`c5_core::ClonedConcurrencyControl`] trait as C5, exposes a
//! transaction-aligned prefix of the log to read-only transactions, and
//! records replication-lag samples identically, so the experiment harness
//! treats all protocols uniformly.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod coarse;
pub mod framework;
pub mod kuafu;
pub mod single;

pub use coarse::{CoarseGrainReplica, Granularity};
pub use kuafu::{KuaFuConfig, KuaFuReplica};
pub use single::SingleThreadedReplica;
