//! Single-threaded log replay.
//!
//! MySQL 5.6's default cloned concurrency control (Section 8, Figure 12):
//! one thread applies the log strictly in order. It trivially guarantees
//! monotonic prefix consistency and is trivially unable to keep up with any
//! primary that executes writes in parallel — the protocol whose daily
//! two-hour lag at Meta motivates the paper.

use std::sync::Arc;

use c5_common::{OpCost, ReplicaConfig, SeqNo};
use c5_core::lag::LagTracker;
use c5_core::replica::{ClonedConcurrencyControl, ReadView, ReplicaMetrics};
use c5_log::Segment;
use c5_storage::MvStore;

use crate::framework::BaselineShared;

/// The single-threaded replica.
pub struct SingleThreadedReplica {
    shared: Arc<BaselineShared>,
}

impl SingleThreadedReplica {
    /// Creates a single-threaded replica over `store`. Only the `op_cost`
    /// field of the configuration is used (there is exactly one worker by
    /// definition).
    pub fn new(store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        Arc::new(Self {
            shared: BaselineShared::new(store, config.op_cost),
        })
    }

    /// Creates a replica with an explicit cost model.
    pub fn with_cost(store: Arc<MvStore>, op_cost: OpCost) -> Arc<Self> {
        Arc::new(Self {
            shared: BaselineShared::new(store, op_cost),
        })
    }
}

impl ClonedConcurrencyControl for SingleThreadedReplica {
    fn name(&self) -> &'static str {
        "single-threaded"
    }

    fn apply_segment(&self, segment: Segment) {
        // Everything happens on the calling thread, strictly in log order.
        self.shared.note_segment(&segment);
        for record in &segment.records {
            self.shared.install_record(record);
            if record.is_txn_last() {
                self.shared.expose_progress();
            }
        }
    }

    fn finish(&self) {
        self.shared.wait_drained();
    }

    fn applied_seq(&self) -> SeqNo {
        self.shared.tracker.applied_watermark()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.shared.cursor.exposed()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        self.shared.read_view()
    }

    fn lag(&self) -> Arc<LagTracker> {
        Arc::clone(&self.shared.lag)
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.shared.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, RowWrite, Timestamp, TxnId, Value};
    use c5_core::replica::drive_segments;
    use c5_log::{segments_from_entries, TxnEntry};

    #[test]
    fn applies_everything_in_order() {
        let store = Arc::new(MvStore::default());
        let replica = SingleThreadedReplica::new(Arc::clone(&store), ReplicaConfig::default());

        let entries: Vec<TxnEntry> = (1..=20u64)
            .map(|i| {
                TxnEntry::new(
                    TxnId(i),
                    Timestamp(i),
                    vec![RowWrite::update(RowRef::new(0, 0), Value::from_u64(i))],
                )
            })
            .collect();
        let segments = segments_from_entries(&entries, 4);
        drive_segments(replica.as_ref(), segments);

        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 20);
        assert_eq!(metrics.applied_seq, SeqNo(20));
        assert_eq!(metrics.exposed_seq, SeqNo(20));
        assert_eq!(replica.lag().len(), 20);
        assert_eq!(
            replica.read_view().get(RowRef::new(0, 0)).unwrap().as_u64(),
            Some(20)
        );
        assert_eq!(replica.name(), "single-threaded");
    }
}
