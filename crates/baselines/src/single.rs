//! Single-threaded log replay.
//!
//! MySQL 5.6's default cloned concurrency control (Section 8, Figure 12):
//! one thread applies the log strictly in order. It trivially guarantees
//! monotonic prefix consistency and is trivially unable to keep up with any
//! primary that executes writes in parallel — the protocol whose daily
//! two-hour lag at Meta motivates the paper. On the shared pipeline runtime
//! this is simply the degenerate policy: one worker, one shared queue, whole
//! segments applied in order.

use std::sync::Arc;

use c5_common::{OpCost, ReplicaConfig};
use c5_core::pipeline::{
    PipelineOptions, PipelinePolicy, PipelineRuntime, PipelineSignals, QueuePlan, WorkSink,
};
use c5_log::Segment;
use c5_storage::MvStore;

use crate::framework::BaselineShared;

/// The single-threaded ordering policy: whole segments, one worker, log
/// order.
struct SinglePolicy {
    shared: Arc<BaselineShared>,
}

impl PipelinePolicy for SinglePolicy {
    type Item = Segment;

    fn name(&self) -> &'static str {
        "single-threaded"
    }

    fn schedule(&self, segment: Segment, sink: &mut WorkSink<Segment>) {
        self.shared.note_segment(&segment);
        sink.send(segment);
    }

    fn apply(&self, _worker: usize, segment: Segment, _signals: &PipelineSignals) {
        for record in &segment.records {
            self.shared.install_record(record);
            // Expose at every transaction boundary, so lag is sampled the
            // moment a transaction applies rather than at the next expose
            // tick (the expose stage still drives periodic cuts and GC).
            if record.is_txn_last() {
                self.shared.expose_progress();
            }
        }
    }

    crate::framework::baseline_policy_probes!();
}

/// The single-threaded replica.
pub struct SingleThreadedReplica {
    runtime: PipelineRuntime<SinglePolicy>,
}

impl SingleThreadedReplica {
    /// Creates a single-threaded replica over `store`. The `workers` field of
    /// the configuration is ignored (there is exactly one worker by
    /// definition).
    pub fn new(store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        let shared = BaselineShared::new(store, &config);
        let policy = Arc::new(SinglePolicy { shared });
        let options = PipelineOptions {
            workers: 1,
            queue: QueuePlan::Shared { capacity: 1024 },
            ingest_capacity: config.segment_channel_capacity,
            expose_interval: config.snapshot_interval,
            label: "single-threaded",
        };
        Arc::new(Self {
            runtime: PipelineRuntime::start(policy, options),
        })
    }

    /// Creates a replica with an explicit cost model.
    pub fn with_cost(store: Arc<MvStore>, op_cost: OpCost) -> Arc<Self> {
        Self::new(store, ReplicaConfig::default().with_op_cost(op_cost))
    }
}

c5_core::delegate_replica_to_pipeline!(SingleThreadedReplica, runtime);

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, RowWrite, SeqNo, Timestamp, TxnId, Value};
    use c5_core::replica::{drive_segments, ClonedConcurrencyControl};
    use c5_log::{segments_from_entries, TxnEntry};

    #[test]
    fn applies_everything_in_order() {
        let store = Arc::new(MvStore::default());
        let replica = SingleThreadedReplica::new(Arc::clone(&store), ReplicaConfig::default());

        let entries: Vec<TxnEntry> = (1..=20u64)
            .map(|i| {
                TxnEntry::new(
                    TxnId(i),
                    Timestamp(i),
                    vec![RowWrite::update(RowRef::new(0, 0), Value::from_u64(i))],
                )
            })
            .collect();
        let segments = segments_from_entries(&entries, 4);
        drive_segments(replica.as_ref(), segments);

        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 20);
        assert_eq!(metrics.applied_seq, SeqNo(20));
        assert_eq!(metrics.exposed_seq, SeqNo(20));
        assert_eq!(replica.lag().len(), 20);
        assert_eq!(
            replica.read_view().get(RowRef::new(0, 0)).unwrap().as_u64(),
            Some(20)
        );
        assert_eq!(replica.name(), "single-threaded");
    }
}
