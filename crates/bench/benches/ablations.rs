//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the explicit per-row queue structure of Section 4.1 versus the embedded
//!   `prev_seq` FIFOs of Section 7.2 (why the production scheduler embeds the
//!   queues in the log);
//! * the C5-MyRocks one-worker-per-transaction constraint versus faithful
//!   row-granularity execution;
//! * the snapshot-interval knob `I` of Section 5.2.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use c5_bench::harness::{preload, ReplicaSpec};
use c5_common::{ReplicaConfig, RowRef, RowWrite, Timestamp, TxnId, Value};
use c5_core::design_queues::RowQueueScheduler;
use c5_core::replica::drive_segments;
use c5_core::scheduler::SchedulerState;
use c5_log::{segments_from_entries, Segment, TxnEntry};
use c5_storage::MvStore;
use c5_workloads::synthetic::adversarial_population;

fn mixed_log(txns: u64) -> Vec<Segment> {
    let hot = c5_workloads::synthetic::hot_row();
    let entries: Vec<TxnEntry> = (1..=txns)
        .map(|t| {
            let mut writes: Vec<RowWrite> = (0..4)
                .map(|i| {
                    RowWrite::insert(
                        RowRef::new(hot.table.as_u32(), 1 + t * 4 + i),
                        Value::from_u64(i),
                    )
                })
                .collect();
            writes.push(RowWrite::update(hot, Value::from_u64(t)));
            TxnEntry::new(TxnId(t), Timestamp(t), writes)
        })
        .collect();
    segments_from_entries(&entries, 256)
}

/// Explicit queues (Section 4.1) vs embedded prev_seq FIFOs (Section 7.2).
fn bench_design_vs_embedded(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_representation");
    let segments = mixed_log(5_000);
    let records: u64 = segments.iter().map(|s| s.len() as u64).sum();
    group.throughput(Throughput::Elements(records));

    group.bench_function("embedded_prev_seq", |b| {
        b.iter(|| {
            let mut state = SchedulerState::new();
            let mut segments = segments.clone();
            for segment in &mut segments {
                state.process_segment(segment);
            }
            state.stats().records
        })
    });

    group.bench_function("explicit_row_queues", |b| {
        b.iter(|| {
            let mut sched = RowQueueScheduler::new();
            for segment in &segments {
                for record in &segment.records {
                    sched.enqueue(record.clone());
                }
            }
            // Drain with a single simulated worker.
            while let Some(w) = sched.next_work() {
                sched.complete(w.write.row);
            }
            sched.completed()
        })
    });
    group.finish();
}

/// Faithful row-granularity execution vs the MyRocks one-worker-per-
/// transaction constraint.
fn bench_execution_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("execution_mode");
    group.sample_size(10);
    let segments = mixed_log(2_000);
    group.throughput(Throughput::Elements(2_000));
    for spec in [ReplicaSpec::C5Faithful, ReplicaSpec::C5MyRocks] {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &segments,
            |b, segments| {
                b.iter(|| {
                    let store = Arc::new(MvStore::default());
                    preload(&store, &adversarial_population());
                    let replica = spec.build(
                        store,
                        ReplicaConfig::default()
                            .with_workers(2)
                            .with_snapshot_interval(Duration::from_millis(1)),
                    );
                    drive_segments(replica.as_ref(), segments.clone());
                    replica.metrics().applied_txns
                })
            },
        );
    }
    group.finish();
}

/// The snapshot-interval knob `I` (Section 5.2): smaller intervals mean more
/// frequent worker stalls.
fn bench_snapshot_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_interval");
    group.sample_size(10);
    let segments = mixed_log(2_000);
    group.throughput(Throughput::Elements(2_000));
    for interval_ms in [1u64, 5, 20] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{interval_ms}ms")),
            &segments,
            |b, segments| {
                b.iter(|| {
                    let store = Arc::new(MvStore::default());
                    preload(&store, &adversarial_population());
                    let replica = ReplicaSpec::C5MyRocks.build(
                        store,
                        ReplicaConfig::default()
                            .with_workers(2)
                            .with_snapshot_interval(Duration::from_millis(interval_ms)),
                    );
                    drive_segments(replica.as_ref(), segments.clone());
                    replica.metrics().applied_txns
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_design_vs_embedded,
    bench_execution_modes,
    bench_snapshot_interval
);
criterion_main!(benches);
