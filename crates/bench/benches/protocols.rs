//! End-to-end replay throughput of each cloned concurrency control protocol
//! over a pre-generated adversarial log (the Figure 7/11 comparison as a
//! micro-benchmark).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use c5_bench::harness::{preload, ReplicaSpec};
use c5_common::{ReplicaConfig, RowRef, RowWrite, Timestamp, TxnId, Value};
use c5_core::replica::drive_segments;
use c5_log::{segments_from_entries, Segment, TxnEntry};
use c5_storage::MvStore;
use c5_workloads::synthetic::adversarial_population;

/// The adversarial log: every transaction inserts `inserts` unique rows and
/// updates the shared hot row.
fn adversarial_log(txns: u64, inserts: u64) -> Vec<Segment> {
    let hot = c5_workloads::synthetic::hot_row();
    let entries: Vec<TxnEntry> = (1..=txns)
        .map(|t| {
            let mut writes: Vec<RowWrite> = (0..inserts)
                .map(|i| {
                    RowWrite::insert(
                        RowRef::new(hot.table.as_u32(), 1 + t * inserts + i),
                        Value::from_u64(i),
                    )
                })
                .collect();
            writes.push(RowWrite::update(hot, Value::from_u64(t)));
            TxnEntry::new(TxnId(t), Timestamp(t), writes)
        })
        .collect();
    segments_from_entries(&entries, 256)
}

fn bench_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("replay_adversarial");
    group.sample_size(10);
    let txns = 2_000u64;
    let inserts = 8u64;
    let segments = adversarial_log(txns, inserts);
    group.throughput(Throughput::Elements(txns));

    for spec in [
        ReplicaSpec::C5Faithful,
        ReplicaSpec::C5MyRocks,
        ReplicaSpec::KuaFu {
            ignore_constraints: false,
        },
        ReplicaSpec::SingleThreaded,
        ReplicaSpec::PageGranularity { rows_per_page: 64 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &segments,
            |b, segments| {
                b.iter(|| {
                    let store = Arc::new(MvStore::default());
                    preload(&store, &adversarial_population());
                    let replica = spec.build(
                        store,
                        ReplicaConfig::default()
                            .with_workers(2)
                            .with_snapshot_interval(std::time::Duration::from_millis(1)),
                    );
                    drive_segments(replica.as_ref(), segments.clone());
                    replica.metrics().applied_txns
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
