//! Scheduler micro-benchmarks (the Section 6.2 "scheduler is not the
//! bottleneck" claim): throughput of the embedded-FIFO preprocessing pass,
//! for logs of varying row locality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use c5_common::{RowRef, RowWrite, Timestamp, TxnId, Value};
use c5_core::scheduler::SchedulerState;
use c5_log::{segments_from_entries, Segment, TxnEntry};

/// Builds a log of `txns` transactions with `writes_per_txn` writes each over
/// a key space of `distinct_rows` rows.
fn build_log(txns: u64, writes_per_txn: u64, distinct_rows: u64) -> Vec<Segment> {
    let mut entries = Vec::with_capacity(txns as usize);
    let mut key = 0u64;
    for t in 0..txns {
        let writes = (0..writes_per_txn)
            .map(|_| {
                key = (key + 7) % distinct_rows;
                RowWrite::update(RowRef::new(0, key), Value::from_u64(t))
            })
            .collect();
        entries.push(TxnEntry::new(TxnId(t + 1), Timestamp(t + 1), writes));
    }
    segments_from_entries(&entries, 512)
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_preprocess");
    for &distinct_rows in &[1_000u64, 100_000] {
        let segments = build_log(5_000, 4, distinct_rows);
        let records: u64 = segments.iter().map(|s| s.len() as u64).sum();
        group.throughput(Throughput::Elements(records));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{distinct_rows}_rows")),
            &segments,
            |b, segments| {
                b.iter(|| {
                    let mut state = SchedulerState::new();
                    let mut segments = segments.clone();
                    for segment in &mut segments {
                        state.process_segment(segment);
                    }
                    state.stats().records
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
