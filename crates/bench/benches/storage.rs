//! Storage-engine micro-benchmarks: version installs, ordered installs
//! (the C5 worker primitive), and timestamped reads.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use c5_common::{Timestamp, Value, WriteKind};
use c5_storage::{MvStore, MvStoreConfig};

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("mvstore");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));

    group.bench_function("install", |b| {
        b.iter(|| {
            let store = MvStore::new(MvStoreConfig { shards: 64 });
            for i in 0..n {
                store.install(
                    MvStore::row(0, i),
                    Timestamp(i + 1),
                    WriteKind::Insert,
                    Some(Value::from_u64(i)),
                );
            }
            store.stats().versions
        })
    });

    group.bench_function("install_if_prev_chain", |b| {
        b.iter(|| {
            let store = MvStore::new(MvStoreConfig { shards: 64 });
            // A single row receiving a chain of ordered writes: the C5 worker
            // hot path for a contended row.
            let row = MvStore::row(0, 0);
            let mut prev = Timestamp::ZERO;
            for i in 1..=n {
                let ts = Timestamp(i);
                assert!(store.install_if_prev(
                    row,
                    prev,
                    ts,
                    WriteKind::Update,
                    Some(Value::from_u64(i))
                ));
                prev = ts;
            }
            store.latest_write_ts(row)
        })
    });

    let store = Arc::new(MvStore::new(MvStoreConfig { shards: 64 }));
    for i in 0..n {
        store.install(
            MvStore::row(0, i),
            Timestamp(i + 1),
            WriteKind::Insert,
            Some(Value::from_u64(i)),
        );
    }
    group.bench_function("read_at", |b| {
        b.iter(|| {
            let mut found = 0u64;
            for i in 0..n {
                if store.read_at(MvStore::row(0, i), Timestamp(n)).is_some() {
                    found += 1;
                }
            }
            found
        })
    });

    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
