//! The experiment runner: one sub-command per figure/table of the paper.
//!
//! ```text
//! cargo run -p c5-bench --release --bin experiments -- <command> [--full]
//!
//! commands:
//!   thm1            Theorem 1: unbounded lag for transaction granularity
//!   thm-page        Section 3.1.1: unbounded lag for page granularity
//!   thm2            Theorem 2: row granularity keeps up
//!   table1          Table 1: the keep-up summary matrix
//!   fig6            TPC-C NewOrder/Payment, unoptimized vs optimized
//!   fig7            Adversarial workload on the 2PL primary
//!   fig8 | fig9     Lag and throughput vs read-only clients
//!   fig10           District sweep on the MVTSO primary
//!   fig10-ablation  Same, plus KuaFu with constraints disabled
//!   fig11           Adversarial workload on the MVTSO primary
//!   fig12           The production load-spike trace
//!   fanout          1 primary -> 3 replicas log fan-out, per-replica lag
//!   reads           Consistency-class sessions over the fan-out fleet
//!   elastic         Online join + online retire on a live fleet under load
//!   sharded         Keyspace sharding sweep (1/2/4/8 shards), per-shard lag
//!   failover        Kill the primary, promote the backup, resume + standby
//!   durability      kill -9 a child process mid-workload, recover from disk
//!   obs             Observability smoke: run the elastic scenario against a
//!                   fresh c5-obs sink, dump Prometheus text + snapshot JSON
//!                   + the merged trace timeline, assert full coverage
//!   insert-only     Insert-only workload, 2PL primary, all protocols
//!   insert-only-cicada  Insert-only workload, MVTSO primary
//!   sched-offline   Offline scheduler throughput (Section 6.2)
//!   bench           Emit the committed BENCH_*.json trajectory files
//!                   (--smoke for CI's reduced-iteration schema check;
//!                   BENCH_OUT_DIR overrides the output directory)
//!   all             Everything above except bench, in order
//! ```

use c5_bench::experiments;
use c5_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale = if full { Scale::full() } else { Scale::quick() };
    let command = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    // Hidden sub-command: the durability experiment respawns this binary as
    // its crash-test child; the positional argument is the state directory.
    if command == "durability-child" {
        let dir = args
            .iter()
            .skip_while(|a| a.as_str() != "durability-child")
            .nth(1)
            .expect("durability-child needs a state directory argument");
        experiments::durability::run_child(std::path::Path::new(dir));
    }

    if command == "bench" {
        let (config, mode) = if smoke {
            (c5_common::BenchConfig::smoke(), "smoke")
        } else {
            (c5_common::BenchConfig::fixed(), "fixed")
        };
        let out_dir = c5_bench::report::out_dir_for(mode);
        match c5_bench::report::run(&config, mode, &out_dir) {
            Ok(files) => {
                println!("bench: all {} files validated", files.len());
                return;
            }
            Err(err) => {
                eprintln!("bench failed: {err}");
                std::process::exit(1);
            }
        }
    }

    println!(
        "# C5 reproduction experiments — command: {command}, scale: {} (host cores: {})",
        if full { "full" } else { "quick" },
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    let run_one = |name: &str| match name {
        "thm1" => experiments::theorems::run_thm1(&scale),
        "thm-page" => experiments::theorems::run_thm_page(&scale),
        "thm2" => experiments::theorems::run_thm2(&scale),
        "table1" => experiments::table1::run(&scale),
        "fig6" => experiments::fig6::run(&scale),
        "fig7" => experiments::fig7::run(&scale),
        "fig8" | "fig9" => experiments::fig8_9::run(&scale),
        "fig10" => experiments::fig10::run(&scale, false),
        "fig10-ablation" => experiments::fig10::run(&scale, true),
        "fig11" => experiments::fig11::run(&scale),
        "fig12" => experiments::fig12::run(&scale),
        "fanout" => experiments::fanout::run(&scale),
        "reads" => experiments::reads::run(&scale),
        "elastic" => experiments::elastic::run(&scale),
        "sharded" => experiments::sharded::run(&scale),
        "failover" => experiments::failover::run(&scale),
        "durability" => experiments::durability::run(&scale),
        "obs" => experiments::obs::run(&scale),
        "insert-only" => experiments::insert_only::run_myrocks(&scale),
        "insert-only-cicada" => experiments::insert_only::run_cicada(&scale),
        "sched-offline" => experiments::sched_offline::run(&scale),
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    };

    if command == "all" {
        for name in [
            "thm1",
            "thm-page",
            "thm2",
            "table1",
            "fig6",
            "fig7",
            "fig8",
            "fig10",
            "fig10-ablation",
            "fig11",
            "fig12",
            "fanout",
            "reads",
            "elastic",
            "sharded",
            "failover",
            "durability",
            "obs",
            "insert-only",
            "insert-only-cicada",
            "sched-offline",
        ] {
            run_one(name);
        }
    } else {
        run_one(&command);
    }
}
