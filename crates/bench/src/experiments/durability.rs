//! Durability: kill -9 a real process mid-workload, recover from disk.
//!
//! The failover experiment promotes a backup that never died; this one
//! exercises the path the paper assumes away — the process holding the
//! replica state is gone and a new one must rebuild it from what reached
//! disk. The experiment spawns a **child process** (this same binary with
//! the hidden `durability-child` sub-command) that runs a 2PL primary on the
//! adversarial workload with its shipped log teed into a durable
//! [`LogArchive`] (fsync per segment) and a population checkpoint published
//! under the same state directory. Once enough segment files exist the
//! parent SIGKILLs the child — no flush, no shutdown hook — and then:
//!
//! 1. recovers a replica from the persisted checkpoint plus the archived
//!    tail ([`c5_core::recover_replica`]), tolerating a torn tail segment;
//! 2. MPC-verifies the recovered state against a serial replay of the
//!    retained log (the child never truncates, so the archive itself is the
//!    ground truth);
//! 3. corrupts one byte of the newest segment file and recovers **again**,
//!    asserting the damaged tail is truncated back to a transaction
//!    boundary — never a panic, and never a state that diverges from a
//!    prefix of the log.
//!
//! Built-in assertions (also exercised by the CI smoke step): the child
//! committed real transactions before dying, recovery replays them, the
//! recovered view passes the MPC check, and the post-corruption recovery
//! exposes a shorter-or-equal prefix that still passes the MPC check.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use c5_common::{DurabilityPolicy, PrimaryConfig, ReplicaConfig, RowRef, SeqNo, Value};
use c5_core::replica::{C5Mode, ClonedConcurrencyControl};
use c5_core::{checkpoint_dir, log_dir, recover_replica, MpcChecker, RecoveredReplica};
use c5_log::{LogArchive, LogShipper, StreamingLogger};
use c5_primary::{ClosedLoopDriver, RunLength, TplEngine, TxnFactory};
use c5_storage::{CheckpointInstaller, CheckpointWriter, MvStore};
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{preload, print_table};
use crate::scale::Scale;

/// Records per shipped segment in the child. Deliberately small so the child
/// closes (and fsyncs) segment files quickly and the parent has several on
/// disk within a fraction of a second.
const SEGMENT_RECORDS: usize = 64;

/// Runs the crash-recovery experiment and prints one row per recovery pass.
pub fn run(scale: &Scale) {
    let state_dir = std::env::temp_dir().join(format!("c5-durability-{}", std::process::id()));
    let _ = fs::remove_dir_all(&state_dir);
    fs::create_dir_all(&state_dir).expect("create the scratch state directory");

    // How many closed segment files to wait for before pulling the plug.
    // Scaled by duration so --full kills deeper into the workload.
    let want_segments = if scale.duration >= Duration::from_secs(5) {
        16
    } else {
        4
    };

    // 1. Spawn the child and SIGKILL it mid-workload.
    let exe = std::env::current_exe().expect("locate the experiments binary");
    let mut child = Command::new(exe)
        .arg("durability-child")
        .arg(&state_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn the durability child");
    wait_for_segments(&log_dir(&state_dir), want_segments, &mut child);
    child.kill().expect("SIGKILL the child");
    child.wait().expect("reap the child");

    // 2. Recover from what reached disk.
    let started = Instant::now();
    let recovered = recover_first_pass(&state_dir);
    let recovery_wall = started.elapsed();
    assert!(
        recovered.replayed_records > 0,
        "the child must have shipped committed work before it was killed"
    );

    // 3. MPC-verify: the recovered view must equal the serial replay of the
    // retained log at the cut it exposes. The child checkpoints the initial
    // population at cut zero and never truncates, so checkpoint + archive
    // reconstruct the full ground truth.
    let initial = load_population(&state_dir);
    let retained = recovered
        .archive
        .replay_from(SeqNo::ZERO)
        .expect("the child never truncates its archive");
    let mut checker = MpcChecker::new(&initial, &retained);
    checker
        .verify_view(recovered.replica.read_view().as_ref())
        .expect("the recovered state must equal the serial replay of the retained log");

    // 4. Corrupt one byte of the newest segment file and recover again: the
    // damaged tail must be truncated at a transaction boundary, not panic.
    let tail = newest_segment(&log_dir(&state_dir));
    flip_one_byte(&tail);
    let restarted = Instant::now();
    let rerecovered = recover_first_pass(&state_dir);
    let rerecovery_wall = restarted.elapsed();
    assert!(
        rerecovered.recovered_through <= recovered.recovered_through,
        "a corrupted tail can only shorten the recovered prefix"
    );
    // The shortened state is still a valid prefix of the ORIGINAL log.
    let mut prefix_checker = MpcChecker::new(&initial, &retained);
    prefix_checker
        .verify_view(rerecovered.replica.read_view().as_ref())
        .expect("the post-corruption state must still be a prefix of the log");

    println!(
        "durability: child killed with {} segment files on disk; recovery replayed {} records \
         through {} in {:.1} ms (torn tail: {}); after corrupting one tail byte, re-recovery \
         exposed {} in {:.1} ms — both passed the MPC check",
        want_segments,
        recovered.replayed_records,
        recovered.recovered_through,
        recovery_wall.as_secs_f64() * 1e3,
        recovered.torn_tail,
        rerecovered.recovered_through,
        rerecovery_wall.as_secs_f64() * 1e3,
    );

    print_table(
        "Durability (measured on this host): child process SIGKILLed mid-workload, \
         replica recovered from persisted checkpoint + archived log tail",
        &[
            "pass",
            "checkpoint cut",
            "replayed records",
            "recovered through",
            "torn tail",
            "recovery ms",
            "mpc",
        ],
        &[
            vec![
                "after kill -9".into(),
                recovered.checkpoint_cut.to_string(),
                recovered.replayed_records.to_string(),
                recovered.recovered_through.to_string(),
                recovered.torn_tail.to_string(),
                format!("{:.1}", recovery_wall.as_secs_f64() * 1e3),
                "ok".into(),
            ],
            vec![
                "after 1-byte corruption".into(),
                rerecovered.checkpoint_cut.to_string(),
                rerecovered.replayed_records.to_string(),
                rerecovered.recovered_through.to_string(),
                rerecovered.torn_tail.to_string(),
                format!("{:.1}", rerecovery_wall.as_secs_f64() * 1e3),
                "ok".into(),
            ],
        ],
    );

    fs::remove_dir_all(&state_dir).expect("remove the scratch state directory");
}

/// The child half: a 2PL primary committing the adversarial workload forever,
/// its shipped segments teed into a durable archive under `state_dir`, until
/// the parent kills it. Never returns normally.
pub fn run_child(state_dir: &Path) -> ! {
    let population = adversarial_population();
    let store = Arc::new(MvStore::default());
    preload(&store, &population);

    // Publish the population as a cut-zero checkpoint, then tee every shipped
    // segment into the durable archive (fsync per segment). The parent polls
    // for the segment files this produces.
    let checkpoint = CheckpointWriter::capture(&store, SeqNo::ZERO);
    CheckpointWriter::save(checkpoint_dir(state_dir), &checkpoint)
        .expect("publish the population checkpoint");
    let archive = Arc::new(
        LogArchive::durable(log_dir(state_dir), DurabilityPolicy::EverySegment)
            .expect("create the durable archive"),
    );
    let (shipper, receiver) = LogShipper::unbounded();
    let shipper = shipper.with_archive(Arc::clone(&archive));
    // No replica in this process — drain the channel so it never grows.
    std::thread::spawn(move || while receiver.recv().is_some() {});

    let logger = StreamingLogger::new(SEGMENT_RECORDS, shipper);
    let engine = Arc::new(TplEngine::new(
        store,
        PrimaryConfig::default().with_threads(2),
        logger,
    ));
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    loop {
        ClosedLoopDriver::with_seed(42).run_tpl(
            &engine,
            &factory,
            2,
            RunLength::Timed(Duration::from_millis(50)),
        );
    }
}

fn recover_first_pass(state_dir: &Path) -> RecoveredReplica {
    recover_replica(
        state_dir,
        C5Mode::Faithful,
        ReplicaConfig::default().with_workers(2),
        DurabilityPolicy::EverySegment,
    )
    .expect("recovery from the persisted state")
}

/// Reconstructs the initial population from the child's cut-zero checkpoint.
fn load_population(state_dir: &Path) -> Vec<(RowRef, Value)> {
    let checkpoint = CheckpointInstaller::load(checkpoint_dir(state_dir))
        .expect("read the checkpoint directory")
        .expect("the child published a checkpoint before the workload started");
    assert_eq!(
        checkpoint.cut(),
        SeqNo::ZERO,
        "the child checkpoints the pre-log population"
    );
    checkpoint
        .rows()
        .iter()
        .filter(|row| !row.tombstone)
        .map(|row| (row.row, row.value.clone().expect("live rows carry a value")))
        .collect()
}

/// Polls until `dir` holds at least `want` segment files, nudging the wait
/// with a liveness check on the child.
fn wait_for_segments(dir: &Path, want: usize, child: &mut std::process::Child) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if segment_files(dir).len() >= want {
            return;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("the durability child exited early with {status}");
        }
        assert!(
            Instant::now() < deadline,
            "the child produced fewer than {want} segment files within the deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn segment_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|ext| ext == "c5w")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-"))
        })
        .collect();
    files.sort();
    files
}

fn newest_segment(dir: &Path) -> PathBuf {
    segment_files(dir)
        .pop()
        .expect("the archive retained at least one segment file")
}

/// Flips one byte near the end of `path` — inside the last frame's payload,
/// so the frame's CRC no longer matches.
fn flip_one_byte(path: &Path) {
    let mut bytes = fs::read(path).expect("read the tail segment");
    let at = bytes.len().saturating_sub(9);
    bytes[at] ^= 0xFF;
    fs::write(path, &bytes).expect("write the corrupted tail back");
}
