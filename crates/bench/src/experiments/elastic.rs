//! Elastic fleet: online join and online retire under continuous load.
//!
//! The paper fixes the replica fleet at construction time — every backup
//! exists before the first log record ships, and a backup that dies is
//! replaced by promoting or re-seeding offline (Section 6 recovers a
//! *primary*, not fleet membership). This scenario measures the membership
//! layer we add on top: a [`c5_core::FleetController`] seeds a 1→3 fan-out
//! through the same join protocol a live joiner uses, then — while
//! closed-loop writers drive the primary and tokened reader sessions issue
//! `strong`/`causal`/`bounded` reads — a brand-new replica **joins online**
//! (live checkpoint export, install, archived-gap replay, with the live
//! stream subscribed *before* the replay so no sequence number can fall
//! between archive and stream) and one of the seeds **retires online**
//! (drained of pinned reads, then detached).
//!
//! Correctness is hard-asserted inside the run: the joiner is exposed at or
//! beyond its install cut the moment it is `Serving`; no session violates
//! read-your-writes or monotonicity across the churn; a closing strong read
//! covers the whole log; and every survivor's final state equals the
//! primary's, row for row (monotonic prefix consistency despite membership
//! churn). The tables report join/retire timings, per-class reads, and
//! per-survivor lag — the joiner's lag row only has post-join samples, so
//! it *is* the lag-during-churn measurement.

use std::sync::Arc;
use std::time::Duration;

use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{fmt_tps, print_table, run_elastic_streaming, StreamingSetup};
use crate::scale::Scale;

/// Members seeded before load starts (the live 1→3 fan-out a new replica
/// joins into).
pub const SEED_REPLICAS: usize = 3;

/// Number of reader sessions.
pub const SESSIONS: usize = 4;

/// The staleness bound `bounded` reads accept.
pub const STALENESS_BOUND: Duration = Duration::from_millis(250);

/// Runs the elastic-fleet scenario and prints the churn, per-class, and
/// per-survivor tables.
pub fn run(scale: &Scale) {
    let mut setup =
        StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
    setup.population = adversarial_population();
    // Small segments bound both causal-read block time and the size of the
    // archived gap a joiner has to close.
    setup.segment_records = 64;
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));

    let outcome = run_elastic_streaming(&setup, factory, SEED_REPLICAS, SESSIONS, STALENESS_BOUND);

    assert!(
        outcome.survivors_converged,
        "every surviving member must expose the primary's full final state"
    );
    for class in &outcome.per_class {
        assert!(
            class.reads > 0,
            "class {} served no reads",
            class.kind.name()
        );
    }
    println!(
        "{} sessions over a churning fleet ({SEED_REPLICAS} seeds, 1 join, 1 retire): \
         {} reads served, {} tokened writes, {} read-your-writes reads asserted fresh, \
         {} replica switches under the monotonic floor, {} timeouts, \
         {} routing generations",
        outcome.sessions,
        outcome.per_class.iter().map(|c| c.reads).sum::<u64>(),
        outcome.session_stats.writes,
        outcome.session_stats.ryw_reads,
        outcome.session_stats.replica_switches,
        outcome.session_stats.timeouts,
        outcome.generations,
    );
    println!(
        "join: replica {} installed checkpoint cut {}, stream from {}, replayed {} archived \
         records, Serving after {:.1} ms; retire: replica {} drained in {:.1} ms at exposed \
         cut {}",
        outcome.join.replica,
        outcome.join.checkpoint_cut,
        outcome.join.stream_start,
        outcome.join.replayed_records,
        outcome.join.join_to_serving.as_secs_f64() * 1e3,
        outcome.retire.replica,
        outcome.retire.drain.as_secs_f64() * 1e3,
        outcome.retire.retired_exposed,
    );

    let mut class_rows = Vec::new();
    for class in &outcome.per_class {
        let fmt_dist = |stats: &Option<c5_core::lag::LagStats>| match stats {
            Some(s) => (format!("{:.3}", s.p50_ms), format!("{:.3}", s.p99_ms)),
            None => ("-".into(), "-".into()),
        };
        let (lat_p50, lat_p99) = fmt_dist(&class.latency);
        let (stale_p50, stale_p99) = fmt_dist(&class.staleness);
        class_rows.push(vec![
            class.kind.name().to_string(),
            class.reads.to_string(),
            fmt_tps(class.throughput(outcome.wall)),
            class.timeouts.to_string(),
            lat_p50,
            lat_p99,
            stale_p50,
            stale_p99,
        ]);
    }
    print_table(
        &format!(
            "Elastic fleet (measured on this host): {SESSIONS} sessions, join at T/3, retire at 2T/3"
        ),
        &[
            "class",
            "reads",
            "reads/s",
            "timeouts",
            "lat p50 ms",
            "lat p99 ms",
            "stale p50 ms",
            "stale p99 ms",
        ],
        &class_rows,
    );

    let mut survivor_rows = Vec::new();
    for (id, lag) in &outcome.survivor_lag {
        let status = outcome.fleet.iter().find(|s| s.replica == *id);
        let (lag_p50, lag_max) = lag
            .as_ref()
            .map(|l| (format!("{:.2}", l.p50_ms), format!("{:.2}", l.max_ms)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        survivor_rows.push(vec![
            id.to_string(),
            if *id == outcome.join.replica {
                "joined mid-run".into()
            } else {
                "seed".into()
            },
            status.map(|s| s.exposed.to_string()).unwrap_or_default(),
            status.map(|s| s.served.to_string()).unwrap_or_default(),
            lag_p50,
            lag_max,
        ]);
    }
    print_table(
        "Surviving members (the joiner's lag covers only its post-join life)",
        &[
            "replica",
            "origin",
            "exposed seq",
            "reads served",
            "lag p50 ms",
            "lag max ms",
        ],
        &survivor_rows,
    );
    println!(
        "note: the joiner's install-cut coverage, read-your-writes, session monotonicity, \
         and survivor state equality with the primary are hard assertions inside the run — \
         reaching this line means membership churn never cost a guarantee."
    );
}
