//! Failover: kill the primary mid-workload, promote the backup, resume.
//!
//! The point of cloned concurrency control is that a backup which always
//! keeps up makes failover cheap: when the primary dies, the backup's
//! remaining work is exactly its replication backlog, so promotion latency is
//! bounded by replication lag. This scenario measures that end to end for C5
//! (both modes) against KuaFu and table-granularity on the adversarial
//! workload: the 2PL primary runs for the scenario duration, its log crashes
//! without flushing (the unshipped tail is lost, as under asynchronous
//! replication), the backup drains to a clean cut and is promoted, and a new
//! primary resumes committing on the promoted store at the cut.
//!
//! For the C5 rows the cycle is closed with a **cold standby**: a checkpoint
//! of the promoted state is exported at the cut, installed into a fresh
//! store, and caught up from the resumed primary's retained log tail
//! (`LogArchive::replay_from`) — then verified row-for-row against the
//! promoted primary.
//!
//! Built-in assertions (also exercised by the CI smoke step): every
//! promotion lands at or above the last cut the backup exposed before the
//! kill; the resumed primary serves traffic; the standby catches up exactly;
//! and C5's promotion drain stays within a small multiple of its replication
//! lag (no unbounded drain), while protocols that fall behind pay for their
//! whole backlog at promotion time.

use std::sync::Arc;

use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{fmt_tps, print_table, run_failover_streaming, ReplicaSpec, StreamingSetup};
use crate::scale::Scale;

/// The protocols the failover sweep promotes.
pub const PROTOCOLS: [ReplicaSpec; 4] = [
    ReplicaSpec::C5Faithful,
    ReplicaSpec::C5MyRocks,
    ReplicaSpec::KuaFu {
        ignore_constraints: false,
    },
    ReplicaSpec::TableGranularity,
];

/// Runs the failover sweep and prints one row per promoted protocol.
pub fn run(scale: &Scale) {
    let resume_duration = scale.duration / 4;
    let mut rows = Vec::new();
    for spec in PROTOCOLS {
        let mut setup =
            StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
        setup.population = adversarial_population();
        setup.segment_records = scale.segment_records;
        let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
        let is_c5 = matches!(spec, ReplicaSpec::C5Faithful | ReplicaSpec::C5MyRocks);
        let outcome = run_failover_streaming(&setup, factory, spec, resume_duration, is_c5);

        println!(
            "{}: backlog {} records at kill, promoted at cut {} — takeover \
             {:.1} ms (final seal {:.1} ms), resumed primary committed {}",
            outcome.protocol,
            outcome.backlog_records(),
            outcome.promoted_cut,
            outcome.takeover.as_secs_f64() * 1e3,
            outcome.promotion_drain.as_secs_f64() * 1e3,
            outcome.resumed.committed,
        );

        // Promotion must never land below what the backup already exposed:
        // the promoted state extends, and never rolls back, the prefix
        // read-only transactions observed before the failure.
        assert!(
            outcome.promoted_cut >= outcome.exposed_at_kill,
            "{}: promoted cut {} below the last exposed cut {}",
            outcome.protocol,
            outcome.promoted_cut,
            outcome.exposed_at_kill
        );
        assert!(
            outcome.resumed.committed > 0,
            "{}: the promoted primary must serve traffic",
            outcome.protocol
        );
        if is_c5 {
            assert!(
                outcome.drain_bounded_by_lag(),
                "{}: takeover {:?} exceeds the lag bound (lag max {:?} ms) — \
                 a keeping-up backup must not have an unbounded drain",
                outcome.protocol,
                outcome.takeover,
                outcome.lag_at_kill.as_ref().map(|l| l.max_ms)
            );
            let standby = outcome.standby.as_ref().expect("C5 rows run the standby");
            assert!(
                standby.caught_up,
                "{}: the cold standby must converge to the promoted primary's state",
                outcome.protocol
            );
        }

        let lag = outcome.lag_at_kill.as_ref();
        rows.push(vec![
            outcome.protocol.to_string(),
            fmt_tps(outcome.primary.throughput()),
            outcome.shipped_seq.to_string(),
            outcome.backlog_records().to_string(),
            lag.map(|l| format!("{:.2}", l.p50_ms))
                .unwrap_or_else(|| "-".into()),
            lag.map(|l| format!("{:.2}", l.p99_ms))
                .unwrap_or_else(|| "-".into()),
            lag.map(|l| format!("{:.2}", l.max_ms))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", outcome.takeover.as_secs_f64() * 1e3),
            format!("{:.1}", outcome.promotion_drain.as_secs_f64() * 1e3),
            outcome.promoted_cut.to_string(),
            outcome.resumed.committed.to_string(),
            outcome
                .standby
                .as_ref()
                .map(|s| {
                    format!(
                        "{} rows + {} replayed",
                        s.checkpoint_rows, s.replayed_records
                    )
                })
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    print_table(
        "Failover (measured on this host): primary killed after the run duration, \
         unshipped tail lost, backup promoted; adversarial workload",
        &[
            "protocol",
            "primary txns/s",
            "shipped",
            "backlog",
            "lag p50 ms",
            "lag p99 ms",
            "lag max ms",
            "takeover ms",
            "seal ms",
            "cut",
            "resumed txns",
            "standby",
        ],
        &rows,
    );
}
