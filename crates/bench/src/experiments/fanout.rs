//! 1 primary → N replicas log fan-out.
//!
//! The paper evaluates a single backup; the deployment it motivates
//! (Section 2.1: Meta's read-mostly tier) serves reads from *many* replicas
//! of one primary. This scenario runs the adversarial workload on the 2PL
//! primary while its log fans out to N independent C5 backups — one bounded
//! channel per replica, so backpressure and lag are per-replica — and
//! reports each replica's apply wall, progress, and lag distribution. Every
//! replica must keep up individually: C5's keep-up claim is per-clone, and
//! fanning the log out does not change any replica's apply path.
//!
//! The single-threaded baseline is included as the contrast: its replicas
//! all lag identically (the bottleneck is the protocol, not the fan-out).

use std::sync::Arc;

use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{fmt_tps, print_table, run_fanout_streaming, ReplicaSpec, StreamingSetup};
use crate::scale::Scale;

/// Number of replicas the scenario fans out to.
pub const REPLICAS: usize = 3;

/// Runs the fan-out scenario and prints one row per replica.
pub fn run(scale: &Scale) {
    let mut rows = Vec::new();
    for spec in [ReplicaSpec::C5Faithful, ReplicaSpec::SingleThreaded] {
        let mut setup =
            StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
        setup.population = adversarial_population();
        setup.segment_records = scale.segment_records;
        let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(8));
        let outcome = run_fanout_streaming(&setup, factory, spec, REPLICAS);

        println!(
            "{}: worst replica median lag {:.2} ms across {REPLICAS} replicas",
            outcome.protocol,
            outcome.worst_p50_ms()
        );
        for replica in &outcome.replicas {
            let (p50, max) = replica
                .lag
                .as_ref()
                .map(|l| (format!("{:.2}", l.p50_ms), format!("{:.2}", l.max_ms)))
                .unwrap_or_else(|| ("-".into(), "-".into()));
            rows.push(vec![
                outcome.protocol.to_string(),
                replica.replica.to_string(),
                fmt_tps(outcome.primary.throughput()),
                replica.metrics.applied_txns.to_string(),
                replica.metrics.exposed_seq.to_string(),
                p50,
                max,
                format!("{:.0}ms", replica.wall.as_millis()),
            ]);
        }
        assert!(
            outcome.all_converged(),
            "{}: every replica must apply the full log",
            outcome.protocol
        );
    }
    print_table(
        &format!("Fan-out (measured on this host): 1 primary -> {REPLICAS} replicas, adversarial workload"),
        &[
            "protocol",
            "replica",
            "primary txns/s",
            "applied txns",
            "exposed seq",
            "lag p50 ms",
            "lag max ms",
            "apply wall",
        ],
        &rows,
    );
}
