//! Figure 10: Cicada (MVTSO) primary, 50/50 NewOrder/Payment (optimized),
//! sweeping the number of districts from 10 down to 1.
//!
//! Paper result: KuaFu lags behind the primary at 10–4 districts; below that
//! the extra contention hurts Cicada's own throughput more than KuaFu's
//! (abort rates climb to ~75%), so KuaFu catches up. C5-Cicada keeps up at
//! every district count. Section 7.3's text adds the ablation: with its
//! transaction-granularity constraints disabled, KuaFu no longer lags —
//! demonstrating the constraints, not implementation overhead, are the cause.

use std::sync::Arc;

use c5_lagmodel::{simulate_backup, simulate_primary_2pl, BackupProtocol, ModelParams};
use c5_primary::TxnFactory;
use c5_workloads::tpcc::{population, TpccMix};

use crate::experiments::recorder::record_workload;
use crate::harness::{
    fmt_ratio, fmt_tps, print_table, run_offline_mvtso, OfflineSetup, ReplicaSpec,
};
use crate::scale::Scale;

/// District counts swept by Figure 10.
pub const DISTRICTS: &[u64] = &[1, 2, 4, 6, 8, 10];

/// Runs the experiment and prints the model and measured tables. When
/// `ablation` is true the measured table also includes KuaFu with its
/// constraints disabled.
pub fn run(scale: &Scale, ablation: bool) {
    let params = ModelParams::paper_like(20);
    let mut model_rows = Vec::new();
    let mut measured_rows = Vec::new();

    for &districts in DISTRICTS {
        let cfg = scale.tpcc().with_districts(districts).with_optimized(true);

        // --- Model series -------------------------------------------------
        let mix = TpccMix::half_and_half(cfg);
        let recorded = record_workload(&mix, &population(&cfg), 2_000, 100 + districts);
        let primary = simulate_primary_2pl(&params, &recorded);
        let kuafu = simulate_backup(&params, &primary, BackupProtocol::TxnGranularity);
        let c5 = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
        model_rows.push(vec![
            districts.to_string(),
            format!("{:.3}", primary.throughput()),
            format!("{:.2}", (c5.throughput() / primary.throughput()).min(1.05)),
            format!("{:.2}", kuafu.throughput() / primary.throughput()),
        ]);

        // --- Measured series (real MVTSO primary; abort rates are the part
        // the model cannot show) -------------------------------------------
        let mut setup = OfflineSetup::new(
            scale.primary_threads,
            scale.offline_txns_per_thread / 4,
            scale.replica_workers,
        );
        setup.population = population(&cfg);
        setup.segment_records = scale.segment_records;
        let factory: Arc<dyn TxnFactory> = Arc::new(TpccMix::half_and_half(cfg));
        let c5_out = run_offline_mvtso(&setup, Arc::clone(&factory), ReplicaSpec::C5Faithful);
        let kuafu_out = run_offline_mvtso(
            &setup,
            Arc::clone(&factory),
            ReplicaSpec::KuaFu {
                ignore_constraints: false,
            },
        );
        let mut row = vec![
            districts.to_string(),
            fmt_tps(c5_out.primary_throughput()),
            format!("{:.0}%", c5_out.primary.abort_rate() * 100.0),
            fmt_ratio(c5_out.relative_throughput()),
            fmt_ratio(kuafu_out.relative_throughput()),
        ];
        if ablation {
            let unconstrained = run_offline_mvtso(
                &setup,
                factory,
                ReplicaSpec::KuaFu {
                    ignore_constraints: true,
                },
            );
            row.push(fmt_ratio(unconstrained.relative_throughput()));
        }
        measured_rows.push(row);
    }

    print_table(
        "Figure 10 (model, m=20 cores): 50/50 NewOrder-Payment (optimized) vs district count",
        &["districts", "primary", "c5 relative", "kuafu relative"],
        &model_rows,
    );
    let mut headers = vec![
        "districts",
        "primary txns/s",
        "abort rate",
        "c5 relative",
        "kuafu relative",
    ];
    if ablation {
        headers.push("kuafu-unconstrained relative");
    }
    print_table(
        "Figure 10 (measured, MVTSO primary on this host): district sweep",
        &headers,
        &measured_rows,
    );
    println!(
        "note: the measured abort-rate column reproduces Section 7.3's observation that contention \
         below ~4 districts hurts the MVTSO primary itself, which is what lets KuaFu catch up."
    );
}
