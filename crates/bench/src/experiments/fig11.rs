//! Figure 11: adversarial workload on the Cicada (MVTSO) primary — backup
//! throughput relative to the primary as inserts per transaction grow.
//!
//! Paper result: C5-Cicada's relative throughput stays at or above 1.0 and
//! actually rises past 4–8 inserts per transaction (more parallel work per
//! transaction lets it use more workers); KuaFu's falls to ~0.4 at 128.

use std::sync::Arc;

use c5_lagmodel::{
    simulate_backup, simulate_primary_2pl, BackupProtocol, ModelParams, ModelWorkload,
};
use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{
    fmt_ratio, fmt_tps, print_table, run_offline_mvtso, OfflineSetup, ReplicaSpec,
};
use crate::scale::Scale;

/// Inserts-per-transaction sweep of Figure 11.
pub const INSERTS_PER_TXN: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128];

/// Runs the experiment and prints the model and measured tables.
pub fn run(scale: &Scale) {
    let params = ModelParams::paper_like(20);
    let mut model_rows = Vec::new();
    let mut measured_rows = Vec::new();

    for &n in INSERTS_PER_TXN {
        // --- Model series -----------------------------------------------------
        let workload = ModelWorkload::theorem1(2_000, n + 1, 1);
        let primary = simulate_primary_2pl(&params, &workload);
        let kuafu = simulate_backup(&params, &primary, BackupProtocol::TxnGranularity);
        let c5 = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
        model_rows.push(vec![
            n.to_string(),
            format!("{:.2}", c5.throughput() / primary.throughput()),
            format!("{:.2}", kuafu.throughput() / primary.throughput()),
        ]);

        // --- Measured series ----------------------------------------------------
        // Keep the total write volume roughly constant across the sweep so the
        // quick scale stays quick.
        let txns_per_thread = (scale.offline_txns_per_thread / (1 + n / 4)).max(50);
        let mut setup = OfflineSetup::new(
            scale.primary_threads,
            txns_per_thread,
            scale.replica_workers,
        );
        setup.population = adversarial_population();
        setup.segment_records = scale.segment_records;
        let c5_out = run_offline_mvtso(
            &setup,
            Arc::new(AdversarialWorkload::new(n)) as Arc<dyn TxnFactory>,
            ReplicaSpec::C5Faithful,
        );
        let kuafu_out = run_offline_mvtso(
            &setup,
            Arc::new(AdversarialWorkload::new(n)) as Arc<dyn TxnFactory>,
            ReplicaSpec::KuaFu {
                ignore_constraints: false,
            },
        );
        measured_rows.push(vec![
            n.to_string(),
            fmt_tps(c5_out.primary_throughput()),
            format!("{:.0}%", c5_out.primary.abort_rate() * 100.0),
            fmt_ratio(c5_out.relative_throughput()),
            fmt_ratio(kuafu_out.relative_throughput()),
        ]);
    }

    print_table(
        "Figure 11 (model, m=20 cores): adversarial workload, backup throughput relative to primary",
        &["inserts/txn", "c5 relative", "kuafu relative"],
        &model_rows,
    );
    print_table(
        "Figure 11 (measured, MVTSO primary on this host): adversarial workload",
        &[
            "inserts/txn",
            "primary txns/s",
            "abort rate",
            "c5 relative",
            "kuafu relative",
        ],
        &measured_rows,
    );
}
