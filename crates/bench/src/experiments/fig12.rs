//! Figure 12: the production load spike.
//!
//! Section 8 / Figure 12: during a daily insert spike, the primary's write
//! rate exceeds what MySQL 5.6's single-threaded replay and Meta's earlier
//! table-granularity protocol could apply; lag grew to nearly two hours and
//! took another two hours to drain after the spike ended. C5-MyRocks keeps
//! lag below a few seconds throughout.
//!
//! The reproduction replays a time-compressed version of the same shape
//! through the Section 3 model: a baseline insert rate, an 8× spike in the
//! middle, and three backups (single-threaded, table-granularity — which for
//! a single-table insert workload degenerates to the same serial behaviour —
//! and row-granularity C5). The printed series is lag over time, which is
//! what the paper's figure conveys through the widening throughput gap.

use c5_lagmodel::{
    simulate_backup, simulate_primary_2pl, BackupProtocol, ModelParams, ModelTxn, ModelWorkload,
};
use c5_workloads::SpikeTrace;

use crate::harness::print_table;
use crate::scale::Scale;

/// Builds the model workload for the spike trace: single-insert transactions
/// to unique rows, arriving at the trace's per-bucket rate. Model time is
/// scaled so one bucket lasts `bucket_units` time units.
fn spike_workload(trace: &SpikeTrace, bucket_units: u64) -> ModelWorkload {
    let mut txns = Vec::new();
    let mut id = 0u64;
    for (bucket, count) in trace.schedule() {
        let base = bucket as u64 * bucket_units;
        for i in 0..count {
            // Spread arrivals evenly through the bucket.
            let arrival = base + (i * bucket_units) / count.max(1);
            txns.push(ModelTxn {
                id,
                arrival,
                keys: vec![1_000_000 + id],
            });
            id += 1;
        }
    }
    ModelWorkload { txns }
}

/// Runs the experiment and prints the lag-over-time series.
pub fn run(_scale: &Scale) {
    let params = ModelParams::paper_like(20);
    // One bucket is 1000 model time units; with e = 10 a core can execute 100
    // operations per bucket, so the single-threaded backup's capacity is ~111
    // single-write transactions per bucket (d = 9). The baseline load of 60
    // fits; the 8x spike (480) does not.
    let bucket_units = 1_000u64;
    let trace = SpikeTrace::paper_like(std::time::Duration::from_millis(100), 60);
    let workload = spike_workload(&trace, bucket_units);
    let primary = simulate_primary_2pl(&params, &workload);

    let protocols = [
        ("single-threaded", BackupProtocol::SingleThreaded),
        (
            "table-granularity",
            BackupProtocol::PageGranularity {
                rows_per_page: u64::MAX,
            },
        ),
        ("c5 (row)", BackupProtocol::RowGranularity),
    ];
    let outcomes: Vec<_> = protocols
        .iter()
        .map(|(_, p)| simulate_backup(&params, &primary, *p))
        .collect();

    // Per-bucket: primary commit count and each protocol's lag at the end of
    // the bucket (lag of the most recent transaction committed by then).
    let mut rows = Vec::new();
    for bucket in 0..trace.buckets {
        let bucket_end = (bucket as u64 + 1) * bucket_units;
        // Index of the last transaction the primary finished by bucket_end.
        let committed = primary.log.partition_point(|t| t.finish <= bucket_end);
        let committed_this_bucket = committed
            - primary
                .log
                .partition_point(|t| t.finish <= bucket as u64 * bucket_units);
        let mut row = vec![
            bucket.to_string(),
            if trace.is_spike(bucket) {
                "spike".into()
            } else {
                "".into()
            },
            committed_this_bucket.to_string(),
        ];
        for outcome in &outcomes {
            if committed == 0 {
                row.push("0".into());
            } else {
                let idx = committed - 1;
                let lag = outcome.exposed[idx].saturating_sub(primary.log[idx].finish);
                // Report lag in buckets (the paper reports hours; the unit is
                // arbitrary — what matters is growth during the spike and the
                // slow drain afterwards).
                row.push(format!("{:.1}", lag as f64 / bucket_units as f64));
            }
        }
        rows.push(row);
    }

    print_table(
        "Figure 12 (model): lag over time under a daily load spike [lag in buckets]",
        &[
            "bucket",
            "phase",
            "primary txns",
            "single-threaded lag",
            "table-gran lag",
            "c5 lag",
        ],
        &rows,
    );
    println!(
        "note: the single-threaded and table-granularity backups accumulate lag for the whole spike and \
         drain it only slowly afterwards; C5's lag stays near zero throughout — the Figure 12 story."
    );
}
