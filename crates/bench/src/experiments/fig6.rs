//! Figure 6: TPC-C NewOrder and Payment, before and after the contention
//! deferral optimization (MyRocks / 2PL primary).
//!
//! Paper result: the optimizations raise the primary's throughput (Payment by
//! over 700%); KuaFu keeps up on NewOrder but cannot keep up on the optimized
//! Payment workload, while C5-MyRocks always keeps up.

use std::sync::Arc;

use c5_lagmodel::{simulate_backup, simulate_primary_2pl, BackupProtocol, ModelParams};
use c5_primary::TxnFactory;
use c5_workloads::tpcc::{population, TpccMix};

use crate::experiments::recorder::record_workload;
use crate::harness::{fmt_ratio, fmt_tps, print_table, run_streaming, ReplicaSpec, StreamingSetup};
use crate::scale::Scale;

/// Runs the experiment and prints the model and measured tables.
pub fn run(scale: &Scale) {
    let params = ModelParams::paper_like(20);
    let mut model_rows = Vec::new();
    let mut measured_rows = Vec::new();

    for (workload_name, new_order_pct) in [("new-order", 100u32), ("payment", 0u32)] {
        for optimized in [false, true] {
            let cfg = scale.tpcc().with_optimized(optimized);
            let variant = if optimized { "opt" } else { "unopt" };

            // --- Model series -------------------------------------------------
            let mix = TpccMix::new(cfg, new_order_pct);
            let recorded =
                record_workload(&mix, &population(&cfg), 2_000, 6 + new_order_pct as u64);
            let primary = simulate_primary_2pl(&params, &recorded);
            let kuafu = simulate_backup(&params, &primary, BackupProtocol::TxnGranularity);
            let c5 = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
            model_rows.push(vec![
                workload_name.to_string(),
                variant.to_string(),
                format!("{:.3}", primary.throughput()),
                format!("{:.3}", c5.throughput().min(primary.throughput() * 1.05)),
                format!("{:.3}", kuafu.throughput()),
                yes_no(kuafu.throughput() >= primary.throughput() * 0.95),
            ]);

            // --- Measured series ----------------------------------------------
            let mut setup =
                StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
            setup.population = population(&cfg);
            setup.segment_records = scale.segment_records;
            let factory: Arc<dyn TxnFactory> = Arc::new(TpccMix::new(cfg, new_order_pct));
            let c5_out = run_streaming(
                &setup,
                Arc::clone(&factory),
                ReplicaSpec::C5MyRocks,
                0,
                0,
                0,
            );
            let kuafu_out = run_streaming(
                &setup,
                factory,
                ReplicaSpec::KuaFu {
                    ignore_constraints: false,
                },
                0,
                0,
                0,
            );
            measured_rows.push(vec![
                workload_name.to_string(),
                variant.to_string(),
                fmt_tps(c5_out.primary_throughput()),
                fmt_tps(c5_out.replica_throughput()),
                fmt_ratio(c5_out.relative_throughput()),
                fmt_tps(kuafu_out.replica_throughput()),
                fmt_ratio(kuafu_out.relative_throughput()),
                yes_no(kuafu_out.keeps_up()),
            ]);
        }
    }

    print_table(
        "Figure 6 (model, m=20 cores): TPC-C throughput before/after optimization [txns per time unit]",
        &["workload", "variant", "primary", "c5", "kuafu", "kuafu keeps up?"],
        &model_rows,
    );
    print_table(
        "Figure 6 (measured on this host): primary vs backup apply throughput [txns/s]",
        &[
            "workload",
            "variant",
            "primary",
            "c5",
            "c5/primary",
            "kuafu",
            "kuafu/primary",
            "kuafu keeps up?",
        ],
        &measured_rows,
    );
}

fn yes_no(v: bool) -> String {
    if v {
        "yes".into()
    } else {
        "no".into()
    }
}
