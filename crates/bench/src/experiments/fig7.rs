//! Figure 7: adversarial workload on the 2PL (MyRocks) primary — backup
//! throughput relative to the primary's as the number of non-conflicting
//! inserts per transaction grows.
//!
//! Paper result: KuaFu's relative throughput falls from ~0.7 at 1 insert to
//! ~0.38 at 64 inserts; C5-MyRocks stays at ~1.0 throughout.

use std::sync::Arc;

use c5_lagmodel::{
    simulate_backup, simulate_primary_2pl, BackupProtocol, ModelParams, ModelWorkload,
};
use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload, SYNTHETIC_TABLE};

use crate::harness::{fmt_ratio, fmt_tps, print_table, run_streaming, ReplicaSpec, StreamingSetup};
use crate::scale::Scale;

/// The inserts-per-transaction sweep of the paper's Figure 7.
pub const INSERTS_PER_TXN: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Runs the experiment and prints the model and measured tables.
pub fn run(scale: &Scale) {
    let params = ModelParams::paper_like(20);
    let mut model_rows = Vec::new();
    let mut measured_rows = Vec::new();

    for &n in INSERTS_PER_TXN {
        // --- Model series -----------------------------------------------------
        // The adversarial workload *is* the Theorem 1 construction: n
        // non-conflicting inserts followed by one write to the shared row.
        let workload = ModelWorkload::theorem1(2_000, n + 1, 1);
        let primary = simulate_primary_2pl(&params, &workload);
        let kuafu = simulate_backup(&params, &primary, BackupProtocol::TxnGranularity);
        let c5 = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
        model_rows.push(vec![
            n.to_string(),
            format!("{:.2}", (c5.throughput() / primary.throughput()).min(1.05)),
            format!("{:.2}", kuafu.throughput() / primary.throughput()),
        ]);

        // --- Measured series ---------------------------------------------------
        let mut setup =
            StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
        setup.population = adversarial_population();
        setup.segment_records = scale.segment_records;
        let c5_out = run_streaming(
            &setup,
            Arc::new(AdversarialWorkload::new(n)) as Arc<dyn TxnFactory>,
            ReplicaSpec::C5MyRocks,
            0,
            SYNTHETIC_TABLE,
            0,
        );
        let kuafu_out = run_streaming(
            &setup,
            Arc::new(AdversarialWorkload::new(n)) as Arc<dyn TxnFactory>,
            ReplicaSpec::KuaFu {
                ignore_constraints: false,
            },
            0,
            SYNTHETIC_TABLE,
            0,
        );
        measured_rows.push(vec![
            n.to_string(),
            fmt_tps(c5_out.primary_throughput()),
            fmt_ratio(c5_out.relative_throughput()),
            fmt_ratio(kuafu_out.relative_throughput()),
        ]);
    }

    print_table(
        "Figure 7 (model, m=20 cores): backup throughput relative to primary, adversarial workload",
        &["inserts/txn", "c5 relative", "kuafu relative"],
        &model_rows,
    );
    print_table(
        "Figure 7 (measured on this host): adversarial workload",
        &[
            "inserts/txn",
            "primary txns/s",
            "c5 relative",
            "kuafu relative",
        ],
        &measured_rows,
    );
}
