//! Figures 8 and 9: replication lag and throughput on C5-MyRocks as the
//! number of read-only clients grows (insert-only workload, periodic
//! whole-database snapshots).
//!
//! Paper result (Figure 8): replication lag stays bounded — the median grows
//! from ~87 ms with 0 read clients to ~160 ms with 16, and the maximum stays
//! under 300 ms across all three 30-second observation windows.
//! Paper result (Figure 9): the backup's read-write apply throughput stays
//! level while read-only throughput scales with the number of clients.

use std::sync::Arc;

use c5_core::lag::LagStats;
use c5_log::now_nanos;
use c5_primary::TxnFactory;
use c5_workloads::synthetic::{InsertOnlyWorkload, SYNTHETIC_TABLE};

use crate::harness::{fmt_tps, print_table, run_streaming, ReplicaSpec, StreamingSetup};
use crate::scale::Scale;

/// The read-only client counts swept by Figures 8 and 9.
pub const READ_CLIENTS: &[usize] = &[0, 1, 2, 4, 8, 16];

/// Runs the experiment and prints the lag-distribution (Figure 8) and
/// throughput (Figure 9) tables.
pub fn run(scale: &Scale) {
    let mut lag_rows = Vec::new();
    let mut tput_rows = Vec::new();

    for &clients in READ_CLIENTS {
        let mut setup =
            StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
        setup.segment_records = scale.segment_records;
        // Snapshots every 10 ms, as in the paper's experiment.
        setup.snapshot_interval = std::time::Duration::from_millis(10);
        let factory: Arc<dyn TxnFactory> = Arc::new(InsertOnlyWorkload::new(4));

        let run_start = now_nanos();
        let outcome = run_streaming(
            &setup,
            factory,
            ReplicaSpec::C5MyRocks,
            clients,
            SYNTHETIC_TABLE,
            // Point queries over a key space roughly twice the inserted rows,
            // so some lookups miss (as the paper allows).
            200_000,
        );
        let run_end = now_nanos();

        // Figure 8: lag distribution over three consecutive observation
        // windows (the paper uses three 30-second windows of a 90-second
        // measurement; we split the run into thirds).
        let window = (run_end.saturating_sub(run_start)) / 3;
        for (i, (lo, hi)) in [
            (run_start, run_start + window),
            (run_start + window, run_start + 2 * window),
            (run_start + 2 * window, u64::MAX),
        ]
        .into_iter()
        .enumerate()
        {
            let values: Vec<f64> = outcome
                .lag_samples
                .iter()
                .filter(|s| s.exposed_at_nanos >= lo && s.exposed_at_nanos < hi)
                .map(|s| s.lag_millis())
                .collect();
            let row = match LagStats::from_millis(values) {
                Some(stats) => vec![
                    clients.to_string(),
                    format!("window {}", i + 1),
                    format!("{:.1}", stats.min_ms),
                    format!("{:.1}", stats.p25_ms),
                    format!("{:.1}", stats.p50_ms),
                    format!("{:.1}", stats.p75_ms),
                    format!("{:.1}", stats.max_ms),
                ],
                None => vec![
                    clients.to_string(),
                    format!("window {}", i + 1),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ],
            };
            lag_rows.push(row);
        }

        // Figure 9: read and write throughput, plus read-latency percentiles
        // (sampled; the paper reports throughput only).
        let read_tput = outcome
            .reads
            .as_ref()
            .map(|r| r.throughput())
            .unwrap_or(0.0);
        let (read_p50, read_p99) = outcome
            .reads
            .as_ref()
            .and_then(|r| r.latency())
            .map(|l| (format!("{:.3}", l.p50_ms), format!("{:.3}", l.p99_ms)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        tput_rows.push(vec![
            clients.to_string(),
            fmt_tps(outcome.primary_throughput()),
            fmt_tps(outcome.replica_throughput()),
            fmt_tps(read_tput),
            read_p50,
            read_p99,
        ]);
    }

    print_table(
        "Figure 8 (measured): replication lag distribution on C5-MyRocks vs read-only clients [ms]",
        &[
            "read clients",
            "window",
            "min",
            "p25",
            "median",
            "p75",
            "max",
        ],
        &lag_rows,
    );
    print_table(
        "Figure 9 (measured): backup read-write and read-only throughput vs read-only clients [txns/s]",
        &[
            "read clients",
            "primary writes/s",
            "backup writes/s",
            "backup reads/s",
            "read p50 ms",
            "read p99 ms",
        ],
        &tput_rows,
    );
    println!(
        "note: bounded lag is the claim under test — the max column must stay small and must not grow \
         without bound as read-only clients are added."
    );
}
