//! Section 6.2 / 7.3 text results: the insert-only workload.
//!
//! Paper result: with no conflicts at all, both C5 and KuaFu keep up with the
//! primary — on MyRocks (~40,500 txns/s) and on Cicada (~87 M rows/s, with
//! the backups replaying slightly faster than the primary executed). The
//! experiment checks the "keeps up" property for every protocol, which also
//! produces the data for Table 1's summary matrix.

use std::sync::Arc;

use c5_primary::TxnFactory;
use c5_workloads::synthetic::{InsertOnlyWorkload, SYNTHETIC_TABLE};

use crate::harness::{
    fmt_ratio, fmt_tps, print_table, run_offline_mvtso, run_streaming, OfflineSetup, ReplicaSpec,
    StreamingSetup,
};
use crate::scale::Scale;

/// Protocols compared on the insert-only workload.
pub const SPECS: &[ReplicaSpec] = &[
    ReplicaSpec::C5MyRocks,
    ReplicaSpec::C5Faithful,
    ReplicaSpec::KuaFu {
        ignore_constraints: false,
    },
    ReplicaSpec::SingleThreaded,
    ReplicaSpec::TableGranularity,
    ReplicaSpec::PageGranularity { rows_per_page: 64 },
];

/// Runs the streaming (MyRocks-style) variant.
pub fn run_myrocks(scale: &Scale) {
    let mut rows = Vec::new();
    for spec in SPECS {
        let mut setup =
            StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
        setup.segment_records = scale.segment_records;
        let factory: Arc<dyn TxnFactory> = Arc::new(InsertOnlyWorkload::new(4));
        let out = run_streaming(&setup, factory, *spec, 0, SYNTHETIC_TABLE, 0);
        rows.push(vec![
            spec.name().to_string(),
            fmt_tps(out.primary_throughput()),
            fmt_tps(out.replica_throughput()),
            fmt_ratio(out.relative_throughput()),
            if out.keeps_up() {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    print_table(
        "Insert-only, 2PL/MyRocks primary (measured): does every protocol keep up when nothing conflicts?",
        &["protocol", "primary txns/s", "backup txns/s", "relative", "keeps up?"],
        &rows,
    );
}

/// Runs the offline (Cicada-style) variant: 16-insert transactions, matching
/// the paper's best-throughput configuration.
pub fn run_cicada(scale: &Scale) {
    let mut rows = Vec::new();
    for spec in &[
        ReplicaSpec::C5Faithful,
        ReplicaSpec::KuaFu {
            ignore_constraints: false,
        },
    ] {
        let mut setup = OfflineSetup::new(
            scale.primary_threads,
            scale.offline_txns_per_thread / 4,
            scale.replica_workers,
        );
        setup.segment_records = scale.segment_records;
        let factory: Arc<dyn TxnFactory> = Arc::new(InsertOnlyWorkload::new(16));
        let out = run_offline_mvtso(&setup, factory, *spec);
        let rows_per_s_primary = out.primary_throughput() * 16.0;
        let rows_per_s_backup = out.replica_throughput() * 16.0;
        rows.push(vec![
            spec.name().to_string(),
            fmt_tps(rows_per_s_primary),
            fmt_tps(rows_per_s_backup),
            fmt_ratio(out.relative_throughput()),
        ]);
    }
    print_table(
        "Insert-only, MVTSO/Cicada primary (measured): 16-insert transactions [rows/s]",
        &["protocol", "primary rows/s", "backup rows/s", "relative"],
        &rows,
    );
}
