//! One module per figure/table of the paper's evaluation.
//!
//! Every experiment prints two kinds of rows:
//!
//! * **model** rows — the Section 3 discrete-event machine (`c5-lagmodel`)
//!   configured with the paper-like parameters (20 cores, `e = 10`, `d = 9`)
//!   and driven by the *same workload definitions* as the real engines (the
//!   write sets are recorded by executing the actual stored procedures). The
//!   model is what reproduces the paper's figure shapes independently of how
//!   many cores the benchmark host happens to have.
//! * **measured** rows — the real primary engines, replication log, C5
//!   replica and baselines running end-to-end on this host. These validate
//!   the implementation (everything applies, lag stays bounded, abort rates
//!   move the right way); on a single-core host the *relative throughput*
//!   columns compress towards 1.0 because no protocol can actually execute
//!   in parallel, which is called out in EXPERIMENTS.md.

pub mod durability;
pub mod elastic;
pub mod failover;
pub mod fanout;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig6;
pub mod fig7;
pub mod fig8_9;
pub mod insert_only;
pub mod obs;
pub mod reads;
pub mod recorder;
pub mod sched_offline;
pub mod sharded;
pub mod table1;
pub mod theorems;
