//! The observability smoke: run a full-stack workload against a fresh
//! `c5-obs` sink and dump everything it captured.
//!
//! The elastic-fleet scenario is the one run that touches every
//! instrumented subsystem at once — the four pipeline stages on every
//! member, the log shipper's fan-out, the read router's per-class
//! decisions, and the fleet controller's join/retire lifecycle — so this
//! experiment drives it with a run-local [`Obs`] sink (not the process
//! global, so the dump contains exactly this run) and then exposes the
//! result three ways:
//!
//! 1. Prometheus-style text ([`c5_obs::MetricsSnapshot::to_prometheus`]),
//! 2. the snapshot as JSON ([`crate::obs_export::snapshot_json`]),
//!    round-tripped through the workspace parser as a self-check,
//! 3. the merged trace timeline, counted by kind and shown head-first.
//!
//! The acceptance criterion of the observability layer is hard-asserted
//! here: the `stage`, `ship`, `route`, and `lifecycle` event kinds must
//! each appear at least once in the dumped timeline, and every pipeline
//! stage must have recorded dwell samples.

use std::sync::Arc;
use std::time::Duration;

use c5_obs::{Obs, PipelineStage, TraceEvent};
use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{print_table, run_elastic_streaming, StreamingSetup};
use crate::obs_export::{kind_counts, snapshot_json, timeline_json};
use crate::scale::Scale;

/// Fleet seeds, matching the elastic scenario.
const SEED_REPLICAS: usize = 3;
/// Reader sessions, matching the elastic scenario.
const SESSIONS: usize = 4;
/// Staleness bound for `bounded` reads.
const STALENESS_BOUND: Duration = Duration::from_millis(250);
/// Timeline rows printed before eliding the rest.
const TIMELINE_HEAD: usize = 12;

/// Runs the observability smoke and dumps the captured state.
pub fn run(scale: &Scale) {
    let obs = Obs::new();
    let mut setup =
        StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
    setup.population = adversarial_population();
    setup.segment_records = 64;
    setup.obs = Arc::clone(&obs);
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));

    let outcome = run_elastic_streaming(&setup, factory, SEED_REPLICAS, SESSIONS, STALENESS_BOUND);
    assert!(outcome.survivors_converged, "elastic run must converge");

    let snap = obs.metrics.snapshot();
    let timeline = obs.trace.merged();
    let dropped = obs.trace.dropped();

    println!("== metrics: Prometheus text exposition ==");
    print!("{}", snap.to_prometheus());

    println!("\n== metrics: JSON exposition (round-tripped) ==");
    let doc = snapshot_json(&snap);
    let text = doc.pretty();
    let parsed = crate::json::parse(&text).expect("snapshot JSON must re-parse");
    for section in ["counters", "gauges", "histograms"] {
        let obj = parsed.get(section).expect("section present");
        let len = match obj {
            crate::json::JsonValue::Obj(entries) => entries.len(),
            _ => panic!("{section} is not an object"),
        };
        println!("{section}: {len} series");
    }
    // The full document is what `experiments bench` commits as
    // BENCH_obs.json; here a size line keeps the dump readable.
    println!("snapshot JSON: {} bytes, parses clean", text.len());

    println!("\n== trace: merged timeline ==");
    let counts = kind_counts(&timeline);
    let rows: Vec<Vec<String>> = counts
        .iter()
        .map(|(kind, n)| vec![kind.to_string(), n.to_string()])
        .collect();
    print_table(
        &format!(
            "{} events across {} kinds ({} overwritten by the ring bound)",
            timeline.len(),
            counts.iter().filter(|(_, n)| *n > 0).count(),
            dropped
        ),
        &["kind", "events"],
        &rows,
    );

    let timeline_doc = timeline_json(&timeline);
    let head = timeline_doc.as_arr().expect("timeline is an array");
    for row in head.iter().take(TIMELINE_HEAD) {
        let offset = row.get("offset_ns").and_then(|v| v.as_num()).unwrap_or(0.0);
        let thread = row.get("thread").and_then(|v| v.as_str()).unwrap_or("?");
        let kind = row.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        println!("  +{:>12.0} ns  {thread:<20} {kind}", offset);
    }
    if head.len() > TIMELINE_HEAD {
        println!("  … {} more events", head.len() - TIMELINE_HEAD);
    }

    // The acceptance gate: every instrumented subsystem spoke.
    for required in ["stage", "ship", "route", "lifecycle"] {
        let n = counts
            .iter()
            .find(|(kind, _)| *kind == required)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(n > 0, "no `{required}` events in the merged timeline");
    }
    for stage in PipelineStage::all() {
        let sampled = timeline.iter().any(
            |r| matches!(r.event, TraceEvent::Stage { stage: s, .. } if s.name() == stage.name()),
        );
        let name = format!("stage_dwell_ns{{stage=\"{}\"}}", stage.name());
        let recorded = snap.histogram(&name).map(|h| h.count()).unwrap_or(0);
        assert!(
            sampled && recorded > 0,
            "stage `{}` has no trace events or dwell samples",
            stage.name()
        );
    }
    println!(
        "\nobs smoke OK: stage/ship/route/lifecycle all present, \
         all four stages sampled, snapshot JSON round-trips."
    );
}
