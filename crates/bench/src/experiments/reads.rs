//! Read-serving over the fan-out fleet: consistency-class sessions against
//! 1 primary → 3 replicas.
//!
//! The paper measures read-only clients against a *single* backup's exposed
//! snapshot (Figures 8 and 9: lag and throughput as closed-loop point-query
//! clients are added). This scenario measures the layer the paper motivates
//! but does not build: a fleet of clones serving reads with per-read
//! consistency classes. A mixed workload — background writers on the 2PL
//! primary plus reader sessions committing their own tokened writes — runs
//! while every read names its guarantee:
//!
//! * `strong` reads verify against the primary's log frontier,
//! * `causal` reads carry session tokens (read-your-writes),
//! * `bounded` reads accept bounded staleness and take whichever replica is
//!   fresh enough and least loaded.
//!
//! Correctness is asserted inside the run: a read-your-writes read never
//! observes a state older than its token (value-checked, not just
//! cut-checked), and a session never reads backwards across replica
//! switches. The tables report per-class throughput, latency percentiles,
//! block time, and observed staleness, plus per-replica load and lag.

use std::sync::Arc;
use std::time::Duration;

use c5_primary::TxnFactory;
use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};

use crate::harness::{fmt_tps, print_table, run_reads_streaming, ReplicaSpec, StreamingSetup};
use crate::scale::Scale;

/// Number of replicas in the fleet.
pub const REPLICAS: usize = 3;

/// Number of reader sessions.
pub const SESSIONS: usize = 4;

/// The staleness bound `bounded` reads accept.
pub const STALENESS_BOUND: Duration = Duration::from_millis(250);

/// Runs the read-serving scenario and prints the per-class and per-replica
/// tables.
pub fn run(scale: &Scale) {
    let mut setup =
        StreamingSetup::new(scale.duration, scale.primary_threads, scale.replica_workers);
    setup.population = adversarial_population();
    // Small segments bound the time a committed token sits buffered before
    // it ships — the dominant term of causal-read block time.
    setup.segment_records = 64;
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));

    let outcome = run_reads_streaming(
        &setup,
        factory,
        ReplicaSpec::C5Faithful,
        REPLICAS,
        SESSIONS,
        STALENESS_BOUND,
    );

    assert!(
        outcome.all_converged(),
        "every replica must apply the primary's full log"
    );
    for class in &outcome.per_class {
        assert!(
            class.reads > 0,
            "class {} served no reads",
            class.kind.name()
        );
    }
    println!(
        "{} sessions over {REPLICAS} replicas: {} reads served, {} tokened writes, \
         {} read-your-writes reads asserted fresh, {} replica switches under the \
         monotonic floor, {} timeouts",
        outcome.sessions,
        outcome.total_reads(),
        outcome.session_stats.writes,
        outcome.session_stats.ryw_reads,
        outcome.session_stats.replica_switches,
        outcome.session_stats.timeouts,
    );

    let mut class_rows = Vec::new();
    for class in &outcome.per_class {
        let fmt_dist = |stats: &Option<c5_core::lag::LagStats>| match stats {
            Some(s) => (format!("{:.3}", s.p50_ms), format!("{:.3}", s.p99_ms)),
            None => ("-".into(), "-".into()),
        };
        let (lat_p50, lat_p99) = fmt_dist(&class.latency);
        let (stale_p50, stale_p99) = fmt_dist(&class.staleness);
        class_rows.push(vec![
            class.kind.name().to_string(),
            class.reads.to_string(),
            fmt_tps(class.throughput(outcome.wall)),
            class.txns.to_string(),
            class.blocked.to_string(),
            format!("{:.3}", class.mean_block_ms()),
            class.timeouts.to_string(),
            lat_p50,
            lat_p99,
            stale_p50,
            stale_p99,
        ]);
    }
    print_table(
        &format!(
            "Read serving (measured on this host): {SESSIONS} sessions over 1 primary -> {REPLICAS} replicas, mixed read/write"
        ),
        &[
            "class",
            "reads",
            "reads/s",
            "ro txns",
            "blocked",
            "block ms",
            "timeouts",
            "lat p50 ms",
            "lat p99 ms",
            "stale p50 ms",
            "stale p99 ms",
        ],
        &class_rows,
    );

    let mut replica_rows = Vec::new();
    for (i, status) in outcome.fleet.iter().enumerate() {
        let (lag_p50, lag_max) = outcome.replica_lag[i]
            .as_ref()
            .map(|l| (format!("{:.2}", l.p50_ms), format!("{:.2}", l.max_ms)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        replica_rows.push(vec![
            status.replica.to_string(),
            status.exposed.to_string(),
            status.served.to_string(),
            outcome.replica_metrics[i].applied_txns.to_string(),
            lag_p50,
            lag_max,
        ]);
    }
    print_table(
        "Per-replica routing and lag",
        &[
            "replica",
            "exposed seq",
            "reads served",
            "applied txns",
            "lag p50 ms",
            "lag max ms",
        ],
        &replica_rows,
    );
    println!(
        "note: read-your-writes and monotonic-session guarantees are hard assertions inside \
         the run — reaching this line means no read ever observed a state older than its \
         token and no session ever read backwards."
    );
}
