//! Records a workload's write sets so the analytical model can replay them.
//!
//! The Section 3 model cares only about *which rows* each transaction writes
//! and in what order. Rather than re-deriving that by hand for every
//! workload, the recorder executes the real stored procedures against a
//! trivial single-threaded in-memory database and captures their write sets.
//! The resulting [`ModelWorkload`] therefore has exactly the conflict
//! structure of the real workload — TPC-C's district and warehouse hot rows,
//! the adversarial workload's shared counter, and so on.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use c5_common::{Result, RowRef, Value};
use c5_lagmodel::{ModelTxn, ModelWorkload};
use c5_primary::{TxnCtx, TxnFactory};

/// A single-threaded recording context: reads come from a plain map, writes
/// are applied to it and captured in order.
struct RecordingCtx<'a> {
    state: &'a mut HashMap<RowRef, Value>,
    writes: Vec<RowRef>,
}

impl TxnCtx for RecordingCtx<'_> {
    fn read(&mut self, row: RowRef) -> Result<Option<Value>> {
        Ok(self.state.get(&row).cloned())
    }

    fn insert(&mut self, row: RowRef, value: Value) -> Result<()> {
        self.state.insert(row, value);
        self.writes.push(row);
        Ok(())
    }

    fn update(&mut self, row: RowRef, value: Value) -> Result<()> {
        self.state.insert(row, value);
        self.writes.push(row);
        Ok(())
    }

    fn delete(&mut self, row: RowRef) -> Result<()> {
        self.state.remove(&row);
        self.writes.push(row);
        Ok(())
    }
}

/// Executes `txns` transactions from `factory` against a recording store
/// preloaded with `population` and returns the model workload whose
/// transaction `i` carries transaction `i`'s write set (rows packed into
/// model keys). Arrivals are staggered by one time unit so the model primary
/// is always backlogged — the closed-loop, throughput-bound regime of the
/// paper's experiments.
pub fn record_workload(
    factory: &dyn TxnFactory,
    population: &[(RowRef, Value)],
    txns: u64,
    seed: u64,
) -> ModelWorkload {
    let mut state: HashMap<RowRef, Value> = population.iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(txns as usize);
    for id in 0..txns {
        let proc = factory.next_txn((id % 8) as usize, &mut rng);
        let mut ctx = RecordingCtx {
            state: &mut state,
            writes: Vec::new(),
        };
        // The recording store is single-threaded, so procedures cannot abort
        // for concurrency reasons; a workload-level error (which none of the
        // shipped workloads produce) is simply skipped.
        if proc.execute(&mut ctx).is_err() {
            continue;
        }
        // Deduplicate repeated writes to the same row within a transaction
        // (matching the engines' write-set semantics) while keeping order.
        let mut seen = std::collections::HashSet::new();
        let keys: Vec<u64> = ctx
            .writes
            .iter()
            .filter(|row| seen.insert(**row))
            .map(|row| pack_row(*row))
            .collect();
        out.push(ModelTxn {
            id,
            arrival: id,
            keys,
        });
    }
    ModelWorkload { txns: out }
}

/// Packs a row reference into the model's flat key space.
fn pack_row(row: RowRef) -> u64 {
    // Tables are small integers; keys in our workloads stay far below 2^56.
    ((row.table.as_u32() as u64) << 56) | (row.key.as_u64() & ((1 << 56) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_workloads::synthetic::{adversarial_population, AdversarialWorkload};
    use c5_workloads::tpcc::{population, TpccConfig, TpccMix};

    #[test]
    fn adversarial_recording_has_the_hot_key_in_every_transaction() {
        let factory = AdversarialWorkload::new(3);
        let w = record_workload(&factory, &adversarial_population(), 20, 1);
        assert_eq!(w.len(), 20);
        let hot = pack_row(c5_workloads::synthetic::hot_row());
        for txn in &w.txns {
            assert_eq!(txn.keys.len(), 4);
            assert_eq!(*txn.keys.last().unwrap(), hot);
        }
    }

    #[test]
    fn tpcc_payment_recording_shares_the_warehouse_row() {
        let cfg = TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 2,
            items: 20,
            customers_per_district: 5,
            optimized: false,
        };
        let factory = TpccMix::payment_only(cfg);
        let w = record_workload(&factory, &population(&cfg), 10, 3);
        assert_eq!(w.len(), 10);
        let warehouse = pack_row(c5_workloads::tpcc::warehouse_row(0));
        for txn in &w.txns {
            assert!(
                txn.keys.contains(&warehouse),
                "every payment hits the warehouse"
            );
            // Unoptimized payments write the warehouse first.
            assert_eq!(txn.keys[0], warehouse);
        }
        // The optimized variant moves it last.
        let factory = TpccMix::payment_only(cfg.with_optimized(true));
        let w = record_workload(&factory, &population(&cfg), 10, 3);
        for txn in &w.txns {
            assert_eq!(*txn.keys.last().unwrap(), warehouse);
        }
    }
}
