//! Section 6.2's offline scheduler experiment.
//!
//! Paper result: with replication delayed until after the primary finished,
//! C5-MyRocks's single-threaded scheduler processed 95,683 transactions per
//! second — more than double the primary's throughput — confirming the
//! scheduler is not the bottleneck. This experiment measures the same thing:
//! generate an insert-only log offline, then time the scheduler alone
//! (per-row predecessor computation plus boundary extraction) over it.

use std::sync::Arc;
use std::time::Instant;

use c5_core::scheduler::SchedulerState;
use c5_log::LogShipper;
use c5_log::StreamingLogger;
use c5_primary::{ClosedLoopDriver, RunLength, TplEngine, TxnFactory};
use c5_storage::MvStore;
use c5_workloads::synthetic::InsertOnlyWorkload;

use crate::harness::{fmt_tps, print_table};
use crate::scale::Scale;

/// Runs the experiment and prints the comparison.
pub fn run(scale: &Scale) {
    // 1. Generate the log by running the primary (and record its throughput).
    let (shipper, receiver) = LogShipper::unbounded();
    let logger = StreamingLogger::new(scale.segment_records, shipper);
    let engine = Arc::new(TplEngine::new(
        Arc::new(MvStore::default()),
        c5_common::PrimaryConfig::default().with_threads(scale.primary_threads),
        logger,
    ));
    let factory: Arc<dyn TxnFactory> = Arc::new(InsertOnlyWorkload::new(4));
    let stats = ClosedLoopDriver::with_seed(17).run_tpl(
        &engine,
        &factory,
        scale.primary_threads,
        RunLength::Timed(scale.duration),
    );
    engine.close_log();
    let mut segments = receiver.drain();

    // 2. Time the scheduler alone over the full log.
    let start = Instant::now();
    let mut state = SchedulerState::new();
    for segment in &mut segments {
        state.process_segment(segment);
    }
    let sched_wall = start.elapsed();
    let sched_stats = state.stats();
    let sched_txns_per_s = sched_stats.txns as f64 / sched_wall.as_secs_f64().max(1e-9);
    let sched_records_per_s = sched_stats.records as f64 / sched_wall.as_secs_f64().max(1e-9);

    print_table(
        "Section 6.2 (measured): offline scheduler throughput vs primary throughput",
        &["metric", "value"],
        &[
            vec!["primary txns/s".into(), fmt_tps(stats.throughput())],
            vec!["scheduler txns/s".into(), fmt_tps(sched_txns_per_s)],
            vec!["scheduler records/s".into(), fmt_tps(sched_records_per_s)],
            vec![
                "scheduler / primary".into(),
                format!("{:.1}x", sched_txns_per_s / stats.throughput().max(1e-9)),
            ],
        ],
    );
    println!(
        "note: the paper reports the scheduler processing more than double the primary's rate; the same \
         multiple (or better) is expected here because the scheduler does one hash-map update per write."
    );
}
