//! Sharded replication: per-partition apply under the cross-shard cut
//! coordinator.
//!
//! The paper's replica applies one log with one pipeline; the ROADMAP
//! north-star is a keyspace that shards. This scenario runs the shard-span
//! workload (two uniform updates per transaction, so roughly `1 - 1/N` of
//! transactions cross shards at N shards) on the 2PL primary while a
//! `ShardedC5Replica` applies the log at 1, 2, 4, and 8 shards, keeping the
//! total worker count as close to constant as divisibility allows
//! (`max(1, total / shards)` workers per shard — each pipeline needs at
//! least one worker, so shard counts above the total run more; the table's
//! `workers` column reports the actual number so rows stay comparable).
//! Reported per shard count: primary throughput, the cross-shard share,
//! global lag, and per-shard lag (a transaction's sample lands on the shard
//! owning its final write).
//!
//! The 1-shard row is the control: it must match the unsharded faithful
//! replica, because the cut protocol degenerates to the paper's
//! single-log cut when the vector has one component.

use std::sync::Arc;

use c5_primary::TxnFactory;
use c5_workloads::synthetic::{shard_span_population, ShardSpanWorkload};

use crate::harness::{fmt_tps, print_table, run_sharded_streaming, StreamingSetup};
use crate::scale::Scale;

/// The shard counts the sweep measures.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The preloaded key space the workload updates (and the router partitions).
pub const KEY_SPACE: u64 = 4096;

/// Runs the sweep and prints one global row plus one row per shard.
pub fn run(scale: &Scale) {
    let total_workers = scale.replica_workers.max(1);
    let mut rows = Vec::new();
    for shards in SHARD_COUNTS {
        // Keep total apply parallelism constant across the sweep.
        let workers_per_shard = (total_workers / shards).max(1);
        let mut setup =
            StreamingSetup::new(scale.duration, scale.primary_threads, workers_per_shard);
        setup.population = shard_span_population(KEY_SPACE);
        setup.segment_records = scale.segment_records;
        let factory: Arc<dyn TxnFactory> = Arc::new(ShardSpanWorkload::new(KEY_SPACE));
        let outcome = run_sharded_streaming(&setup, factory, shards, KEY_SPACE);

        println!(
            "{shards} shard(s): {:.0}% cross-shard, global lag p50 {:.2} ms, worst shard p50 {:.2} ms",
            outcome.cross_shard_share() * 100.0,
            outcome.lag.as_ref().map(|l| l.p50_ms).unwrap_or(0.0),
            outcome.worst_shard_p50_ms(),
        );
        assert!(
            outcome.converged(),
            "{shards} shards: the replica must apply the full log ({} of {})",
            outcome.replica_metrics.applied_txns,
            outcome.primary.committed
        );
        if shards > 1 && outcome.replica_metrics.applied_txns > 0 {
            assert!(
                outcome.cross_shard_share() >= 0.10,
                "{shards} shards: the span workload must be >=10% cross-shard (got {:.1}%)",
                outcome.cross_shard_share() * 100.0
            );
        }

        let global_lag = outcome.lag.as_ref();
        rows.push(vec![
            shards.to_string(),
            "all".into(),
            (workers_per_shard * shards).to_string(),
            fmt_tps(outcome.primary.throughput()),
            outcome.replica_metrics.applied_txns.to_string(),
            format!("{:.0}%", outcome.cross_shard_share() * 100.0),
            global_lag
                .map(|l| format!("{:.2}", l.p50_ms))
                .unwrap_or_else(|| "-".into()),
            global_lag
                .map(|l| format!("{:.2}", l.max_ms))
                .unwrap_or_else(|| "-".into()),
            format!("{:.0}ms", outcome.replica_wall.as_millis()),
        ]);
        for shard in &outcome.per_shard {
            let lag = shard.lag.as_ref();
            rows.push(vec![
                shards.to_string(),
                shard.shard.to_string(),
                String::new(),
                String::new(),
                shard.owned_txns.to_string(),
                String::new(),
                lag.map(|l| format!("{:.2}", l.p50_ms))
                    .unwrap_or_else(|| "-".into()),
                lag.map(|l| format!("{:.2}", l.max_ms))
                    .unwrap_or_else(|| "-".into()),
                String::new(),
            ]);
        }
    }
    print_table(
        &format!(
            "Sharded replication (measured on this host): ~{total_workers} total workers \
             (see column), shard-span workload over {KEY_SPACE} keys"
        ),
        &[
            "shards",
            "shard",
            "workers",
            "primary txns/s",
            "txns",
            "cross-shard",
            "lag p50 ms",
            "lag max ms",
            "apply wall",
        ],
        &rows,
    );
}
