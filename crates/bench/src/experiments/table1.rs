//! Table 1: the contribution summary — which execution granularities can
//! always keep up.
//!
//! The paper's Table 1 is a claim matrix; this experiment regenerates it from
//! measurements: every protocol is run on the adversarial workload (the
//! workload from the impossibility proofs) through the Section 3 model, and
//! the resulting "keeps up?" column reproduces the table.

use c5_lagmodel::{
    simulate_backup, simulate_primary_2pl, BackupProtocol, LagSeries, ModelParams, ModelWorkload,
};

use crate::harness::print_table;
use crate::scale::Scale;

/// Runs the experiment and prints the summary matrix.
pub fn run(_scale: &Scale) {
    let params = ModelParams::paper_like(20);
    // Two adversarial shapes: the row-level hot spot (Theorem 1) and the
    // page-level hot spot (Section 3.1.1); growing sizes show whether lag is
    // bounded or tracks the workload length.
    let sizes = [500u64, 1_000, 2_000];
    let protocols: [(&str, BackupProtocol); 4] = [
        ("single-threaded", BackupProtocol::SingleThreaded),
        (
            "transaction granularity (KuaFu, MySQL 8)",
            BackupProtocol::TxnGranularity,
        ),
        (
            "page granularity (redo shipping)",
            BackupProtocol::PageGranularity { rows_per_page: 64 },
        ),
        ("row granularity (C5)", BackupProtocol::RowGranularity),
    ];

    let mut rows = Vec::new();
    for (name, protocol) in &protocols {
        let mut final_lags = Vec::new();
        for &txns in &sizes {
            // Use the workload that stresses the protocol's granularity.
            let workload = match protocol {
                BackupProtocol::PageGranularity { rows_per_page } => {
                    ModelWorkload::page_adversarial(txns, 4, *rows_per_page, params.primary_op_cost)
                }
                _ => ModelWorkload::theorem1(txns, 4, params.primary_op_cost),
            };
            let primary = simulate_primary_2pl(&params, &workload);
            let backup = simulate_backup(&params, &primary, *protocol);
            final_lags.push(LagSeries::new(&primary, &backup).last());
        }
        // "Keeps up" means the final lag does not grow with the workload.
        let keeps_up = final_lags.windows(2).all(|w| w[1] < w[0] + w[0] / 4 + 100);
        rows.push(vec![
            name.to_string(),
            final_lags
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(" / "),
            if keeps_up { "yes".into() } else { "no".into() },
        ]);
    }

    print_table(
        "Table 1 (model): which execution granularities always keep up \
         [final lag at 500 / 1000 / 2000 transactions]",
        &["protocol", "final lag growth", "always keeps up?"],
        &rows,
    );
    println!(
        "expected: only row granularity (C5) has a 'yes' — every coarser granularity's lag grows with \
         the workload, matching Table 1."
    );
}
