//! The Section 3 / Section 4.1.1 theorems, demonstrated numerically.

use c5_lagmodel::{
    simulate_backup, simulate_primary_2pl, BackupProtocol, LagSeries, ModelParams, ModelWorkload,
};

use crate::harness::print_table;
use crate::scale::Scale;

/// Theorem 1: a transaction-granularity backup cannot bound replication lag
/// under a 2PL primary. Lag grows linearly in the number of transactions with
/// slope `n*d - e`; doubling the workload doubles the final lag.
pub fn run_thm1(_scale: &Scale) {
    let params = ModelParams::paper_like(20);
    assert!(params.satisfies_theorem_assumptions());
    let mut rows = Vec::new();
    for &txns in &[250u64, 500, 1_000, 2_000, 4_000] {
        let workload = ModelWorkload::theorem1(txns, 4, params.primary_op_cost);
        let primary = simulate_primary_2pl(&params, &workload);
        let txn_gran = simulate_backup(&params, &primary, BackupProtocol::TxnGranularity);
        let row_gran = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
        let txn_lag = LagSeries::new(&primary, &txn_gran);
        let row_lag = LagSeries::new(&primary, &row_gran);
        rows.push(vec![
            txns.to_string(),
            txn_lag.last().to_string(),
            format!("{:.1}", txn_lag.slope()),
            row_lag.last().to_string(),
            format!("{:.2}", row_lag.slope()),
        ]);
    }
    print_table(
        "Theorem 1 (model): transaction granularity cannot bound lag; row granularity can \
         [final lag in model time units; slope in units/txn]",
        &[
            "txns",
            "txn-gran final lag",
            "txn-gran slope",
            "row-gran final lag",
            "row-gran slope",
        ],
        &rows,
    );
    println!(
        "expected: txn-granularity final lag doubles as the workload doubles (slope = n*d - e = {}); \
         row-granularity lag stays flat.",
        4 * params.backup_op_cost - params.primary_op_cost
    );
}

/// Section 3.1.1: the same result for page granularity.
pub fn run_thm_page(_scale: &Scale) {
    let params = ModelParams::paper_like(20);
    let rows_per_page = 64;
    let mut rows = Vec::new();
    for &txns in &[250u64, 500, 1_000, 2_000] {
        let workload =
            ModelWorkload::page_adversarial(txns, 4, rows_per_page, params.primary_op_cost);
        let primary = simulate_primary_2pl(&params, &workload);
        let page = simulate_backup(
            &params,
            &primary,
            BackupProtocol::PageGranularity { rows_per_page },
        );
        let row = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
        let page_lag = LagSeries::new(&primary, &page);
        let row_lag = LagSeries::new(&primary, &row);
        rows.push(vec![
            txns.to_string(),
            page_lag.last().to_string(),
            format!("{:.1}", page_lag.slope()),
            row_lag.last().to_string(),
            format!("{:.2}", row_lag.slope()),
        ]);
    }
    print_table(
        "Section 3.1.1 (model): page granularity cannot bound lag (64 rows/page)",
        &[
            "txns",
            "page-gran final lag",
            "page-gran slope",
            "row-gran final lag",
            "row-gran slope",
        ],
        &rows,
    );
}

/// Theorem 2 / Section 4.1.1: row-granularity execution never constrains the
/// backup more than the primary's own concurrency control constrained the
/// primary — so the backup's makespan tracks the primary's on every workload
/// shape.
pub fn run_thm2(_scale: &Scale) {
    let params = ModelParams::paper_like(20);
    let workloads: Vec<(&str, ModelWorkload)> = vec![
        (
            "uniform (no conflicts)",
            ModelWorkload::uniform(2_000, 4, params.primary_op_cost),
        ),
        (
            "adversarial (hot row)",
            ModelWorkload::theorem1(2_000, 4, params.primary_op_cost),
        ),
        (
            "hot page",
            ModelWorkload::page_adversarial(2_000, 4, 64, params.primary_op_cost),
        ),
    ];
    let mut rows = Vec::new();
    for (name, workload) in &workloads {
        let primary = simulate_primary_2pl(&params, workload);
        let row = simulate_backup(&params, &primary, BackupProtocol::RowGranularity);
        let lag = LagSeries::new(&primary, &row);
        rows.push(vec![
            name.to_string(),
            primary.makespan().to_string(),
            row.makespan().to_string(),
            format!("{:.2}", row.makespan() as f64 / primary.makespan() as f64),
            lag.max().to_string(),
        ]);
    }
    print_table(
        "Theorem 2 (model): the row-granularity backup's makespan tracks the primary's on every workload",
        &["workload", "primary makespan", "backup makespan", "ratio", "max lag"],
        &rows,
    );
    println!(
        "expected: ratio <= ~1.0 (d <= e) and max lag bounded by a small constant, on every row."
    );
}
