//! Shared experiment machinery.

use std::sync::Arc;
use std::time::{Duration, Instant};

use c5_baselines::{
    CoarseGrainReplica, Granularity, KuaFuConfig, KuaFuReplica, SingleThreadedReplica,
};
use c5_common::{
    OpCost, PrimaryConfig, ReplicaConfig, RowRef, SeqNo, SnapshotMode, Timestamp, Value, WriteKind,
};
use c5_core::fleet::{
    FleetController, FleetRoutingSink, JoinReport, ReplicaLifecycle, RetireReport,
};
use c5_core::lag::LagStats;
use c5_core::replica::{
    drive_from_receiver, drive_segments, C5Mode, C5Replica, ClonedConcurrencyControl,
    ReplicaMetrics,
};
use c5_log::{LogArchive, LogShipper, StreamingLogger};
use c5_obs::Obs;
use c5_primary::{
    ClosedLoopDriver, MvtsoEngine, PrimaryRunStats, RunLength, TplEngine, TxnFactory,
};
use c5_storage::MvStore;
use c5_workloads::readonly::{run_point_read_clients, ReadRunStats};

/// Which backup protocol to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaSpec {
    /// C5 in its faithful (Cicada-style) form.
    C5Faithful,
    /// C5 with the MyRocks backward-compatibility constraints.
    C5MyRocks,
    /// KuaFu transaction granularity.
    KuaFu {
        /// Disable the transaction-granularity constraints (Section 7.3's
        /// ablation).
        ignore_constraints: bool,
    },
    /// Single-threaded replay.
    SingleThreaded,
    /// Table-granularity.
    TableGranularity,
    /// Page-granularity.
    PageGranularity {
        /// Rows per page.
        rows_per_page: u64,
    },
}

impl ReplicaSpec {
    /// Protocol name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaSpec::C5Faithful => "c5",
            ReplicaSpec::C5MyRocks => "c5-myrocks",
            ReplicaSpec::KuaFu {
                ignore_constraints: false,
            } => "kuafu",
            ReplicaSpec::KuaFu {
                ignore_constraints: true,
            } => "kuafu-unconstrained",
            ReplicaSpec::SingleThreaded => "single-threaded",
            ReplicaSpec::TableGranularity => "table-granularity",
            ReplicaSpec::PageGranularity { .. } => "page-granularity",
        }
    }

    /// Builds the replica over `store` with `config`.
    pub fn build(
        &self,
        store: Arc<MvStore>,
        config: ReplicaConfig,
    ) -> Arc<dyn ClonedConcurrencyControl> {
        match self {
            ReplicaSpec::C5Faithful => C5Replica::new(
                C5Mode::Faithful,
                store,
                config.with_snapshot_mode(SnapshotMode::Timestamped),
            ),
            ReplicaSpec::C5MyRocks => C5Replica::new(
                C5Mode::OneWorkerPerTxn,
                store,
                config.with_snapshot_mode(SnapshotMode::WholeDatabase),
            ),
            ReplicaSpec::KuaFu { ignore_constraints } => KuaFuReplica::new(
                store,
                config,
                KuaFuConfig {
                    ignore_constraints: *ignore_constraints,
                },
            ),
            ReplicaSpec::SingleThreaded => SingleThreadedReplica::new(store, config),
            ReplicaSpec::TableGranularity => {
                CoarseGrainReplica::new(Granularity::Table, store, config)
            }
            ReplicaSpec::PageGranularity { rows_per_page } => CoarseGrainReplica::new(
                Granularity::Page {
                    rows_per_page: *rows_per_page,
                },
                store,
                config,
            ),
        }
    }
}

/// Installs an initial population into a store at the pre-log timestamp.
pub fn preload(store: &MvStore, population: &[(RowRef, Value)]) {
    for (row, value) in population {
        store.install(
            *row,
            Timestamp::ZERO,
            WriteKind::Insert,
            Some(value.clone()),
        );
    }
}

/// Parameters shared by the streaming (MyRocks-style) experiments.
#[derive(Debug, Clone)]
pub struct StreamingSetup {
    /// Initial database population (installed on both sides).
    pub population: Vec<(RowRef, Value)>,
    /// Closed-loop clients driving the primary.
    pub clients: usize,
    /// Primary executor threads.
    pub primary_threads: usize,
    /// Backup workers.
    pub replica_workers: usize,
    /// Measurement duration.
    pub duration: Duration,
    /// Per-operation cost model.
    pub op_cost: OpCost,
    /// Snapshot interval for the backup.
    pub snapshot_interval: Duration,
    /// Records per shipped segment.
    pub segment_records: usize,
    /// RNG seed.
    pub seed: u64,
    /// Observability sink the run's replicas, shippers, and routers record
    /// into. Defaults to the process-global registry; experiments that dump
    /// or diff a snapshot attach a fresh one so runs don't bleed together.
    pub obs: Arc<Obs>,
}

impl StreamingSetup {
    /// A setup with no population and paper-like defaults.
    pub fn new(duration: Duration, threads: usize, workers: usize) -> Self {
        Self {
            population: Vec::new(),
            clients: threads,
            primary_threads: threads,
            replica_workers: workers,
            duration,
            op_cost: OpCost::paper_like(2_000),
            snapshot_interval: Duration::from_millis(10),
            segment_records: 256,
            seed: 42,
            obs: Arc::clone(Obs::global()),
        }
    }
}

/// Outcome of one streaming experiment.
#[derive(Debug, Clone)]
pub struct StreamingOutcome {
    /// Protocol name.
    pub protocol: &'static str,
    /// Primary-side statistics.
    pub primary: PrimaryRunStats,
    /// Time from the start of the run until the backup had applied and
    /// exposed the entire log.
    pub replica_wall: Duration,
    /// Backup progress counters.
    pub replica_metrics: ReplicaMetrics,
    /// Replication-lag summary (if any transactions committed).
    pub lag: Option<LagStats>,
    /// Every raw replication-lag sample (one per committed transaction), for
    /// experiments that bucket lag by time window (Figure 8).
    pub lag_samples: Vec<c5_core::lag::LagSample>,
    /// Read-only client statistics, if read clients were attached.
    pub reads: Option<ReadRunStats>,
}

impl StreamingOutcome {
    /// Primary throughput in transactions per second.
    pub fn primary_throughput(&self) -> f64 {
        self.primary.throughput()
    }

    /// Backup apply throughput in transactions per second (committed
    /// transactions divided by the time the backup needed to fully apply
    /// them).
    pub fn replica_throughput(&self) -> f64 {
        if self.replica_wall.is_zero() {
            0.0
        } else {
            self.replica_metrics.applied_txns as f64 / self.replica_wall.as_secs_f64()
        }
    }

    /// Backup throughput relative to the primary's (the paper's Figures 7
    /// and 11 report this ratio).
    pub fn relative_throughput(&self) -> f64 {
        let p = self.primary_throughput();
        if p == 0.0 {
            0.0
        } else {
            self.replica_throughput() / p
        }
    }

    /// Whether the backup kept up: it finished applying the log within a
    /// small grace window after the primary stopped.
    pub fn keeps_up(&self) -> bool {
        let grace = self.primary.wall.mul_f64(0.15) + Duration::from_millis(250);
        self.replica_wall <= self.primary.wall + grace
    }
}

/// Runs one streaming experiment: a 2PL primary executes `factory`'s workload
/// for `setup.duration` while the backup described by `spec` applies the log
/// live. Optionally attaches `read_clients` closed-loop point-query clients
/// to the backup (Figures 8 and 9); they read random keys in
/// `[0, read_key_space)` of `read_table`.
pub fn run_streaming(
    setup: &StreamingSetup,
    factory: Arc<dyn TxnFactory>,
    spec: ReplicaSpec,
    read_clients: usize,
    read_table: u32,
    read_key_space: u64,
) -> StreamingOutcome {
    // Primary.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let (shipper, receiver) = LogShipper::unbounded();
    let shipper = shipper.with_obs(Arc::clone(&setup.obs));
    let logger = StreamingLogger::new(setup.segment_records, shipper);
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.primary_threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(TplEngine::new(primary_store, primary_config, logger));

    // Backup.
    let replica_store = Arc::new(MvStore::default());
    preload(&replica_store, &setup.population);
    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(setup.snapshot_interval)
        .with_obs(Arc::clone(&setup.obs));
    let replica = spec.build(replica_store, replica_config);

    let start = Instant::now();
    let mut replica_wall = Duration::ZERO;
    let mut primary_stats = PrimaryRunStats::default();
    let mut reads = None;

    std::thread::scope(|scope| {
        // Backup ingestion.
        let replica_ref: &dyn ClonedConcurrencyControl = replica.as_ref();
        let drive = scope.spawn(move || drive_from_receiver(replica_ref, receiver));

        // Optional read-only clients against the backup.
        let read_handle = (read_clients > 0).then(|| {
            let replica_ref: &dyn ClonedConcurrencyControl = replica.as_ref();
            let duration = setup.duration;
            let seed = setup.seed;
            scope.spawn(move || {
                run_point_read_clients(
                    replica_ref,
                    read_clients,
                    duration,
                    read_table,
                    read_key_space,
                    seed,
                )
            })
        });

        // Primary load.
        primary_stats = ClosedLoopDriver::with_seed(setup.seed).run_tpl(
            &engine,
            &factory,
            setup.clients,
            RunLength::Timed(setup.duration),
        );
        engine.close_log();

        // Wait for the backup to finish applying everything.
        drive.join().expect("replica driver");
        replica_wall = start.elapsed();
        if let Some(h) = read_handle {
            reads = Some(h.join().expect("read clients"));
        }
    });

    StreamingOutcome {
        protocol: spec.name(),
        primary: primary_stats,
        replica_wall,
        replica_metrics: replica.metrics(),
        lag: replica.lag().stats(),
        lag_samples: replica.lag().samples(),
        reads,
    }
}

/// One replica's outcome in a fan-out run.
#[derive(Debug, Clone)]
pub struct FanOutReplicaOutcome {
    /// Replica index (0-based).
    pub replica: usize,
    /// Time from the start of the run until this replica had applied and
    /// exposed the entire log.
    pub wall: Duration,
    /// Progress counters.
    pub metrics: ReplicaMetrics,
    /// Replication-lag summary for this replica (if any transactions
    /// committed).
    pub lag: Option<LagStats>,
}

/// Outcome of a 1 primary → N replicas fan-out experiment.
#[derive(Debug, Clone)]
pub struct FanOutOutcome {
    /// Protocol name.
    pub protocol: &'static str,
    /// Primary-side statistics.
    pub primary: PrimaryRunStats,
    /// Per-replica results, indexed by replica.
    pub replicas: Vec<FanOutReplicaOutcome>,
}

impl FanOutOutcome {
    /// Whether every replica applied exactly the primary's committed
    /// transactions.
    pub fn all_converged(&self) -> bool {
        self.replicas
            .iter()
            .all(|r| r.metrics.applied_txns == self.primary.committed)
    }

    /// The largest median lag across replicas, in milliseconds (the number a
    /// load balancer would care about when routing reads).
    pub fn worst_p50_ms(&self) -> f64 {
        self.replicas
            .iter()
            .filter_map(|r| r.lag.as_ref().map(|l| l.p50_ms))
            .fold(0.0, f64::max)
    }
}

/// Runs one fan-out experiment: a 2PL primary executes `factory`'s workload
/// for `setup.duration` while its log fans out to `replicas` independent
/// backups of the protocol described by `spec`, each with its own store and
/// its own bounded channel (independent backpressure). Reports per-replica
/// apply walls, progress counters, and lag distributions.
pub fn run_fanout_streaming(
    setup: &StreamingSetup,
    factory: Arc<dyn TxnFactory>,
    spec: ReplicaSpec,
    replicas: usize,
) -> FanOutOutcome {
    assert!(replicas > 0, "fan-out requires at least one replica");
    // Primary.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let (shipper, receivers) = LogShipper::fan_out(replicas, 1024);
    let shipper = shipper.with_obs(Arc::clone(&setup.obs));
    let logger = StreamingLogger::new(setup.segment_records, shipper);
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.primary_threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(TplEngine::new(primary_store, primary_config, logger));

    // Backups: one store + one replica instance each.
    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(setup.snapshot_interval)
        .with_obs(Arc::clone(&setup.obs));
    let backups: Vec<Arc<dyn ClonedConcurrencyControl>> = (0..replicas)
        .map(|_| {
            let store = Arc::new(MvStore::default());
            preload(&store, &setup.population);
            spec.build(store, replica_config.clone())
        })
        .collect();

    let start = Instant::now();
    let mut primary_stats = PrimaryRunStats::default();
    let mut walls = vec![Duration::ZERO; replicas];

    std::thread::scope(|scope| {
        // One driver thread per replica; each measures its own apply wall.
        let drivers: Vec<_> = backups
            .iter()
            .zip(receivers)
            .map(|(backup, receiver)| {
                let backup_ref: &dyn ClonedConcurrencyControl = backup.as_ref();
                scope.spawn(move || {
                    drive_from_receiver(backup_ref, receiver);
                    start.elapsed()
                })
            })
            .collect();

        // Primary load.
        primary_stats = ClosedLoopDriver::with_seed(setup.seed).run_tpl(
            &engine,
            &factory,
            setup.clients,
            RunLength::Timed(setup.duration),
        );
        engine.close_log();

        for (i, driver) in drivers.into_iter().enumerate() {
            walls[i] = driver.join().expect("replica driver");
        }
    });

    FanOutOutcome {
        protocol: spec.name(),
        primary: primary_stats,
        replicas: backups
            .iter()
            .enumerate()
            .map(|(i, backup)| FanOutReplicaOutcome {
                replica: i,
                wall: walls[i],
                metrics: backup.metrics(),
                lag: backup.lag().stats(),
            })
            .collect(),
    }
}

/// One shard's outcome in a sharded streaming run.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Shard index (0-based).
    pub shard: usize,
    /// Lag summary for transactions owned by this shard (if any committed).
    pub lag: Option<LagStats>,
    /// Transactions owned by (committing on) this shard.
    pub owned_txns: usize,
}

/// Outcome of a sharded streaming experiment.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Number of keyspace shards.
    pub shards: usize,
    /// Primary-side statistics.
    pub primary: PrimaryRunStats,
    /// Time from the start of the run until the replica had applied and
    /// exposed the entire log.
    pub replica_wall: Duration,
    /// Global progress counters (summed across shards; `cross_shard_txns`
    /// counts transactions spanning shards).
    pub replica_metrics: ReplicaMetrics,
    /// Global replication-lag summary.
    pub lag: Option<LagStats>,
    /// Consistent cuts the cross-shard coordinator published over the run.
    /// A coordinator that stops advancing under load (the scaling knee the
    /// high-shard bench sweep looks for) shows up here as a collapse in cut
    /// frequency, not just as lag.
    pub cuts_taken: u64,
    /// Per-shard lag, indexed by shard.
    pub per_shard: Vec<ShardOutcome>,
}

impl ShardedOutcome {
    /// Fraction of committed transactions whose writes spanned shards.
    pub fn cross_shard_share(&self) -> f64 {
        if self.replica_metrics.applied_txns == 0 {
            0.0
        } else {
            self.replica_metrics.cross_shard_txns as f64 / self.replica_metrics.applied_txns as f64
        }
    }

    /// Whether the replica applied exactly the primary's committed
    /// transactions.
    pub fn converged(&self) -> bool {
        self.replica_metrics.applied_txns == self.primary.committed
    }

    /// The largest per-shard median lag, in milliseconds.
    pub fn worst_shard_p50_ms(&self) -> f64 {
        self.per_shard
            .iter()
            .filter_map(|s| s.lag.as_ref().map(|l| l.p50_ms))
            .fold(0.0, f64::max)
    }
}

/// Runs one sharded streaming experiment: a 2PL primary executes `factory`'s
/// workload for `setup.duration` while a [`c5_core::ShardedC5Replica`] with
/// `shards` per-partition pipelines (each `setup.replica_workers` workers)
/// applies the log live under the cross-shard cut coordinator. Reports global
/// and per-shard lag.
pub fn run_sharded_streaming(
    setup: &StreamingSetup,
    factory: Arc<dyn TxnFactory>,
    shards: usize,
    shard_key_space: u64,
) -> ShardedOutcome {
    use c5_core::ShardedC5Replica;

    // Primary.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let (shipper, receiver) = LogShipper::unbounded();
    let shipper = shipper.with_obs(Arc::clone(&setup.obs));
    let logger = StreamingLogger::new(setup.segment_records, shipper);
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.primary_threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(TplEngine::new(primary_store, primary_config, logger));

    // Sharded backup.
    let replica_store = Arc::new(MvStore::default());
    preload(&replica_store, &setup.population);
    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(setup.snapshot_interval)
        .with_shards(shards)
        .with_shard_key_space(shard_key_space)
        .with_obs(Arc::clone(&setup.obs));
    let replica = ShardedC5Replica::new(replica_store, replica_config);

    let start = Instant::now();
    let mut replica_wall = Duration::ZERO;
    let mut primary_stats = PrimaryRunStats::default();

    std::thread::scope(|scope| {
        let replica_ref: &dyn ClonedConcurrencyControl = replica.as_ref();
        let drive = scope.spawn(move || drive_from_receiver(replica_ref, receiver));
        primary_stats = ClosedLoopDriver::with_seed(setup.seed).run_tpl(
            &engine,
            &factory,
            setup.clients,
            RunLength::Timed(setup.duration),
        );
        engine.close_log();
        drive.join().expect("replica driver");
        replica_wall = start.elapsed();
    });

    ShardedOutcome {
        shards,
        primary: primary_stats,
        replica_wall,
        replica_metrics: replica.metrics(),
        lag: replica.lag().stats(),
        cuts_taken: replica.coordinator().cuts_taken(),
        per_shard: (0..shards)
            .map(|shard| {
                let lag = replica.shard_lag(shard);
                ShardOutcome {
                    shard,
                    owned_txns: lag.len(),
                    lag: lag.stats(),
                }
            })
            .collect(),
    }
}

/// The cold-standby leg of a failover run: a fresh C5 replica bootstrapped
/// from a checkpoint of the promoted store, caught up from the new primary's
/// retained log tail.
#[derive(Debug, Clone)]
pub struct StandbyOutcome {
    /// The checkpoint's cut (= the promotion cut).
    pub checkpoint_cut: SeqNo,
    /// Rows the checkpoint captured.
    pub checkpoint_rows: usize,
    /// Records replayed from the archive tail above the cut.
    pub replayed_records: usize,
    /// Whether the standby's exposed state equals the promoted primary's
    /// final state (verified row for row).
    pub caught_up: bool,
}

/// Outcome of one failover experiment: the primary is killed mid-workload
/// (its unshipped log tail is lost), the backup is promoted, and a new
/// primary resumes on the promoted store.
#[derive(Debug, Clone)]
pub struct FailoverOutcome {
    /// Protocol name of the promoted backup.
    pub protocol: &'static str,
    /// Primary-side statistics up to the kill.
    pub primary: PrimaryRunStats,
    /// The durable log end at the kill: the last position that reached the
    /// wire (the crashed primary's buffered tail is lost and excluded).
    pub shipped_seq: SeqNo,
    /// The backup's applied watermark at the moment of the kill.
    pub applied_at_kill: SeqNo,
    /// The backup's exposed cut at the moment of the kill.
    pub exposed_at_kill: SeqNo,
    /// Replication-lag summary at the kill (the quantity that bounds the
    /// promotion drain).
    pub lag_at_kill: Option<LagStats>,
    /// Lag samples recorded with reversed clock stamps (surfaced, not
    /// masked; see `LagTracker::clock_skew_samples`).
    pub clock_skew_samples: u64,
    /// The cut the backup was promoted at.
    pub promoted_cut: SeqNo,
    /// Promotion latency: drain of in-flight applies + pipeline seal, as
    /// measured inside `promote()` itself.
    pub promotion_drain: Duration,
    /// Full takeover latency: from the kill to the sealed cut, including
    /// delivering and applying the wire-buffered backlog the dead primary
    /// left behind. This is the fail-to-serving number the paper's thesis
    /// bounds by replication lag; `promotion_drain` alone understates it for
    /// protocols whose backlog is still queued when promotion starts.
    pub takeover: Duration,
    /// Statistics of the resumed primary serving traffic on the promoted
    /// store.
    pub resumed: PrimaryRunStats,
    /// The cold-standby leg, when requested.
    pub standby: Option<StandbyOutcome>,
}

impl FailoverOutcome {
    /// Log records shipped but not yet applied when the primary died — the
    /// backlog the promotion drain has to retire.
    pub fn backlog_records(&self) -> u64 {
        self.shipped_seq
            .as_u64()
            .saturating_sub(self.applied_at_kill.as_u64())
    }

    /// The paper's thesis, as a checkable bound: the full kill-to-sealed
    /// takeover stays within a small multiple of the replication lag
    /// observed at the kill (plus a scheduling-noise floor). A protocol that
    /// cannot keep up fails this — its takeover is proportional to the whole
    /// backlog, not the lag.
    pub fn drain_bounded_by_lag(&self) -> bool {
        let lag_max = self
            .lag_at_kill
            .as_ref()
            .map(|l| Duration::from_secs_f64(l.max_ms.max(0.0) / 1e3))
            .unwrap_or(Duration::ZERO);
        self.takeover <= Duration::from_millis(500) + 4 * lag_max
    }
}

/// Runs one failover experiment:
///
/// 1. a 2PL primary executes `factory`'s workload for `setup.duration` while
///    the backup described by `spec` applies the log live (the shipper
///    retains every shipped segment in a [`LogArchive`]);
/// 2. the primary is **killed**: the log crashes without flushing, losing
///    the buffered tail, exactly as asynchronous replication loses the
///    unshipped suffix on a real failure;
/// 3. the backup is **promoted** — in-flight applies drain to a clean
///    transaction-aligned cut and the pipeline seals — and the promotion
///    latency is measured;
/// 4. a new primary **resumes** on the promoted store
///    ([`StreamingLogger::resume_at`] continues sequence numbers and commit
///    timestamps from the cut) and serves `factory` for `resume_duration`;
/// 5. optionally (`with_standby`), a **cold standby** is bootstrapped from a
///    checkpoint of the promoted state and caught up from the new primary's
///    retained log tail, closing the failover cycle with a fresh backup.
pub fn run_failover_streaming(
    setup: &StreamingSetup,
    factory: Arc<dyn TxnFactory>,
    spec: ReplicaSpec,
    resume_duration: Duration,
    with_standby: bool,
) -> FailoverOutcome {
    // Primary, with log retention on the wire.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let archive = Arc::new(LogArchive::new());
    let (shipper, receiver) = LogShipper::unbounded();
    let shipper = shipper
        .with_archive(Arc::clone(&archive))
        .with_obs(Arc::clone(&setup.obs));
    let logger = StreamingLogger::new(setup.segment_records, shipper);
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.primary_threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(TplEngine::new(primary_store, primary_config, logger));

    // Backup.
    let replica_store = Arc::new(MvStore::default());
    preload(&replica_store, &setup.population);
    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(setup.snapshot_interval)
        .with_obs(Arc::clone(&setup.obs));
    let replica = spec.build(replica_store, replica_config.clone());

    let mut primary_stats = PrimaryRunStats::default();
    let mut applied_at_kill = SeqNo::ZERO;
    let mut exposed_at_kill = SeqNo::ZERO;
    let mut kill_at = Instant::now();

    std::thread::scope(|scope| {
        // Feed the backup WITHOUT finishing it: promotion does the sealing.
        let replica_ref: &dyn ClonedConcurrencyControl = replica.as_ref();
        let feeder = scope.spawn(move || {
            while let Some(segment) = receiver.recv() {
                replica_ref.apply_segment(segment);
            }
        });

        primary_stats = ClosedLoopDriver::with_seed(setup.seed).run_tpl(
            &engine,
            &factory,
            setup.clients,
            RunLength::Timed(setup.duration),
        );
        // Kill the primary: snapshot the backup's progress at the moment of
        // death, then crash the log (the buffered tail is lost). Takeover
        // time is measured from here — it includes delivering whatever the
        // wire still buffers, not just the final promote() drain.
        applied_at_kill = replica.applied_seq();
        exposed_at_kill = replica.exposed_seq();
        kill_at = Instant::now();
        engine.crash_log();
        feeder.join().expect("feeder");
    });

    let shipped_seq = archive.last_seq();
    let lag_at_kill = replica.lag().stats();
    let clock_skew_samples = replica.lag().clock_skew_samples();

    // Promote: drain to a clean cut, seal, take over the store.
    let promotion = replica.promote();
    let takeover = kill_at.elapsed();

    // Checkpoint the promoted state before the new primary writes on top of
    // it (capture at the cut stays correct either way — the resumed
    // primary's versions all land above the cut — but capturing now mirrors
    // the real sequence: checkpoint at takeover, then serve).
    let checkpoint = with_standby
        .then(|| c5_storage::CheckpointWriter::capture(&promotion.store, promotion.cut));

    // Resume a new primary on the promoted store, its log a seamless
    // continuation of the old one — retained only when a standby will
    // actually replay it.
    let resume_archive = with_standby.then(|| Arc::new(LogArchive::starting_at(promotion.cut)));
    let (resume_shipper, resume_receiver) = LogShipper::unbounded();
    let resume_shipper = match &resume_archive {
        Some(archive) => resume_shipper.with_archive(Arc::clone(archive)),
        None => resume_shipper,
    };
    let resume_logger =
        StreamingLogger::resume_at(setup.segment_records, resume_shipper, promotion.cut);
    drop(resume_receiver); // the standby catches up from the archive instead
    let resumed_engine = Arc::new(TplEngine::new(
        Arc::clone(&promotion.store),
        PrimaryConfig::default()
            .with_threads(setup.primary_threads)
            .with_op_cost(setup.op_cost),
        resume_logger,
    ));
    let resumed = ClosedLoopDriver::with_seed(setup.seed.wrapping_add(1)).run_tpl(
        &resumed_engine,
        &factory,
        setup.clients,
        RunLength::Timed(resume_duration),
    );
    resumed_engine.close_log();

    // Cold standby: install the checkpoint, catch up from the retained tail.
    let standby = checkpoint.map(|checkpoint| {
        let tail = resume_archive
            .as_ref()
            .expect("standby runs only with a retained resume log")
            .replay_from(checkpoint.cut())
            .expect("nothing truncated above the checkpoint cut");
        let replayed_records = tail.iter().map(c5_log::Segment::len).sum();
        let standby = C5Replica::resume_from_checkpoint(
            C5Mode::Faithful,
            &checkpoint,
            replica_config.clone(),
        );
        drive_segments(standby.as_ref(), tail);

        // The standby must now expose exactly the promoted primary's state.
        let mut expect: Vec<(RowRef, Value)> = promotion.store.scan_all_at(Timestamp::MAX);
        let mut got: Vec<(RowRef, Value)> = standby.read_view().scan_all();
        expect.sort_by_key(|(row, _)| *row);
        got.sort_by_key(|(row, _)| *row);
        StandbyOutcome {
            checkpoint_cut: checkpoint.cut(),
            checkpoint_rows: checkpoint.len(),
            replayed_records,
            caught_up: expect == got,
        }
    });

    FailoverOutcome {
        protocol: spec.name(),
        primary: primary_stats,
        shipped_seq,
        applied_at_kill,
        exposed_at_kill,
        lag_at_kill,
        clock_skew_samples,
        promoted_cut: promotion.cut,
        promotion_drain: promotion.drain,
        takeover,
        resumed,
        standby,
    }
}

/// Aggregates maintained by the read-serving sessions of a reads run.
#[derive(Debug, Clone, Default)]
pub struct SessionAggregates {
    /// Tokened writes the sessions committed on the primary.
    pub writes: u64,
    /// Read-your-writes reads performed — every one *asserted* that the
    /// serving cut covered the session's token and that the session's own
    /// latest write was the value read.
    pub ryw_reads: u64,
    /// Times a session's consecutive reads were served by different
    /// replicas. The monotonic floor is asserted across every switch.
    pub replica_switches: u64,
    /// Reads that gave up waiting for a fresh-enough replica.
    pub timeouts: u64,
}

/// Outcome of one read-serving experiment: a primary fanning its log out to
/// a replica fleet while consistency-class sessions read from it.
#[derive(Debug, Clone)]
pub struct ReadsOutcome {
    /// Primary-side statistics (background write load + session writes).
    pub primary: PrimaryRunStats,
    /// Wall-clock duration of the read-serving window.
    pub wall: Duration,
    /// Number of reader sessions.
    pub sessions: usize,
    /// Per-consistency-class read statistics, in `ClassKind::ALL` order.
    pub per_class: Vec<c5_read::ClassStats>,
    /// Final per-replica routing snapshot.
    pub fleet: Vec<c5_read::ReplicaStatus>,
    /// Final per-replica progress counters.
    pub replica_metrics: Vec<ReplicaMetrics>,
    /// Per-replica replication-lag summaries.
    pub replica_lag: Vec<Option<LagStats>>,
    /// Session-side aggregates (assertions included).
    pub session_stats: SessionAggregates,
    /// The primary's final log position; the closing strong read was served
    /// at or above it.
    pub final_seq: SeqNo,
}

impl ReadsOutcome {
    /// Whether every replica applied exactly the primary's committed
    /// transactions.
    pub fn all_converged(&self) -> bool {
        self.replica_metrics
            .iter()
            .all(|m| m.applied_txns == self.primary.committed)
    }

    /// Total reads served across all classes.
    pub fn total_reads(&self) -> u64 {
        self.per_class.iter().map(|c| c.reads).sum()
    }
}

/// Table used by reader sessions for their own tokened writes (disjoint from
/// every workload's tables, so sessions only ever race with themselves on
/// their own keys).
pub const SESSION_TABLE: u32 = 200;

/// Runs one read-serving experiment:
///
/// * a 2PL primary executes `factory`'s workload with closed-loop clients
///   for `setup.duration`, its log fanning out to `replicas` independent
///   backups of `spec` (one bounded channel each);
/// * a [`c5_read::ReadRouter`] spans the fleet, its primary frontier wired to
///   the engine's log position (so `Strong` reads are primary-verified);
/// * `sessions` reader threads each run a session loop: commit a tokened
///   write on the primary, causally read it back (**asserting**
///   read-your-writes: the serving cut covers the token and the value is
///   the session's own latest write), and mix in `Strong` and
///   `BoundedStaleness(staleness_bound)` reads of random keys — asserting
///   after every read that the session never reads backwards, across
///   whatever replica switches the router makes;
/// * after the log closes and the fleet drains, a final `Strong` read
///   verifies the router serves the complete log end-to-end.
///
/// # Panics
/// Panics inside a session thread if read-your-writes or monotonicity is
/// violated — the experiment's built-in correctness assertions.
pub fn run_reads_streaming(
    setup: &StreamingSetup,
    factory: Arc<dyn TxnFactory>,
    spec: ReplicaSpec,
    replicas: usize,
    sessions: usize,
    staleness_bound: Duration,
) -> ReadsOutcome {
    use c5_read::ReadRouter;
    use std::sync::atomic::{AtomicBool, Ordering};

    assert!(replicas > 0 && sessions > 0);
    // Primary with 1→N fan-out.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let (shipper, receivers) = LogShipper::fan_out(replicas, 1024);
    let shipper = shipper.with_obs(Arc::clone(&setup.obs));
    let logger = StreamingLogger::new(setup.segment_records, shipper);
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.primary_threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(TplEngine::new(primary_store, primary_config, logger));

    // The fleet.
    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(setup.snapshot_interval)
        .with_obs(Arc::clone(&setup.obs));
    let backups: Vec<Arc<dyn ClonedConcurrencyControl>> = (0..replicas)
        .map(|_| {
            let store = Arc::new(MvStore::default());
            preload(&store, &setup.population);
            spec.build(store, replica_config.clone())
        })
        .collect();

    // The router: frontier = the primary's assigned log end, so strong reads
    // verify against what the primary has committed, not just shipped; the
    // tail-flush hook lets a blocked read ship a committed-but-buffered
    // token instead of waiting for its segment to fill.
    let frontier_engine = Arc::clone(&engine);
    let flush_engine = Arc::clone(&engine);
    let router = Arc::new(
        ReadRouter::new(
            backups.clone(),
            c5_common::ReadConfig::default()
                .with_max_wait(Duration::from_secs(5))
                .with_obs(Arc::clone(&setup.obs)),
        )
        .with_frontier(move || frontier_engine.log_last_seq())
        .with_tail_flush(move || flush_engine.flush_log()),
    );

    let start = Instant::now();
    let stop_readers = AtomicBool::new(false);
    let mut primary_stats = PrimaryRunStats::default();
    let mut wall = Duration::ZERO;
    let session_stats = parking_lot::Mutex::new(SessionAggregates::default());

    std::thread::scope(|scope| {
        // Fleet ingestion.
        let drivers: Vec<_> = backups
            .iter()
            .zip(receivers)
            .map(|(backup, receiver)| {
                let backup_ref: &dyn ClonedConcurrencyControl = backup.as_ref();
                scope.spawn(move || drive_from_receiver(backup_ref, receiver))
            })
            .collect();

        // Reader sessions.
        let reader_handles: Vec<_> = (0..sessions)
            .map(|s| {
                let engine = Arc::clone(&engine);
                let router = Arc::clone(&router);
                let stop_readers = &stop_readers;
                let session_stats = &session_stats;
                let seed = setup.seed.wrapping_add(s as u64);
                scope.spawn(move || {
                    let local =
                        run_session_loop(&engine, &router, s, seed, stop_readers, staleness_bound);
                    let mut total = session_stats.lock();
                    total.writes += local.writes;
                    total.ryw_reads += local.ryw_reads;
                    total.replica_switches += local.replica_switches;
                    total.timeouts += local.timeouts;
                })
            })
            .collect();

        // Background write load on the primary.
        primary_stats = ClosedLoopDriver::with_seed(setup.seed).run_tpl(
            &engine,
            &factory,
            setup.clients,
            RunLength::Timed(setup.duration),
        );
        // Stop the sessions. A session mid-iteration can still commit a
        // token into a partial segment after the background load ends; its
        // own blocked read ships it via the router's tail-flush hook.
        stop_readers.store(true, Ordering::Relaxed);
        for handle in reader_handles {
            handle.join().expect("reader session");
        }
        wall = start.elapsed();
        engine.close_log();
        for driver in drivers {
            driver.join().expect("replica driver");
        }
    });

    // The fleet has the whole log; a closing strong read must see it.
    let final_seq = engine.log_last_seq();
    let closing = router
        .session()
        .read(
            &c5_read::ConsistencyClass::Strong,
            RowRef::new(SESSION_TABLE, 0),
        )
        .expect("a drained fleet serves strong reads immediately");
    assert!(
        closing.as_of >= final_seq,
        "closing strong read at {} misses the log end {final_seq}",
        closing.as_of
    );

    // Session writes ride the same engine; fold them into the committed
    // count the convergence check compares against.
    primary_stats.committed = engine.committed();

    ReadsOutcome {
        primary: primary_stats,
        wall,
        sessions,
        per_class: router.all_class_stats(),
        fleet: router.fleet_status(),
        replica_metrics: backups.iter().map(|b| b.metrics()).collect(),
        replica_lag: backups.iter().map(|b| b.lag().stats()).collect(),
        session_stats: session_stats.into_inner(),
        final_seq,
    }
}

/// One reader session's loop, shared by the read-serving and elastic
/// harnesses: commit a tokened write on the primary, causally read it back
/// (**asserting** read-your-writes by cut and by value), mix in `Strong` and
/// `BoundedStaleness(staleness_bound)` reads of random keys, and assert
/// after every read that the session never reads backwards — across whatever
/// replica switches (or, for the elastic harness, membership churn) the
/// router rides through.
///
/// # Panics
/// Panics if read-your-writes or monotonicity is violated.
fn run_session_loop(
    engine: &Arc<TplEngine>,
    router: &Arc<c5_read::ReadRouter>,
    s: usize,
    seed: u64,
    stop: &std::sync::atomic::AtomicBool,
    staleness_bound: Duration,
) -> SessionAggregates {
    use c5_primary::TxnCtx;
    use c5_read::ConsistencyClass;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::Ordering;

    let mut session = router.session();
    let mut local = SessionAggregates::default();
    let mut last_as_of = SeqNo::ZERO;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut assert_monotonic = |read: &c5_read::SessionRead| {
        assert!(
            read.as_of >= last_as_of,
            "session read went backwards: {} after {last_as_of}",
            read.as_of
        );
        last_as_of = read.as_of;
    };
    let mut iteration = 0u64;
    while !stop.load(Ordering::Relaxed) {
        // 1. Commit a tokened write to the session's own key.
        let own_row = RowRef::new(SESSION_TABLE, s as u64 * 1_000 + iteration % 50);
        let own_value = Value::from_u64(iteration + 1);
        let write_value = own_value.clone();
        let token = match engine.execute_with_token(&move |ctx: &mut dyn TxnCtx| {
            ctx.update(own_row, write_value.clone())
        }) {
            Ok((_, token)) => token,
            Err(_) => continue, // retries exhausted under contention
        };
        session.observe_commit(token);
        local.writes += 1;

        // 2. Read-your-writes: causally read the write back.
        match session.read(&session.causal(), own_row) {
            Ok(read) => {
                assert!(
                    read.as_of >= token,
                    "RYW violated: served at {} below token {token}",
                    read.as_of
                );
                // Only this session writes this key, and its next write
                // doesn't exist yet, so the value must be exactly the one
                // just written.
                assert_eq!(
                    read.value.as_ref(),
                    Some(&own_value),
                    "RYW violated: stale value at cut {}",
                    read.as_of
                );
                assert_monotonic(&read);
                local.ryw_reads += 1;
            }
            Err(c5_common::Error::ReadTimeout { .. }) => local.timeouts += 1,
            Err(err) => panic!("session read failed: {err}"),
        }

        // 3. A strong or bounded-staleness read of a random key.
        let random_row = RowRef::new(c5_workloads::SYNTHETIC_TABLE, rng.gen_range(0..100_000));
        let class = if iteration % 4 == 0 {
            ConsistencyClass::Strong
        } else {
            ConsistencyClass::BoundedStaleness(staleness_bound)
        };
        match session.read(&class, random_row) {
            Ok(read) => assert_monotonic(&read),
            Err(c5_common::Error::ReadTimeout { .. }) => local.timeouts += 1,
            Err(err) => panic!("session read failed: {err}"),
        }
        iteration += 1;
    }
    local.replica_switches = session.replica_switches();
    local
}

/// Outcome of the elastic-fleet experiment: one online join and one online
/// retire performed on a live fan-out under continuous tokened load.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// Primary-side statistics (background load plus session writes).
    pub primary: PrimaryRunStats,
    /// Wall-clock time of the whole churn window.
    pub wall: Duration,
    /// Number of reader sessions.
    pub sessions: usize,
    /// What the mid-run online join did.
    pub join: JoinReport,
    /// What the mid-run online retire did.
    pub retire: RetireReport,
    /// Per-consistency-class read statistics.
    pub per_class: Vec<c5_read::ClassStats>,
    /// Final routing snapshot of the surviving fleet.
    pub fleet: Vec<c5_read::ReplicaStatus>,
    /// Session-side aggregates (every read also carried the harness's
    /// built-in RYW/monotonicity assertions).
    pub session_stats: SessionAggregates,
    /// Per-surviving-member lag summaries, keyed by fleet id. The joiner's
    /// samples only cover its post-join life, so its row *is* the
    /// lag-during-churn measurement.
    pub survivor_lag: Vec<(usize, Option<LagStats>)>,
    /// Whether every surviving member's exposed state equals the primary's
    /// final state row for row (MPC convergence despite the churn).
    pub survivors_converged: bool,
    /// The primary's final log position.
    pub final_seq: SeqNo,
    /// Router generation at the end — one bump per admit, retire, and
    /// detach, so churn is visible in the routing metadata.
    pub generations: u64,
}

/// Runs the elastic-fleet experiment:
///
/// * a 2PL primary ships to a [`LogShipper`] that starts with **zero**
///   subscribers and an archive — every member of the fleet, seeds
///   included, enters through [`FleetController`]'s join protocol;
/// * `seed_replicas` members are seeded before load starts; `sessions`
///   reader threads then run the same tokened session loop as the `reads`
///   experiment while a closed-loop workload drives the primary;
/// * a third of the way through, a brand-new replica **joins online**
///   (checkpoint export → install → archived-gap replay → live stream, the
///   stream subscribed before the replay so no seq can fall in between);
///   two thirds through, the first seed **retires online** (drain, then
///   detach);
/// * the harness hard-asserts the joiner is exposed at or beyond its
///   install cut the moment it is `Serving`, that no session ever violates
///   RYW or monotonicity across the churn, that a closing strong read
///   covers the whole log, and that every survivor's final state equals
///   the primary's, row for row.
///
/// # Panics
/// Panics if any of the above invariants fails — these are the
/// experiment's built-in correctness assertions.
pub fn run_elastic_streaming(
    setup: &StreamingSetup,
    factory: Arc<dyn TxnFactory>,
    seed_replicas: usize,
    sessions: usize,
    staleness_bound: Duration,
) -> ElasticOutcome {
    use c5_read::ReadRouter;
    use std::sync::atomic::{AtomicBool, Ordering};

    assert!(seed_replicas > 0 && sessions > 0);
    // Primary whose shipper starts empty: membership is entirely dynamic.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let archive = Arc::new(LogArchive::new());
    let (shipper, receivers) = LogShipper::fan_out(0, 1024);
    assert!(receivers.is_empty());
    let shipper = shipper
        .with_archive(Arc::clone(&archive))
        .with_obs(Arc::clone(&setup.obs));
    let logger = StreamingLogger::new(setup.segment_records, shipper.clone());
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.primary_threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(TplEngine::new(
        Arc::clone(&primary_store),
        primary_config,
        logger,
    ));

    // The router starts with an empty fleet; the controller admits members.
    let frontier_engine = Arc::clone(&engine);
    let flush_engine = Arc::clone(&engine);
    let router = Arc::new(
        ReadRouter::new(
            Vec::new(),
            c5_common::ReadConfig::default()
                .with_max_wait(Duration::from_secs(5))
                .with_obs(Arc::clone(&setup.obs)),
        )
        .with_frontier(move || frontier_engine.log_last_seq())
        .with_tail_flush(move || flush_engine.flush_log()),
    );

    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(setup.snapshot_interval)
        .with_obs(Arc::clone(&setup.obs));
    let controller = FleetController::new(
        shipper,
        Arc::clone(&archive),
        Arc::clone(&router) as Arc<dyn FleetRoutingSink>,
        C5Mode::Faithful,
        replica_config,
    );

    // Seed the initial fleet through the same join protocol a live joiner
    // uses; with an empty archive there is nothing to replay, so the seeds
    // are Serving immediately.
    let seeds: Vec<JoinReport> = (0..seed_replicas)
        .map(|_| {
            let store = Arc::new(MvStore::default());
            preload(&store, &setup.population);
            controller
                .join_seeded(store)
                .expect("seeding an idle fleet cannot fail")
        })
        .collect();

    let start = Instant::now();
    let stop_readers = AtomicBool::new(false);
    let mut primary_stats = PrimaryRunStats::default();
    let mut wall = Duration::ZERO;
    let session_stats = parking_lot::Mutex::new(SessionAggregates::default());
    let mut join_report = None;
    let mut retire_report = None;

    std::thread::scope(|scope| {
        // Reader sessions.
        let reader_handles: Vec<_> = (0..sessions)
            .map(|s| {
                let engine = Arc::clone(&engine);
                let router = Arc::clone(&router);
                let stop_readers = &stop_readers;
                let session_stats = &session_stats;
                let seed = setup.seed.wrapping_add(s as u64);
                scope.spawn(move || {
                    let local =
                        run_session_loop(&engine, &router, s, seed, stop_readers, staleness_bound);
                    let mut total = session_stats.lock();
                    total.writes += local.writes;
                    total.ryw_reads += local.ryw_reads;
                    total.replica_switches += local.replica_switches;
                    total.timeouts += local.timeouts;
                })
            })
            .collect();

        // Background write load runs on its own thread so this thread can
        // orchestrate the membership churn mid-run.
        let load = {
            let engine = Arc::clone(&engine);
            let factory = Arc::clone(&factory);
            scope.spawn(move || {
                ClosedLoopDriver::with_seed(setup.seed).run_tpl(
                    &engine,
                    &factory,
                    setup.clients,
                    RunLength::Timed(setup.duration),
                )
            })
        };

        // One third in: a brand-new replica joins the live fan-out.
        std::thread::sleep(setup.duration / 3);
        let join = controller.join().expect("online join under load");
        assert!(
            join.checkpoint_cut <= join.stream_start,
            "the live stream (from {}) must cover everything past the \
             checkpoint cut {}",
            join.stream_start,
            join.checkpoint_cut
        );
        let joiner = controller.replica(join.replica).expect("joiner is managed");
        assert!(
            joiner.exposed_seq() >= join.checkpoint_cut.max(join.stream_start),
            "a joiner flips to Serving only at or beyond its install cut"
        );
        join_report = Some(join);

        // Two thirds in: the first seed retires online — drained, then
        // detached, while its peers keep serving.
        std::thread::sleep(setup.duration / 3);
        let retire = controller
            .retire(seeds[0].replica)
            .expect("online retire under load");
        retire_report = Some(retire);

        primary_stats = load.join().expect("background load");
        // Stop the sessions. A session mid-iteration can still commit a
        // token into a partial segment after the background load ends; its
        // own blocked read ships it via the router's tail-flush hook.
        stop_readers.store(true, Ordering::Relaxed);
        for handle in reader_handles {
            handle.join().expect("reader session");
        }
        wall = start.elapsed();
        engine.close_log();
        controller.finish();
    });

    // The surviving fleet has the whole log; a closing strong read must
    // see it even though a member left mid-run.
    let final_seq = engine.log_last_seq();
    let closing = router
        .session()
        .read(
            &c5_read::ConsistencyClass::Strong,
            RowRef::new(SESSION_TABLE, 0),
        )
        .expect("the surviving fleet serves strong reads after the churn");
    assert!(
        closing.as_of >= final_seq,
        "closing strong read at {} misses the log end {final_seq}",
        closing.as_of
    );

    // Session writes ride the same engine; fold them into the committed
    // count reported for the primary.
    primary_stats.committed = engine.committed();

    let join = join_report.expect("join ran");
    let retire = retire_report.expect("retire ran");

    // MPC convergence by full state: every surviving member's exposed state
    // must equal the primary's final state row for row. (The joiner's
    // applied-txn counter can't be compared — its checkpoint baked in
    // history it never applied — so state equality is the check.)
    let mut expect: Vec<(RowRef, Value)> = primary_store.scan_all_at(Timestamp::MAX);
    expect.sort_by_key(|(row, _)| *row);
    let survivor_ids: Vec<usize> = controller
        .members()
        .into_iter()
        .filter(|&(_, state)| state == ReplicaLifecycle::Serving)
        .map(|(id, _)| id)
        .collect();
    let mut survivors_converged = true;
    let mut survivor_lag = Vec::new();
    for &id in &survivor_ids {
        let replica = controller.replica(id).expect("serving member is managed");
        let mut got: Vec<(RowRef, Value)> = replica.read_view().scan_all();
        got.sort_by_key(|(row, _)| *row);
        survivors_converged &= got == expect;
        survivor_lag.push((id, replica.lag().stats()));
    }

    ElasticOutcome {
        primary: primary_stats,
        wall,
        sessions,
        join,
        retire,
        per_class: router.all_class_stats(),
        fleet: router.fleet_status(),
        session_stats: session_stats.into_inner(),
        survivor_lag,
        survivors_converged,
        final_seq,
        generations: router.generation(),
    }
}

/// Parameters for the offline (Cicada-style) experiments.
#[derive(Debug, Clone)]
pub struct OfflineSetup {
    /// Initial population (installed on both sides).
    pub population: Vec<(RowRef, Value)>,
    /// Primary client threads.
    pub threads: usize,
    /// Transactions submitted per thread.
    pub txns_per_thread: u64,
    /// Backup workers.
    pub replica_workers: usize,
    /// Per-operation cost model.
    pub op_cost: OpCost,
    /// Records per segment.
    pub segment_records: usize,
    /// RNG seed.
    pub seed: u64,
}

impl OfflineSetup {
    /// A setup with paper-like defaults and no population.
    pub fn new(threads: usize, txns_per_thread: u64, workers: usize) -> Self {
        Self {
            population: Vec::new(),
            threads,
            txns_per_thread,
            replica_workers: workers,
            op_cost: OpCost::free(),
            segment_records: 256,
            seed: 42,
        }
    }
}

/// Outcome of one offline experiment.
#[derive(Debug, Clone)]
pub struct OfflineOutcome {
    /// Protocol name.
    pub protocol: &'static str,
    /// Primary statistics (MVTSO run).
    pub primary: PrimaryRunStats,
    /// Time the backup needed to replay the whole log.
    pub replay_wall: Duration,
    /// Backup progress counters.
    pub replica_metrics: ReplicaMetrics,
}

impl OfflineOutcome {
    /// Primary throughput (transactions per second).
    pub fn primary_throughput(&self) -> f64 {
        self.primary.throughput()
    }

    /// Backup replay throughput (transactions per second).
    pub fn replica_throughput(&self) -> f64 {
        if self.replay_wall.is_zero() {
            0.0
        } else {
            self.replica_metrics.applied_txns as f64 / self.replay_wall.as_secs_f64()
        }
    }

    /// Backup throughput relative to the primary's.
    pub fn relative_throughput(&self) -> f64 {
        let p = self.primary_throughput();
        if p == 0.0 {
            0.0
        } else {
            self.replica_throughput() / p
        }
    }

    /// Whether the backup can keep up (its replay rate is at least the
    /// primary's execution rate).
    pub fn keeps_up(&self) -> bool {
        self.relative_throughput() >= 0.95
    }
}

/// Runs the MVTSO primary on `factory`'s workload, coalesces its log, then
/// replays it through the backup described by `spec` and measures the replay
/// time. Returns the primary stats (measured without any replication load,
/// matching Section 7.3's "Cicada without logging" upper-bound comparison)
/// and the backup outcome.
pub fn run_offline_mvtso(
    setup: &OfflineSetup,
    factory: Arc<dyn TxnFactory>,
    spec: ReplicaSpec,
) -> OfflineOutcome {
    // Primary run.
    let primary_store = Arc::new(MvStore::default());
    preload(&primary_store, &setup.population);
    let primary_config = PrimaryConfig::default()
        .with_threads(setup.threads)
        .with_op_cost(setup.op_cost);
    let engine = Arc::new(MvtsoEngine::new(primary_store, primary_config));
    let primary_stats = ClosedLoopDriver::with_seed(setup.seed).run_mvtso(
        &engine,
        &factory,
        setup.threads,
        RunLength::PerClientCount(setup.txns_per_thread),
    );
    let segments = engine.take_segments(setup.segment_records);

    // Backup replay.
    let replica_store = Arc::new(MvStore::default());
    preload(&replica_store, &setup.population);
    let replica_config = ReplicaConfig::default()
        .with_workers(setup.replica_workers)
        .with_op_cost(setup.op_cost)
        .with_snapshot_interval(Duration::from_millis(1));
    let replica = spec.build(replica_store, replica_config);
    let replay_wall = drive_segments(replica.as_ref(), segments);

    OfflineOutcome {
        protocol: spec.name(),
        primary: primary_stats,
        replay_wall,
        replica_metrics: replica.metrics(),
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{c:>width$}",
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Formats a throughput value.
pub fn fmt_tps(v: f64) -> String {
    format!("{v:.0}")
}

/// Formats a ratio.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_workloads::synthetic::{
        adversarial_population, AdversarialWorkload, InsertOnlyWorkload, SYNTHETIC_TABLE,
    };

    #[test]
    fn streaming_experiment_runs_end_to_end() {
        let mut setup = StreamingSetup::new(Duration::from_millis(200), 2, 2);
        setup.op_cost = OpCost::free();
        setup.population = adversarial_population();
        let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(2));
        let outcome = run_streaming(
            &setup,
            factory,
            ReplicaSpec::C5Faithful,
            1,
            SYNTHETIC_TABLE,
            1000,
        );
        assert!(outcome.primary.committed > 0);
        assert_eq!(
            outcome.replica_metrics.applied_txns,
            outcome.primary.committed
        );
        assert!(outcome.lag.is_some());
        assert!(outcome.reads.is_some());
        assert!(outcome.replica_throughput() > 0.0);
        assert!(outcome.relative_throughput() > 0.0);
    }

    #[test]
    fn offline_experiment_runs_end_to_end() {
        let setup = OfflineSetup::new(2, 200, 2);
        let factory: Arc<dyn TxnFactory> = Arc::new(InsertOnlyWorkload::new(4));
        let outcome = run_offline_mvtso(
            &setup,
            factory,
            ReplicaSpec::KuaFu {
                ignore_constraints: false,
            },
        );
        assert_eq!(outcome.primary.committed, 400);
        assert_eq!(outcome.replica_metrics.applied_txns, 400);
        assert!(outcome.replica_throughput() > 0.0);
        assert_eq!(outcome.protocol, "kuafu");
    }

    // run_fanout_streaming is covered end-to-end by the workspace
    // integration test `fan_out_harness_reports_per_replica_lag`
    // (tests/mpc_consistency.rs) and by the `fanout` CI smoke step.

    #[test]
    fn reads_experiment_runs_end_to_end() {
        let mut setup = StreamingSetup::new(Duration::from_millis(250), 2, 2);
        setup.op_cost = OpCost::free();
        setup.population = adversarial_population();
        setup.segment_records = 32;
        let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(2));
        let outcome = run_reads_streaming(
            &setup,
            factory,
            ReplicaSpec::C5Faithful,
            2,
            2,
            Duration::from_millis(250),
        );
        // The RYW and monotonicity assertions already ran inside the session
        // threads; check the reporting surface here.
        assert!(outcome.all_converged());
        assert!(outcome.session_stats.writes > 0);
        assert!(outcome.session_stats.ryw_reads > 0);
        assert_eq!(outcome.per_class.len(), 3);
        for class in &outcome.per_class {
            assert!(class.reads > 0, "{} served no reads", class.kind.name());
        }
        assert_eq!(outcome.fleet.len(), 2);
        assert_eq!(
            outcome.fleet.iter().map(|f| f.served).sum::<u64>(),
            outcome.total_reads(),
            "every read (including the closing strong read) was served by the fleet"
        );
        assert!(outcome.total_reads() > 0);
    }

    #[test]
    fn failover_experiment_runs_end_to_end() {
        let mut setup = StreamingSetup::new(Duration::from_millis(200), 2, 2);
        setup.op_cost = OpCost::free();
        setup.population = adversarial_population();
        let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(2));
        let outcome = run_failover_streaming(
            &setup,
            factory,
            ReplicaSpec::C5Faithful,
            Duration::from_millis(100),
            true,
        );
        assert!(outcome.primary.committed > 0);
        assert!(outcome.promoted_cut >= outcome.exposed_at_kill);
        assert!(
            outcome.resumed.committed > 0,
            "promoted primary serves traffic"
        );
        let standby = outcome.standby.expect("standby requested");
        assert!(standby.caught_up, "standby must match the promoted primary");
        assert_eq!(standby.checkpoint_cut, outcome.promoted_cut);
    }

    #[test]
    fn every_replica_spec_builds_and_applies() {
        for spec in [
            ReplicaSpec::C5Faithful,
            ReplicaSpec::C5MyRocks,
            ReplicaSpec::KuaFu {
                ignore_constraints: false,
            },
            ReplicaSpec::SingleThreaded,
            ReplicaSpec::TableGranularity,
            ReplicaSpec::PageGranularity { rows_per_page: 16 },
        ] {
            let setup = OfflineSetup::new(2, 50, 2);
            let factory: Arc<dyn TxnFactory> = Arc::new(InsertOnlyWorkload::new(2));
            let outcome = run_offline_mvtso(&setup, factory, spec);
            assert_eq!(
                outcome.replica_metrics.applied_txns,
                100,
                "{} failed",
                spec.name()
            );
        }
    }
}
