//! A minimal JSON value, writer, and parser.
//!
//! The workspace deliberately carries no third-party dependencies, so the
//! `BENCH_*.json` trajectory files are produced (and re-validated) by this
//! hand-rolled module instead of serde. It supports exactly what the bench
//! schema needs: objects with ordered keys, arrays, finite numbers, strings,
//! booleans, and null. Numbers are emitted with enough precision to
//! round-trip the measurements; non-finite floats are rejected at write time
//! so a broken run can never produce a file that parses as valid JSON.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so emitted files diff
/// cleanly across revisions.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (JSON has one number type; we store f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as an ordered key/value list.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Self {
        JsonValue::Num(n.into())
    }

    /// Looks up a key in an object (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value as pretty-printed JSON with a trailing newline
    /// (the format the committed `BENCH_*.json` files use).
    ///
    /// # Panics
    ///
    /// Panics if any number in the tree is non-finite — a NaN lag percentile
    /// is a bug in the measurement, not something to serialize.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(out, *n),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline(out, indent);
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                newline(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    assert!(n.is_finite(), "refusing to serialize non-finite number {n}");
    if n == n.trunc() && n.abs() < 1e15 {
        write!(out, "{}", n as i64).unwrap();
    } else {
        write!(out, "{n}").unwrap();
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Returns an error message with a byte offset on
/// malformed input. Accepts exactly the subset [`JsonValue::pretty`] emits
/// plus arbitrary whitespace, escape sequences, and scientific notation, so
/// it can re-read committed baselines and validate CI smoke output.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs never appear in bench output;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let doc = JsonValue::Obj(vec![
            ("name".into(), JsonValue::str("pipeline")),
            ("count".into(), JsonValue::num(42u32)),
            ("ratio".into(), JsonValue::Num(0.125)),
            ("ok".into(), JsonValue::Bool(true)),
            ("missing".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Arr(vec![JsonValue::num(1u32), JsonValue::num(2u32)]),
            ),
            ("empty_obj".into(), JsonValue::Obj(vec![])),
            ("empty_arr".into(), JsonValue::Arr(vec![])),
        ]);
        let text = doc.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn escapes_and_reparses_awkward_strings() {
        let doc = JsonValue::str("a\"b\\c\nd\te\u{1}f");
        let back = parse(&doc.pretty()).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_scientific_notation_and_negatives() {
        let v = parse("[-1.5e3, 2E-2, -7]").unwrap();
        let arr = v.as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(-1500.0));
        assert_eq!(arr[1].as_num(), Some(0.02));
        assert_eq!(arr[2].as_num(), Some(-7.0));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(JsonValue::num(1500u32).pretty(), "1500\n");
        assert_eq!(JsonValue::Num(1.25).pretty(), "1.25\n");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn refuses_nan() {
        JsonValue::Num(f64::NAN).pretty();
    }

    #[test]
    fn get_walks_objects() {
        let v = parse("{\"a\": {\"b\": 3}}").unwrap();
        assert_eq!(
            v.get("a")
                .and_then(|a| a.get("b"))
                .and_then(JsonValue::as_num),
            Some(3.0)
        );
        assert!(v.get("nope").is_none());
    }
}
