//! Experiment harness for the C5 reproduction.
//!
//! The `experiments` binary (in `src/bin`) exposes one sub-command per
//! figure/table of the paper's evaluation; the heavy lifting lives here so
//! the Criterion benches and the integration tests can reuse it.
//!
//! Two experiment shapes cover everything in the paper:
//!
//! * **Streaming** ([`harness::run_streaming`]) — the MyRocks-style setup of
//!   Section 6: a two-phase-locking primary executes a workload with
//!   closed-loop clients while its log streams live to a backup replica;
//!   we measure the primary's throughput, the backup's apply throughput, and
//!   the replication-lag distribution.
//! * **Offline replay** ([`harness::run_offline_mvtso`]) — the Cicada-style
//!   setup of Section 7: the MVTSO primary runs the workload (its per-thread
//!   logs are coalesced afterwards, as in the paper's prototype), then the
//!   backup replays the log as fast as it can; comparing the primary's
//!   execution time with the backup's replay time answers "does it keep up?".
//!
//! [`scale::Scale`] switches every experiment between a quick smoke
//! configuration (seconds, used by tests and `--quick`) and a fuller one.
//!
//! ## The committed performance trajectory
//!
//! Beyond the figure-shaped experiments, `experiments bench` ([`report`])
//! runs every scenario at *fixed, documented parameters*
//! ([`c5_common::BenchConfig::fixed`]) and emits one machine-readable
//! `BENCH_<name>.json` per scenario — apply-path ns/record, streaming
//! throughput and lag percentiles, the shard-sweep cut-coordinator curve,
//! failover takeover times, and per-class read latency/staleness. The
//! emitted files are validated ([`report::validate_bench`]) and **committed
//! at the repository root**, which turns every performance claim in the repo
//! into a falsifiable number: a perf-flavored change is expected to move a
//! field in a committed `BENCH_*.json`, and the diff *is* the evidence. The
//! JSON is hand-rolled ([`json`]) because the workspace deliberately has no
//! serialization dependency. DESIGN.md's "Performance methodology" section
//! documents what each field measures and which paper figure it maps to.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod json;
pub mod obs_export;
pub mod report;
pub mod scale;

pub use harness::{
    FanOutOutcome, FanOutReplicaOutcome, OfflineOutcome, ReplicaSpec, StreamingOutcome,
};
pub use scale::Scale;
