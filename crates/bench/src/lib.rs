//! Experiment harness for the C5 reproduction.
//!
//! The `experiments` binary (in `src/bin`) exposes one sub-command per
//! figure/table of the paper's evaluation; the heavy lifting lives here so
//! the Criterion benches and the integration tests can reuse it.
//!
//! Two experiment shapes cover everything in the paper:
//!
//! * **Streaming** ([`harness::run_streaming`]) — the MyRocks-style setup of
//!   Section 6: a two-phase-locking primary executes a workload with
//!   closed-loop clients while its log streams live to a backup replica;
//!   we measure the primary's throughput, the backup's apply throughput, and
//!   the replication-lag distribution.
//! * **Offline replay** ([`harness::run_offline_mvtso`]) — the Cicada-style
//!   setup of Section 7: the MVTSO primary runs the workload (its per-thread
//!   logs are coalesced afterwards, as in the paper's prototype), then the
//!   backup replays the log as fast as it can; comparing the primary's
//!   execution time with the backup's replay time answers "does it keep up?".
//!
//! [`scale::Scale`] switches every experiment between a quick smoke
//! configuration (seconds, used by tests and `--quick`) and a fuller one.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod scale;

pub use harness::{
    FanOutOutcome, FanOutReplicaOutcome, OfflineOutcome, ReplicaSpec, StreamingOutcome,
};
pub use scale::Scale;
