//! JSON exposition for `c5-obs` snapshots and trace timelines.
//!
//! `c5-obs` sits below `c5-common` and deliberately has no serialization
//! dependency; the workspace's hand-rolled JSON lives here in `c5-bench`
//! ([`crate::json`]), so this module is where a [`MetricsSnapshot`] and a
//! merged [`TraceRecord`] timeline become machine-readable documents — the
//! `experiments obs` dump, the `BENCH_obs.json` scenario, and the
//! `stage_ns` block inside `BENCH_pipeline.json`.
//!
//! Histograms are rendered as summary statistics (count/sum/min/max/mean
//! and the p50/p99 nearest-rank quantiles), not raw buckets: the committed
//! BENCH files are meant to be diffed by humans, and 513 bucket counts per
//! series would bury the signal.

use c5_obs::{HistogramSnapshot, MetricsSnapshot, PipelineStage, TraceEvent, TraceRecord};

use crate::json::JsonValue;

/// Renders one histogram snapshot as a summary-statistics object.
pub fn histogram_json(h: &HistogramSnapshot) -> JsonValue {
    JsonValue::Obj(vec![
        ("count".into(), JsonValue::num(h.count() as f64)),
        ("sum".into(), JsonValue::num(h.sum() as f64)),
        ("min".into(), JsonValue::num(h.min() as f64)),
        ("p50".into(), JsonValue::num(h.percentile(0.5) as f64)),
        ("p99".into(), JsonValue::num(h.percentile(0.99) as f64)),
        ("max".into(), JsonValue::num(h.max() as f64)),
        ("mean".into(), JsonValue::num(h.mean())),
    ])
}

/// Renders a coherent metrics snapshot as one JSON object with `counters`,
/// `gauges`, and `histograms` sub-objects keyed by metric name (labels
/// embedded in the name are carried through verbatim as part of the key).
pub fn snapshot_json(snap: &MetricsSnapshot) -> JsonValue {
    let counters = snap
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), JsonValue::num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), JsonValue::num(*v as f64)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(name, h)| (name.clone(), histogram_json(h)))
        .collect();
    JsonValue::Obj(vec![
        ("counters".into(), JsonValue::Obj(counters)),
        ("gauges".into(), JsonValue::Obj(gauges)),
        ("histograms".into(), JsonValue::Obj(histograms)),
    ])
}

/// Renders one trace event's payload fields (everything except the
/// timestamp and thread, which belong to the enclosing record).
fn event_json(event: &TraceEvent) -> Vec<(String, JsonValue)> {
    match event {
        TraceEvent::Stage {
            stage,
            dwell_ns,
            queue_depth,
        } => vec![
            ("stage".into(), JsonValue::str(stage.name())),
            ("dwell_ns".into(), JsonValue::num(*dwell_ns as f64)),
            ("queue_depth".into(), JsonValue::num(*queue_depth as f64)),
        ],
        TraceEvent::Ship {
            segment_seq,
            records,
            subscribers,
            elapsed_ns,
        } => vec![
            ("segment_seq".into(), JsonValue::num(*segment_seq as f64)),
            ("records".into(), JsonValue::num(*records as f64)),
            ("subscribers".into(), JsonValue::num(*subscribers as f64)),
            ("elapsed_ns".into(), JsonValue::num(*elapsed_ns as f64)),
        ],
        TraceEvent::Route {
            class,
            replica,
            blocked_ns,
            outcome,
        } => vec![
            ("class".into(), JsonValue::str(*class)),
            (
                "replica".into(),
                match replica {
                    Some(id) => JsonValue::num(*id as f64),
                    None => JsonValue::Null,
                },
            ),
            ("blocked_ns".into(), JsonValue::num(*blocked_ns as f64)),
            ("outcome".into(), JsonValue::str(outcome.name())),
        ],
        TraceEvent::Lifecycle { replica, from, to } => vec![
            ("replica".into(), JsonValue::num(*replica as f64)),
            ("from".into(), JsonValue::str(*from)),
            ("to".into(), JsonValue::str(*to)),
        ],
        TraceEvent::Recovery { phase, elapsed_ns } => vec![
            ("phase".into(), JsonValue::str(*phase)),
            ("elapsed_ns".into(), JsonValue::num(*elapsed_ns as f64)),
        ],
        TraceEvent::Span { name, elapsed_ns } => vec![
            ("name".into(), JsonValue::str(*name)),
            ("elapsed_ns".into(), JsonValue::num(*elapsed_ns as f64)),
        ],
    }
}

/// Renders a merged timeline as a JSON array. Timestamps are emitted as
/// `offset_ns` relative to the first record — absolute epoch nanoseconds
/// exceed f64's integer range (2^53), relative offsets within a run do not.
pub fn timeline_json(records: &[TraceRecord]) -> JsonValue {
    let epoch = records.first().map(|r| r.at_nanos).unwrap_or(0);
    JsonValue::Arr(
        records
            .iter()
            .map(|r| {
                let mut fields = vec![
                    (
                        "offset_ns".into(),
                        JsonValue::num(r.at_nanos.saturating_sub(epoch) as f64),
                    ),
                    ("thread".into(), JsonValue::str(r.thread.as_ref())),
                    ("kind".into(), JsonValue::str(r.event.kind())),
                ];
                fields.extend(event_json(&r.event));
                JsonValue::Obj(fields)
            })
            .collect(),
    )
}

/// Counts a merged timeline by event kind, in a fixed slug order.
pub fn kind_counts(records: &[TraceRecord]) -> Vec<(&'static str, u64)> {
    let kinds = ["stage", "ship", "route", "lifecycle", "recovery", "span"];
    kinds
        .iter()
        .map(|kind| {
            let n = records.iter().filter(|r| r.event.kind() == *kind).count();
            (*kind, n as u64)
        })
        .collect()
}

/// The `stage_ns` block for `BENCH_pipeline.json`: one summary object per
/// pipeline stage, read from the `stage_dwell_ns{stage="…"}` histograms a
/// replica's pipeline records when an [`c5_obs::Obs`] sink is attached.
/// Stages with no samples are emitted as `null` so a validator can insist
/// on coverage.
pub fn stage_ns_json(snap: &MetricsSnapshot) -> JsonValue {
    JsonValue::Obj(
        PipelineStage::all()
            .iter()
            .map(|stage| {
                let name = format!("stage_dwell_ns{{stage=\"{}\"}}", stage.name());
                let value = match snap.histogram(&name) {
                    Some(h) if !h.is_empty() => histogram_json(h),
                    _ => JsonValue::Null,
                };
                (stage.name().to_string(), value)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_obs::{Obs, RouteOutcome};

    #[test]
    fn snapshot_round_trips_through_the_parser() {
        let obs = Obs::new();
        obs.metrics.counter("ship_segments_total").add(3);
        obs.metrics.gauge("ingest_queue_depth").set(-2);
        let h = obs.metrics.histogram("ship_ns");
        h.record(100);
        h.record(1_000);

        let doc = snapshot_json(&obs.metrics.snapshot());
        let text = doc.pretty();
        let back = crate::json::parse(&text).expect("snapshot JSON must parse");
        let counters = back.get("counters").unwrap();
        assert_eq!(
            counters.get("ship_segments_total").and_then(|v| v.as_num()),
            Some(3.0)
        );
        let gauges = back.get("gauges").unwrap();
        assert_eq!(
            gauges.get("ingest_queue_depth").and_then(|v| v.as_num()),
            Some(-2.0)
        );
        let hist = back.get("histograms").unwrap().get("ship_ns").unwrap();
        assert_eq!(hist.get("count").and_then(|v| v.as_num()), Some(2.0));
        assert_eq!(hist.get("min").and_then(|v| v.as_num()), Some(100.0));
        assert_eq!(hist.get("max").and_then(|v| v.as_num()), Some(1_000.0));
    }

    #[test]
    fn timeline_uses_relative_offsets_and_typed_fields() {
        let obs = Obs::new();
        obs.trace.record(TraceEvent::Stage {
            stage: PipelineStage::Apply,
            dwell_ns: 42,
            queue_depth: 3,
        });
        obs.trace.record(TraceEvent::Route {
            class: "strong",
            replica: None,
            blocked_ns: 7,
            outcome: RouteOutcome::Timeout,
        });

        let timeline = obs.trace.merged();
        let doc = timeline_json(&timeline);
        let arr = doc.as_arr().expect("timeline is an array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("offset_ns").and_then(|v| v.as_num()), Some(0.0));
        assert_eq!(arr[0].get("kind").and_then(|v| v.as_str()), Some("stage"));
        assert_eq!(arr[0].get("stage").and_then(|v| v.as_str()), Some("apply"));
        assert_eq!(arr[1].get("kind").and_then(|v| v.as_str()), Some("route"));
        assert!(matches!(arr[1].get("replica"), Some(JsonValue::Null)));
        assert_eq!(
            arr[1].get("outcome").and_then(|v| v.as_str()),
            Some("timeout")
        );

        let counts = kind_counts(&timeline);
        assert!(counts.contains(&("stage", 1)));
        assert!(counts.contains(&("route", 1)));
        assert!(counts.contains(&("ship", 0)));
    }

    #[test]
    fn stage_ns_block_covers_all_four_stages() {
        let obs = Obs::new();
        obs.metrics
            .histogram("stage_dwell_ns{stage=\"apply\"}")
            .record(500);

        let block = stage_ns_json(&obs.metrics.snapshot());
        let apply = block.get("apply").expect("apply stage present");
        assert_eq!(apply.get("count").and_then(|v| v.as_num()), Some(1.0));
        assert!(
            matches!(block.get("ingest"), Some(JsonValue::Null)),
            "unsampled stages surface as null, not absence"
        );
        assert!(block.get("expose").is_some());
    }
}
