//! The committed benchmark suite behind the `bench` sub-command.
//!
//! Every scenario here runs at the fixed parameters of
//! [`BenchConfig::fixed`] and emits one machine-readable `BENCH_<name>.json`
//! file at the repository root. The files are *committed*: they are the
//! repo's perf trajectory, and the contract (see DESIGN.md, "Performance
//! methodology") is that every perf-flavored PR moves a number in one of
//! them — in both directions, visibly, diffably.
//!
//! Seven files are emitted:
//!
//! * `BENCH_pipeline.json` — apply-path ns/record for the faithful,
//!   MyRocks-constrained, and 8-shard replicas replaying one pre-materialized
//!   log (zero simulated op cost, so pipeline overhead is the entire number),
//!   plus one live streaming run for primary throughput and replication lag.
//!   Carries the `baseline` block recording the pre-optimization ns/record
//!   this PR's batching work is measured against, and a `stage_ns` block
//!   breaking the faithful replay down per pipeline stage (ingest /
//!   schedule / apply / expose dwell summaries from an attached
//!   [`c5_obs::Obs`] sink).
//! * `BENCH_fanout.json` — 1 primary → N replicas, per-replica lag
//!   percentiles (the paper's Figure 8 quantity).
//! * `BENCH_sharded.json` — the shard sweep from 1 up to
//!   [`BenchConfig::max_sweep_shards`]. Above 8 shards the sweep stops
//!   dividing a fixed worker budget and grants every shard a worker — the
//!   high-worker leg whose cut frequency (`cuts_taken`) locates the
//!   cut-coordinator scaling knee.
//! * `BENCH_failover.json` — kill/promote/resume: takeover ms, promotion
//!   drain ms, backlog, and the lag-bounds-takeover check (Figure 9's
//!   claim).
//! * `BENCH_reads.json` — per-consistency-class read latency and staleness
//!   percentiles over a fan-out fleet.
//! * `BENCH_elastic.json` — membership churn on a live fleet: online
//!   join-to-Serving time, online retire drain time, and lag-during-churn
//!   percentiles (the joiner's lag samples only cover its post-join life).
//! * `BENCH_obs.json` — the observability layer observing itself: the
//!   elastic scenario re-run against a run-local [`c5_obs::Obs`] sink, with
//!   the full metrics snapshot (JSON exposition of every counter, gauge and
//!   histogram) plus the merged trace timeline counted by event kind — the
//!   committed proof that every instrumented subsystem actually speaks.
//!
//! Each scenario validates its own emitted document against
//! [`validate_bench`] before the file is written, so a run that produces a
//! schema-breaking document fails loudly (CI runs this in `--smoke` mode on
//! every push and uploads the JSON as an artifact).

use std::sync::Arc;
use std::time::Duration;

use c5_common::{BenchConfig, OpCost, PrimaryConfig, ReplicaConfig};
use c5_core::lag::LagStats;
use c5_core::replica::{drive_segments, ClonedConcurrencyControl};
use c5_core::ShardedC5Replica;
use c5_obs::{MetricsSnapshot, Obs, PipelineStage};
use c5_primary::{ClosedLoopDriver, MvtsoEngine, RunLength, TxnFactory};
use c5_storage::MvStore;
use c5_workloads::synthetic::{
    adversarial_population, shard_span_population, AdversarialWorkload, ShardSpanWorkload,
    SYNTHETIC_TABLE,
};

use crate::harness::{
    preload, run_elastic_streaming, run_failover_streaming, run_fanout_streaming,
    run_reads_streaming, run_sharded_streaming, run_streaming, ReplicaSpec, StreamingSetup,
};
use crate::json::JsonValue;
use crate::obs_export::{kind_counts, snapshot_json, stage_ns_json};

/// Schema version stamped into every emitted file. Bump when a field is
/// renamed or removed (adding fields is backward compatible).
pub const SCHEMA_VERSION: u64 = 1;

/// The key space the apply-path replay and shard sweep run over. Divides
/// evenly into up to 64 range shards.
pub const BENCH_KEY_SPACE: u64 = 4096;

/// Shard count of the sharded apply-path replay target.
pub const APPLY_SHARDS: usize = 8;

/// Staleness bound handed to the bounded-staleness read class.
pub const STALENESS_BOUND: Duration = Duration::from_millis(100);

/// Apply-path ns/record measured at [`BenchConfig::fixed`] on the revision
/// immediately *before* the batched dispatch, batched watermark publication,
/// and routing-buffer-reuse changes that landed together with this suite.
/// Emitted verbatim in `BENCH_pipeline.json`'s `baseline` block so the first
/// trajectory step (before → after) stays visible in the committed file
/// rather than only in the git history of a number.
pub const PRE_CHANGE_NS_PER_RECORD: &[(&str, f64)] = &[
    ("c5", 1787.0),
    ("c5-myrocks", 1527.0),
    ("c5-sharded-8", 1647.0),
];

/// One scenario: emits a complete `BENCH_<name>.json` document body.
type Scenario = fn(&BenchConfig, &str) -> JsonValue;

/// Runs the whole suite and writes `BENCH_*.json` into `out_dir`. Returns
/// the validated file names, or the first validation/IO failure.
pub fn run(
    config: &BenchConfig,
    mode: &str,
    out_dir: &std::path::Path,
) -> Result<Vec<String>, String> {
    config.validate().map_err(|e| e.to_string())?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("creating {}: {e}", out_dir.display()))?;
    smoke_guard(mode, out_dir)?;
    let scenarios: [(&str, Scenario); 7] = [
        ("pipeline", pipeline_scenario),
        ("fanout", fanout_scenario),
        ("sharded", sharded_scenario),
        ("failover", failover_scenario),
        ("reads", reads_scenario),
        ("elastic", elastic_scenario),
        ("obs", obs_scenario),
    ];
    let mut written = Vec::new();
    for (name, scenario) in scenarios {
        println!("bench: running {name} ({mode})...");
        let doc = scenario(config, mode);
        validate_bench(name, &doc)
            .map_err(|e| format!("BENCH_{name}.json failed validation: {e}"))?;
        let file = format!("BENCH_{name}.json");
        let path = out_dir.join(&file);
        std::fs::write(&path, doc.pretty())
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!("bench: wrote {}", path.display());
        written.push(file);
    }
    Ok(written)
}

/// Resolves the directory `BENCH_*.json` files are written to: the
/// `BENCH_OUT_DIR` environment variable if set (tests and CI point it at a
/// scratch directory), otherwise the repository root for `fixed` runs — and
/// a scratch directory under the system temp dir for `smoke` runs, whose
/// reduced-iteration numbers must never overwrite the committed
/// full-parameter baselines at the repo root.
pub fn out_dir_for(mode: &str) -> std::path::PathBuf {
    match std::env::var_os("BENCH_OUT_DIR") {
        Some(dir) => std::path::PathBuf::from(dir),
        None if mode == "smoke" => {
            std::env::temp_dir().join(format!("c5-bench-smoke-{}", std::process::id()))
        }
        None => repo_root(),
    }
}

fn repo_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Refuses to let a smoke run write into the repository root, whatever path
/// spelling it arrived through: the committed `BENCH_*.json` files there are
/// full-parameter baselines, and a smoke overwrite silently rewrites the
/// repo's perf trajectory with throwaway numbers. `out_dir` must already
/// exist (the check canonicalizes both sides).
fn smoke_guard(mode: &str, out_dir: &std::path::Path) -> Result<(), String> {
    if mode != "smoke" {
        return Ok(());
    }
    let (Ok(out), Ok(root)) = (out_dir.canonicalize(), repo_root().canonicalize()) else {
        return Ok(());
    };
    if out == root {
        return Err(format!(
            "smoke mode refuses to write into the repository root ({}): it would \
             overwrite the committed full-parameter BENCH_*.json baselines; set \
             BENCH_OUT_DIR to a scratch directory or run without --smoke",
            root.display()
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

fn setup_for(config: &BenchConfig) -> StreamingSetup {
    let mut setup = StreamingSetup::new(
        config.duration,
        config.primary_threads,
        config.replica_workers,
    );
    setup.segment_records = config.segment_records;
    setup.seed = config.seed;
    setup
}

/// Materializes one deterministic log for the apply-path replay: the MVTSO
/// primary executes the shard-span workload (two uniform updates per
/// transaction over [`BENCH_KEY_SPACE`] preloaded rows, so the log carries
/// real per-row dependency chains *and* routes across every shard count)
/// with zero simulated op cost.
fn materialize_log(
    config: &BenchConfig,
) -> (
    Vec<(c5_common::RowRef, c5_common::Value)>,
    Vec<c5_log::Segment>,
) {
    let population = shard_span_population(BENCH_KEY_SPACE);
    let store = Arc::new(MvStore::default());
    preload(&store, &population);
    let engine = Arc::new(MvtsoEngine::new(
        store,
        PrimaryConfig::default()
            .with_threads(config.primary_threads)
            .with_op_cost(OpCost::free()),
    ));
    let factory: Arc<dyn TxnFactory> = Arc::new(ShardSpanWorkload::new(BENCH_KEY_SPACE));
    let per_client = (config.apply_txns / config.primary_threads as u64).max(1);
    ClosedLoopDriver::with_seed(config.seed).run_mvtso(
        &engine,
        &factory,
        config.primary_threads,
        RunLength::PerClientCount(per_client),
    );
    (population, engine.take_segments(config.segment_records))
}

fn apply_target(
    name: &str,
    population: &[(c5_common::RowRef, c5_common::Value)],
    config: &BenchConfig,
    obs: &Arc<Obs>,
) -> Arc<dyn ClonedConcurrencyControl> {
    let store = Arc::new(MvStore::default());
    preload(&store, population);
    let replica_config = ReplicaConfig::default()
        .with_workers(config.replica_workers)
        .with_op_cost(OpCost::free())
        .with_snapshot_interval(Duration::from_millis(1))
        .with_obs(Arc::clone(obs));
    match name {
        "c5" => ReplicaSpec::C5Faithful.build(store, replica_config),
        "c5-myrocks" => ReplicaSpec::C5MyRocks.build(store, replica_config),
        "c5-sharded-8" => ShardedC5Replica::new(
            store,
            replica_config
                .with_workers((config.replica_workers / APPLY_SHARDS).max(1))
                .with_shards(APPLY_SHARDS)
                .with_shard_key_space(BENCH_KEY_SPACE),
        ),
        other => panic!("unknown apply target {other}"),
    }
}

fn pipeline_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    // Apply-path replay: same log, three replicas, best-of-N walls.
    let (population, segments) = materialize_log(config);
    let total_records: usize = segments.iter().map(c5_log::Segment::len).sum();
    let replays = if mode == "fixed" { 3 } else { 1 };
    let mut apply_rows = Vec::new();
    // The per-stage breakdown of the faithful target's best replay; every
    // replay runs with a fresh sink attached, so the ns/record numbers are
    // measured *with* instrumentation — the overhead is part of the product.
    let mut stage_snapshot = MetricsSnapshot::default();
    for target in ["c5", "c5-myrocks", "c5-sharded-8"] {
        let mut best_wall = Duration::MAX;
        let mut applied_writes = 0u64;
        let mut applied_txns = 0u64;
        for _ in 0..replays {
            let obs = Obs::new();
            let replica = apply_target(target, &population, config, &obs);
            let wall = drive_segments(replica.as_ref(), segments.clone());
            let metrics = replica.metrics();
            assert_eq!(
                metrics.applied_writes, total_records as u64,
                "{target}: replay must apply the whole log"
            );
            applied_writes = metrics.applied_writes;
            applied_txns = metrics.applied_txns;
            if wall < best_wall && target == "c5" {
                stage_snapshot = obs.metrics.snapshot();
            }
            best_wall = best_wall.min(wall);
        }
        let ns_per_record = best_wall.as_nanos() as f64 / applied_writes.max(1) as f64;
        println!("  apply {target}: {ns_per_record:.0} ns/record (best of {replays})");
        apply_rows.push(JsonValue::Obj(vec![
            ("protocol".into(), JsonValue::str(target)),
            ("records".into(), JsonValue::num(applied_writes as u32)),
            ("txns".into(), JsonValue::num(applied_txns as u32)),
            ("replays".into(), JsonValue::num(replays as u32)),
            (
                "best_wall_ms".into(),
                JsonValue::Num(best_wall.as_secs_f64() * 1e3),
            ),
            ("ns_per_record".into(), JsonValue::Num(ns_per_record)),
        ]));
    }

    // One live streaming leg for throughput + lag under the paper-like cost
    // model (the keep-up quantity; the replay above deliberately removes it).
    let mut setup = setup_for(config);
    setup.population = adversarial_population();
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    let outcome = run_streaming(
        &setup,
        factory,
        ReplicaSpec::C5Faithful,
        0,
        SYNTHETIC_TABLE,
        1,
    );
    let streaming = JsonValue::Obj(vec![
        ("protocol".into(), JsonValue::str(outcome.protocol)),
        ("workload".into(), JsonValue::str("adversarial")),
        (
            "primary_tps".into(),
            JsonValue::Num(outcome.primary_throughput()),
        ),
        (
            "committed".into(),
            JsonValue::num(outcome.primary.committed as u32),
        ),
        (
            "replica_tps".into(),
            JsonValue::Num(outcome.replica_throughput()),
        ),
        ("keeps_up".into(), JsonValue::Bool(outcome.keeps_up())),
        ("lag_ms".into(), lag_json(outcome.lag.as_ref())),
    ]);

    let baseline = JsonValue::Obj(vec![
        (
            "note".into(),
            JsonValue::str(
                "apply-path ns/record at fixed parameters immediately before \
                 the batched-dispatch/batched-watermark/buffer-reuse changes \
                 that landed with this suite",
            ),
        ),
        (
            "pre_change_ns_per_record".into(),
            JsonValue::Obj(
                PRE_CHANGE_NS_PER_RECORD
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), JsonValue::Num(*v)))
                    .collect(),
            ),
        ),
    ]);

    let mut fields = envelope("pipeline", mode, config);
    fields.push(("apply_path".into(), JsonValue::Arr(apply_rows)));
    fields.push(("stage_ns".into(), stage_ns_json(&stage_snapshot)));
    fields.push(("streaming".into(), streaming));
    fields.push(("baseline".into(), baseline));
    JsonValue::Obj(fields)
}

fn fanout_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    let mut setup = setup_for(config);
    setup.population = adversarial_population();
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    let outcome = run_fanout_streaming(
        &setup,
        factory,
        ReplicaSpec::C5Faithful,
        config.fanout_replicas,
    );
    assert!(outcome.all_converged(), "fan-out replicas must converge");
    let replicas = outcome
        .replicas
        .iter()
        .map(|r| {
            JsonValue::Obj(vec![
                ("replica".into(), JsonValue::num(r.replica as u32)),
                ("wall_ms".into(), JsonValue::Num(r.wall.as_secs_f64() * 1e3)),
                (
                    "applied_txns".into(),
                    JsonValue::num(r.metrics.applied_txns as u32),
                ),
                ("lag_ms".into(), lag_json(r.lag.as_ref())),
            ])
        })
        .collect();
    let mut fields = envelope("fanout", mode, config);
    fields.push(("protocol".into(), JsonValue::str(outcome.protocol)));
    fields.push((
        "primary_tps".into(),
        JsonValue::Num(outcome.primary.throughput()),
    ));
    fields.push((
        "committed".into(),
        JsonValue::num(outcome.primary.committed as u32),
    ));
    fields.push((
        "worst_p50_ms".into(),
        JsonValue::Num(outcome.worst_p50_ms()),
    ));
    fields.push(("all_converged".into(), JsonValue::Bool(true)));
    fields.push(("replicas".into(), JsonValue::Arr(replicas)));
    JsonValue::Obj(fields)
}

fn sharded_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    let mut sweep = Vec::new();
    for shards in config.sweep_shards() {
        // Constant worker budget while it divides; above that every shard
        // still gets one worker, so the 16–64-shard leg runs with more total
        // workers — the high-worker sweep the coordinator knee hides in.
        let workers_per_shard = (config.replica_workers / shards).max(1);
        let mut setup = setup_for(config);
        setup.replica_workers = workers_per_shard;
        setup.population = shard_span_population(BENCH_KEY_SPACE);
        let factory: Arc<dyn TxnFactory> = Arc::new(ShardSpanWorkload::new(BENCH_KEY_SPACE));
        let outcome = run_sharded_streaming(&setup, factory, shards, BENCH_KEY_SPACE);
        assert!(
            outcome.converged(),
            "{shards} shards: replica must apply the full log"
        );
        println!(
            "  {shards} shards x {workers_per_shard} workers: lag p50 {:.2} ms, {} cuts",
            outcome.lag.as_ref().map(|l| l.p50_ms).unwrap_or(0.0),
            outcome.cuts_taken,
        );
        sweep.push(JsonValue::Obj(vec![
            ("shards".into(), JsonValue::num(shards as u32)),
            (
                "workers_total".into(),
                JsonValue::num((workers_per_shard * shards) as u32),
            ),
            (
                "primary_tps".into(),
                JsonValue::Num(outcome.primary.throughput()),
            ),
            (
                "applied_txns".into(),
                JsonValue::num(outcome.replica_metrics.applied_txns as u32),
            ),
            (
                "cross_shard_share".into(),
                JsonValue::Num(outcome.cross_shard_share()),
            ),
            (
                "cuts_taken".into(),
                JsonValue::num(outcome.cuts_taken as u32),
            ),
            (
                "replica_wall_ms".into(),
                JsonValue::Num(outcome.replica_wall.as_secs_f64() * 1e3),
            ),
            ("lag_ms".into(), lag_json(outcome.lag.as_ref())),
            ("converged".into(), JsonValue::Bool(true)),
        ]));
    }
    let mut fields = envelope("sharded", mode, config);
    fields.push(("workload".into(), JsonValue::str("shard-span")));
    fields.push(("key_space".into(), JsonValue::num(BENCH_KEY_SPACE as u32)));
    fields.push(("sweep".into(), JsonValue::Arr(sweep)));
    JsonValue::Obj(fields)
}

fn failover_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    let mut setup = setup_for(config);
    setup.population = adversarial_population();
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    let outcome = run_failover_streaming(
        &setup,
        factory,
        ReplicaSpec::C5Faithful,
        config.duration / 2,
        true,
    );
    let standby_caught_up = outcome
        .standby
        .as_ref()
        .map(|s| s.caught_up)
        .unwrap_or(false);
    assert!(
        standby_caught_up,
        "standby must catch up to the promoted primary"
    );
    let mut fields = envelope("failover", mode, config);
    fields.push(("protocol".into(), JsonValue::str(outcome.protocol)));
    fields.push((
        "primary_tps".into(),
        JsonValue::Num(outcome.primary.throughput()),
    ));
    fields.push((
        "committed".into(),
        JsonValue::num(outcome.primary.committed as u32),
    ));
    fields.push((
        "shipped_seq".into(),
        JsonValue::Num(outcome.shipped_seq.as_u64() as f64),
    ));
    fields.push((
        "applied_at_kill".into(),
        JsonValue::Num(outcome.applied_at_kill.as_u64() as f64),
    ));
    fields.push((
        "backlog_records".into(),
        JsonValue::Num(outcome.backlog_records() as f64),
    ));
    fields.push((
        "lag_at_kill_ms".into(),
        lag_json(outcome.lag_at_kill.as_ref()),
    ));
    fields.push((
        "promotion_drain_ms".into(),
        JsonValue::Num(outcome.promotion_drain.as_secs_f64() * 1e3),
    ));
    fields.push((
        "takeover_ms".into(),
        JsonValue::Num(outcome.takeover.as_secs_f64() * 1e3),
    ));
    fields.push((
        "drain_bounded_by_lag".into(),
        JsonValue::Bool(outcome.drain_bounded_by_lag()),
    ));
    fields.push((
        "resumed_tps".into(),
        JsonValue::Num(outcome.resumed.throughput()),
    ));
    fields.push((
        "standby_caught_up".into(),
        JsonValue::Bool(standby_caught_up),
    ));
    JsonValue::Obj(fields)
}

fn reads_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    let mut setup = setup_for(config);
    setup.population = adversarial_population();
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    let outcome = run_reads_streaming(
        &setup,
        factory,
        ReplicaSpec::C5Faithful,
        config.fanout_replicas,
        config.read_sessions,
        STALENESS_BOUND,
    );
    assert!(outcome.all_converged(), "read fleet must converge");
    let classes = outcome
        .per_class
        .iter()
        .map(|class| {
            JsonValue::Obj(vec![
                ("class".into(), JsonValue::str(class.kind.name())),
                ("reads".into(), JsonValue::Num(class.reads as f64)),
                (
                    "reads_per_sec".into(),
                    JsonValue::Num(class.throughput(outcome.wall)),
                ),
                ("timeouts".into(), JsonValue::Num(class.timeouts as f64)),
                ("latency_ms".into(), lag_json(class.latency.as_ref())),
                ("staleness_ms".into(), lag_json(class.staleness.as_ref())),
            ])
        })
        .collect();
    let session = JsonValue::Obj(vec![
        (
            "writes".into(),
            JsonValue::Num(outcome.session_stats.writes as f64),
        ),
        (
            "ryw_reads".into(),
            JsonValue::Num(outcome.session_stats.ryw_reads as f64),
        ),
        (
            "replica_switches".into(),
            JsonValue::Num(outcome.session_stats.replica_switches as f64),
        ),
        (
            "timeouts".into(),
            JsonValue::Num(outcome.session_stats.timeouts as f64),
        ),
    ]);
    let mut fields = envelope("reads", mode, config);
    fields.push(("protocol".into(), JsonValue::str("c5")));
    fields.push((
        "staleness_bound_ms".into(),
        JsonValue::Num(STALENESS_BOUND.as_secs_f64() * 1e3),
    ));
    fields.push((
        "primary_tps".into(),
        JsonValue::Num(outcome.primary.throughput()),
    ));
    fields.push((
        "wall_ms".into(),
        JsonValue::Num(outcome.wall.as_secs_f64() * 1e3),
    ));
    fields.push(("sessions".into(), JsonValue::num(outcome.sessions as u32)));
    fields.push((
        "total_reads".into(),
        JsonValue::Num(outcome.total_reads() as f64),
    ));
    fields.push(("all_converged".into(), JsonValue::Bool(true)));
    fields.push(("classes".into(), JsonValue::Arr(classes)));
    fields.push(("session".into(), session));
    JsonValue::Obj(fields)
}

/// Seed fleet of the elastic scenario (the live fan-out a replica joins).
pub const ELASTIC_SEED_REPLICAS: usize = 3;

fn elastic_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    let mut setup = setup_for(config);
    setup.population = adversarial_population();
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    let outcome = run_elastic_streaming(
        &setup,
        factory,
        ELASTIC_SEED_REPLICAS,
        config.read_sessions,
        STALENESS_BOUND,
    );
    assert!(
        outcome.survivors_converged,
        "surviving members must expose the primary's full final state"
    );
    let join = JsonValue::Obj(vec![
        (
            "replica".into(),
            JsonValue::num(outcome.join.replica as u32),
        ),
        (
            "checkpoint_cut".into(),
            JsonValue::Num(outcome.join.checkpoint_cut.as_u64() as f64),
        ),
        (
            "stream_start".into(),
            JsonValue::Num(outcome.join.stream_start.as_u64() as f64),
        ),
        (
            "replayed_records".into(),
            JsonValue::Num(outcome.join.replayed_records as f64),
        ),
        (
            "join_to_serving_ms".into(),
            JsonValue::Num(outcome.join.join_to_serving.as_secs_f64() * 1e3),
        ),
    ]);
    let retire = JsonValue::Obj(vec![
        (
            "replica".into(),
            JsonValue::num(outcome.retire.replica as u32),
        ),
        (
            "drain_ms".into(),
            JsonValue::Num(outcome.retire.drain.as_secs_f64() * 1e3),
        ),
        (
            "retired_exposed".into(),
            JsonValue::Num(outcome.retire.retired_exposed.as_u64() as f64),
        ),
    ]);
    let survivors = outcome
        .survivor_lag
        .iter()
        .map(|(id, lag)| {
            JsonValue::Obj(vec![
                ("replica".into(), JsonValue::num(*id as u32)),
                (
                    "joined_mid_run".into(),
                    JsonValue::Bool(*id == outcome.join.replica),
                ),
                ("lag_ms".into(), lag_json(lag.as_ref())),
            ])
        })
        .collect();
    let classes = outcome
        .per_class
        .iter()
        .map(|class| {
            JsonValue::Obj(vec![
                ("class".into(), JsonValue::str(class.kind.name())),
                ("reads".into(), JsonValue::Num(class.reads as f64)),
                (
                    "reads_per_sec".into(),
                    JsonValue::Num(class.throughput(outcome.wall)),
                ),
                ("timeouts".into(), JsonValue::Num(class.timeouts as f64)),
                ("latency_ms".into(), lag_json(class.latency.as_ref())),
                ("staleness_ms".into(), lag_json(class.staleness.as_ref())),
            ])
        })
        .collect();
    let session = JsonValue::Obj(vec![
        (
            "writes".into(),
            JsonValue::Num(outcome.session_stats.writes as f64),
        ),
        (
            "ryw_reads".into(),
            JsonValue::Num(outcome.session_stats.ryw_reads as f64),
        ),
        (
            "replica_switches".into(),
            JsonValue::Num(outcome.session_stats.replica_switches as f64),
        ),
        (
            "timeouts".into(),
            JsonValue::Num(outcome.session_stats.timeouts as f64),
        ),
    ]);
    let mut fields = envelope("elastic", mode, config);
    fields.push(("protocol".into(), JsonValue::str("c5")));
    fields.push((
        "seed_replicas".into(),
        JsonValue::num(ELASTIC_SEED_REPLICAS as u32),
    ));
    fields.push((
        "staleness_bound_ms".into(),
        JsonValue::Num(STALENESS_BOUND.as_secs_f64() * 1e3),
    ));
    fields.push((
        "primary_tps".into(),
        JsonValue::Num(outcome.primary.throughput()),
    ));
    fields.push((
        "wall_ms".into(),
        JsonValue::Num(outcome.wall.as_secs_f64() * 1e3),
    ));
    fields.push(("sessions".into(), JsonValue::num(outcome.sessions as u32)));
    fields.push((
        "generations".into(),
        JsonValue::Num(outcome.generations as f64),
    ));
    fields.push(("join".into(), join));
    fields.push(("retire".into(), retire));
    fields.push(("survivors_converged".into(), JsonValue::Bool(true)));
    fields.push(("survivors".into(), JsonValue::Arr(survivors)));
    fields.push(("classes".into(), JsonValue::Arr(classes)));
    fields.push(("session".into(), session));
    JsonValue::Obj(fields)
}

fn obs_scenario(config: &BenchConfig, mode: &str) -> JsonValue {
    // A run-local sink: the document must contain exactly this run's
    // telemetry, not whatever else accumulated in the process global.
    let obs = Obs::new();
    let mut setup = setup_for(config);
    setup.population = adversarial_population();
    setup.obs = Arc::clone(&obs);
    let factory: Arc<dyn TxnFactory> = Arc::new(AdversarialWorkload::new(4));
    let outcome = run_elastic_streaming(
        &setup,
        factory,
        ELASTIC_SEED_REPLICAS,
        config.read_sessions,
        STALENESS_BOUND,
    );
    assert!(
        outcome.survivors_converged,
        "observed elastic run must converge"
    );

    let snap = obs.metrics.snapshot();
    let timeline = obs.trace.merged();
    let by_kind = JsonValue::Obj(
        kind_counts(&timeline)
            .into_iter()
            .map(|(kind, n)| (kind.to_string(), JsonValue::Num(n as f64)))
            .collect(),
    );
    let stages = JsonValue::Obj(
        PipelineStage::all()
            .iter()
            .map(|stage| {
                let name = format!("stage_dwell_ns{{stage=\"{}\"}}", stage.name());
                let count = snap.histogram(&name).map(|h| h.count()).unwrap_or(0);
                (stage.name().to_string(), JsonValue::Num(count as f64))
            })
            .collect(),
    );

    let mut fields = envelope("obs", mode, config);
    fields.push(("events_total".into(), JsonValue::Num(timeline.len() as f64)));
    fields.push((
        "events_dropped".into(),
        JsonValue::Num(obs.trace.dropped() as f64),
    ));
    fields.push(("by_kind".into(), by_kind));
    fields.push(("stage_samples".into(), stages));
    fields.push(("snapshot".into(), snapshot_json(&snap)));
    JsonValue::Obj(fields)
}

// ---------------------------------------------------------------------------
// Envelope + lag helpers
// ---------------------------------------------------------------------------

fn envelope(name: &str, mode: &str, config: &BenchConfig) -> Vec<(String, JsonValue)> {
    vec![
        (
            "schema_version".into(),
            JsonValue::num(SCHEMA_VERSION as u32),
        ),
        ("name".into(), JsonValue::str(name)),
        ("mode".into(), JsonValue::str(mode)),
        (
            "config".into(),
            JsonValue::Obj(vec![
                (
                    "duration_ms".into(),
                    JsonValue::Num(config.duration.as_secs_f64() * 1e3),
                ),
                (
                    "primary_threads".into(),
                    JsonValue::num(config.primary_threads as u32),
                ),
                (
                    "replica_workers".into(),
                    JsonValue::num(config.replica_workers as u32),
                ),
                (
                    "segment_records".into(),
                    JsonValue::num(config.segment_records as u32),
                ),
                (
                    "apply_txns".into(),
                    JsonValue::Num(config.apply_txns as f64),
                ),
                (
                    "fanout_replicas".into(),
                    JsonValue::num(config.fanout_replicas as u32),
                ),
                (
                    "read_sessions".into(),
                    JsonValue::num(config.read_sessions as u32),
                ),
                (
                    "max_sweep_shards".into(),
                    JsonValue::num(config.max_sweep_shards as u32),
                ),
                ("seed".into(), JsonValue::Num(config.seed as f64)),
            ]),
        ),
    ]
}

/// Serializes a lag/latency summary: the nearest-rank percentiles of
/// [`LagStats`] in milliseconds, or `null` when no samples were recorded.
fn lag_json(stats: Option<&LagStats>) -> JsonValue {
    match stats {
        None => JsonValue::Null,
        Some(l) => JsonValue::Obj(vec![
            ("count".into(), JsonValue::Num(l.count as f64)),
            ("min".into(), JsonValue::Num(l.min_ms)),
            ("p50".into(), JsonValue::Num(l.p50_ms)),
            ("p99".into(), JsonValue::Num(l.p99_ms)),
            ("max".into(), JsonValue::Num(l.max_ms)),
            ("mean".into(), JsonValue::Num(l.mean_ms)),
        ]),
    }
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

/// Validates an emitted (or re-read) `BENCH_<name>.json` document: every
/// documented field present, numbers finite and non-negative, percentiles
/// ordered. Returns the first violation.
pub fn validate_bench(name: &str, doc: &JsonValue) -> Result<(), String> {
    let version = require_num(doc, "schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("schema_version {version} != {SCHEMA_VERSION}"));
    }
    if doc.get("name").and_then(JsonValue::as_str) != Some(name) {
        return Err(format!("name field does not match {name}"));
    }
    match doc.get("mode").and_then(JsonValue::as_str) {
        Some("fixed") | Some("smoke") => {}
        other => return Err(format!("mode must be fixed|smoke, got {other:?}")),
    }
    let config = doc.get("config").ok_or("missing config")?;
    for field in [
        "duration_ms",
        "primary_threads",
        "replica_workers",
        "segment_records",
        "apply_txns",
        "fanout_replicas",
        "read_sessions",
        "max_sweep_shards",
        "seed",
    ] {
        let v = require_num(config, field)?;
        if field != "seed" && v <= 0.0 {
            return Err(format!("config.{field} must be positive, got {v}"));
        }
    }
    match name {
        "pipeline" => validate_pipeline(doc),
        "fanout" => validate_fanout(doc),
        "sharded" => validate_sharded(doc),
        "failover" => validate_failover(doc),
        "reads" => validate_reads(doc),
        "elastic" => validate_elastic(doc),
        "obs" => validate_obs(doc),
        other => Err(format!("unknown scenario {other}")),
    }
}

fn require_num(obj: &JsonValue, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("missing field {key}"))?
        .as_num()
        .ok_or_else(|| format!("field {key} is not a number"))?;
    if !v.is_finite() {
        return Err(format!("field {key} is not finite"));
    }
    Ok(v)
}

fn require_nonneg(obj: &JsonValue, key: &str) -> Result<f64, String> {
    let v = require_num(obj, key)?;
    if v < 0.0 {
        return Err(format!("field {key} must be non-negative, got {v}"));
    }
    Ok(v)
}

fn require_bool(obj: &JsonValue, key: &str) -> Result<bool, String> {
    match obj.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("field {key} is not a bool")),
        None => Err(format!("missing field {key}")),
    }
}

/// Validates a lag summary object: present fields, `count >= 1`, and the
/// nearest-rank ordering `0 <= min <= p50 <= p99 <= max`.
fn check_lag(value: &JsonValue, ctx: &str, required: bool) -> Result<(), String> {
    if matches!(value, JsonValue::Null) {
        if required {
            return Err(format!("{ctx}: lag summary is null but required"));
        }
        return Ok(());
    }
    let count = require_num(value, "count").map_err(|e| format!("{ctx}: {e}"))?;
    if count < 1.0 {
        return Err(format!("{ctx}: lag count must be >= 1"));
    }
    let min = require_nonneg(value, "min").map_err(|e| format!("{ctx}: {e}"))?;
    let p50 = require_nonneg(value, "p50").map_err(|e| format!("{ctx}: {e}"))?;
    let p99 = require_nonneg(value, "p99").map_err(|e| format!("{ctx}: {e}"))?;
    let max = require_nonneg(value, "max").map_err(|e| format!("{ctx}: {e}"))?;
    require_nonneg(value, "mean").map_err(|e| format!("{ctx}: {e}"))?;
    if !(min <= p50 && p50 <= p99 && p99 <= max) {
        return Err(format!(
            "{ctx}: percentiles out of order (min {min}, p50 {p50}, p99 {p99}, max {max})"
        ));
    }
    Ok(())
}

fn lag_field(obj: &JsonValue, key: &str, ctx: &str, required: bool) -> Result<(), String> {
    let value = obj
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing field {key}"))?;
    check_lag(value, &format!("{ctx}.{key}"), required)
}

fn validate_pipeline(doc: &JsonValue) -> Result<(), String> {
    let rows = doc
        .get("apply_path")
        .and_then(JsonValue::as_arr)
        .ok_or("missing apply_path array")?;
    if rows.len() != 3 {
        return Err(format!(
            "apply_path must have 3 targets, got {}",
            rows.len()
        ));
    }
    let mut seen = Vec::new();
    for row in rows {
        let protocol = row
            .get("protocol")
            .and_then(JsonValue::as_str)
            .ok_or("apply_path row missing protocol")?;
        seen.push(protocol.to_string());
        for field in ["records", "txns", "replays", "best_wall_ms"] {
            let v =
                require_nonneg(row, field).map_err(|e| format!("apply_path[{protocol}]: {e}"))?;
            if v <= 0.0 {
                return Err(format!("apply_path[{protocol}].{field} must be positive"));
            }
        }
        let ns = require_num(row, "ns_per_record")
            .map_err(|e| format!("apply_path[{protocol}]: {e}"))?;
        if !(1.0..1e9).contains(&ns) {
            return Err(format!(
                "apply_path[{protocol}].ns_per_record {ns} outside the sane range [1, 1e9)"
            ));
        }
    }
    for expect in ["c5", "c5-myrocks", "c5-sharded-8"] {
        if !seen.iter().any(|s| s == expect) {
            return Err(format!("apply_path missing target {expect}"));
        }
    }
    let stage_ns = doc.get("stage_ns").ok_or("missing stage_ns block")?;
    for stage in ["ingest", "schedule", "apply", "expose"] {
        let block = stage_ns
            .get(stage)
            .ok_or_else(|| format!("stage_ns missing stage {stage}"))?;
        if matches!(block, JsonValue::Null) {
            return Err(format!(
                "stage_ns.{stage} is null: the stage recorded no dwell samples"
            ));
        }
        let ctx = format!("stage_ns.{stage}");
        let count = require_nonneg(block, "count").map_err(|e| format!("{ctx}: {e}"))?;
        if count < 1.0 {
            return Err(format!("{ctx}: count must be >= 1"));
        }
        let min = require_nonneg(block, "min").map_err(|e| format!("{ctx}: {e}"))?;
        let p50 = require_nonneg(block, "p50").map_err(|e| format!("{ctx}: {e}"))?;
        let p99 = require_nonneg(block, "p99").map_err(|e| format!("{ctx}: {e}"))?;
        let max = require_nonneg(block, "max").map_err(|e| format!("{ctx}: {e}"))?;
        require_nonneg(block, "mean").map_err(|e| format!("{ctx}: {e}"))?;
        require_nonneg(block, "sum").map_err(|e| format!("{ctx}: {e}"))?;
        if !(min <= p50 && p50 <= p99 && p99 <= max) {
            return Err(format!("{ctx}: dwell percentiles out of order"));
        }
    }
    let streaming = doc.get("streaming").ok_or("missing streaming object")?;
    for field in ["primary_tps", "replica_tps", "committed"] {
        let v = require_nonneg(streaming, field).map_err(|e| format!("streaming: {e}"))?;
        if v <= 0.0 {
            return Err(format!("streaming.{field} must be positive"));
        }
    }
    require_bool(streaming, "keeps_up").map_err(|e| format!("streaming: {e}"))?;
    lag_field(streaming, "lag_ms", "streaming", true)?;
    let baseline = doc.get("baseline").ok_or("missing baseline block")?;
    let pre = baseline
        .get("pre_change_ns_per_record")
        .ok_or("baseline missing pre_change_ns_per_record")?;
    for target in ["c5", "c5-myrocks", "c5-sharded-8"] {
        let v = require_nonneg(pre, target).map_err(|e| format!("baseline: {e}"))?;
        if v <= 0.0 {
            return Err(format!(
                "baseline.pre_change_ns_per_record.{target} must be positive"
            ));
        }
    }
    Ok(())
}

fn validate_fanout(doc: &JsonValue) -> Result<(), String> {
    require_nonneg(doc, "primary_tps")?;
    require_nonneg(doc, "committed")?;
    require_nonneg(doc, "worst_p50_ms")?;
    if !require_bool(doc, "all_converged")? {
        return Err("fanout did not converge".into());
    }
    let replicas = doc
        .get("replicas")
        .and_then(JsonValue::as_arr)
        .ok_or("missing replicas array")?;
    if replicas.is_empty() {
        return Err("replicas array is empty".into());
    }
    for (i, replica) in replicas.iter().enumerate() {
        let ctx = format!("replicas[{i}]");
        require_nonneg(replica, "replica").map_err(|e| format!("{ctx}: {e}"))?;
        require_nonneg(replica, "wall_ms").map_err(|e| format!("{ctx}: {e}"))?;
        require_nonneg(replica, "applied_txns").map_err(|e| format!("{ctx}: {e}"))?;
        lag_field(replica, "lag_ms", &ctx, true)?;
    }
    Ok(())
}

fn validate_sharded(doc: &JsonValue) -> Result<(), String> {
    require_nonneg(doc, "key_space")?;
    let sweep = doc
        .get("sweep")
        .and_then(JsonValue::as_arr)
        .ok_or("missing sweep array")?;
    if sweep.is_empty() {
        return Err("sweep array is empty".into());
    }
    let mut last_shards = 0.0;
    for (i, point) in sweep.iter().enumerate() {
        let ctx = format!("sweep[{i}]");
        let shards = require_num(point, "shards").map_err(|e| format!("{ctx}: {e}"))?;
        if shards <= last_shards {
            return Err(format!("{ctx}: shard counts must increase"));
        }
        last_shards = shards;
        for field in [
            "workers_total",
            "primary_tps",
            "applied_txns",
            "replica_wall_ms",
        ] {
            let v = require_nonneg(point, field).map_err(|e| format!("{ctx}: {e}"))?;
            if v <= 0.0 {
                return Err(format!("{ctx}.{field} must be positive"));
            }
        }
        let share =
            require_nonneg(point, "cross_shard_share").map_err(|e| format!("{ctx}: {e}"))?;
        if share > 1.0 {
            return Err(format!("{ctx}.cross_shard_share {share} > 1"));
        }
        require_nonneg(point, "cuts_taken").map_err(|e| format!("{ctx}: {e}"))?;
        if !require_bool(point, "converged").map_err(|e| format!("{ctx}: {e}"))? {
            return Err(format!("{ctx}: did not converge"));
        }
        lag_field(point, "lag_ms", &ctx, true)?;
    }
    Ok(())
}

fn validate_failover(doc: &JsonValue) -> Result<(), String> {
    for field in ["primary_tps", "committed", "shipped_seq"] {
        let v = require_nonneg(doc, field)?;
        if v <= 0.0 {
            return Err(format!("{field} must be positive"));
        }
    }
    require_nonneg(doc, "applied_at_kill")?;
    require_nonneg(doc, "backlog_records")?;
    require_nonneg(doc, "promotion_drain_ms")?;
    let takeover = require_nonneg(doc, "takeover_ms")?;
    if takeover <= 0.0 {
        return Err("takeover_ms must be positive".into());
    }
    require_nonneg(doc, "resumed_tps")?;
    lag_field(doc, "lag_at_kill_ms", "failover", false)?;
    require_bool(doc, "drain_bounded_by_lag")?;
    if !require_bool(doc, "standby_caught_up")? {
        return Err("standby did not catch up".into());
    }
    Ok(())
}

fn validate_reads(doc: &JsonValue) -> Result<(), String> {
    require_nonneg(doc, "staleness_bound_ms")?;
    require_nonneg(doc, "primary_tps")?;
    require_nonneg(doc, "wall_ms")?;
    require_nonneg(doc, "sessions")?;
    let total = require_nonneg(doc, "total_reads")?;
    if total <= 0.0 {
        return Err("total_reads must be positive".into());
    }
    if !require_bool(doc, "all_converged")? {
        return Err("reads fleet did not converge".into());
    }
    let classes = doc
        .get("classes")
        .and_then(JsonValue::as_arr)
        .ok_or("missing classes array")?;
    if classes.len() != 3 {
        return Err(format!(
            "expected 3 consistency classes, got {}",
            classes.len()
        ));
    }
    for class in classes {
        let kind = class
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or("class row missing class name")?;
        let reads = require_nonneg(class, "reads").map_err(|e| format!("{kind}: {e}"))?;
        if reads <= 0.0 {
            return Err(format!("{kind}: served no reads"));
        }
        require_nonneg(class, "reads_per_sec").map_err(|e| format!("{kind}: {e}"))?;
        require_nonneg(class, "timeouts").map_err(|e| format!("{kind}: {e}"))?;
        lag_field(class, "latency_ms", kind, false)?;
        lag_field(class, "staleness_ms", kind, false)?;
    }
    let session = doc.get("session").ok_or("missing session object")?;
    for field in ["writes", "ryw_reads", "replica_switches", "timeouts"] {
        require_nonneg(session, field).map_err(|e| format!("session: {e}"))?;
    }
    if require_num(session, "writes")? <= 0.0 || require_num(session, "ryw_reads")? <= 0.0 {
        return Err("sessions performed no tokened writes/RYW reads".into());
    }
    Ok(())
}

fn validate_elastic(doc: &JsonValue) -> Result<(), String> {
    require_nonneg(doc, "seed_replicas")?;
    require_nonneg(doc, "staleness_bound_ms")?;
    require_nonneg(doc, "primary_tps")?;
    require_nonneg(doc, "wall_ms")?;
    require_nonneg(doc, "sessions")?;
    let generations = require_nonneg(doc, "generations")?;
    if generations <= 0.0 {
        return Err("generations must be positive: churn must be visible".into());
    }
    if !require_bool(doc, "survivors_converged")? {
        return Err("surviving fleet did not converge".into());
    }
    let join = doc.get("join").ok_or("missing join object")?;
    require_nonneg(join, "replica").map_err(|e| format!("join: {e}"))?;
    let cut = require_nonneg(join, "checkpoint_cut").map_err(|e| format!("join: {e}"))?;
    let stream = require_nonneg(join, "stream_start").map_err(|e| format!("join: {e}"))?;
    if cut > stream {
        return Err(format!(
            "join: checkpoint_cut {cut} above stream_start {stream} — the gap-closure \
             invariant would have a hole"
        ));
    }
    require_nonneg(join, "replayed_records").map_err(|e| format!("join: {e}"))?;
    let serving = require_nonneg(join, "join_to_serving_ms").map_err(|e| format!("join: {e}"))?;
    if serving <= 0.0 {
        return Err("join.join_to_serving_ms must be positive".into());
    }
    let retire = doc.get("retire").ok_or("missing retire object")?;
    require_nonneg(retire, "replica").map_err(|e| format!("retire: {e}"))?;
    require_nonneg(retire, "drain_ms").map_err(|e| format!("retire: {e}"))?;
    require_nonneg(retire, "retired_exposed").map_err(|e| format!("retire: {e}"))?;
    let survivors = doc
        .get("survivors")
        .and_then(JsonValue::as_arr)
        .ok_or("missing survivors array")?;
    if survivors.is_empty() {
        return Err("survivors array is empty".into());
    }
    let mut joiner_rows = 0;
    for (i, survivor) in survivors.iter().enumerate() {
        let ctx = format!("survivors[{i}]");
        require_nonneg(survivor, "replica").map_err(|e| format!("{ctx}: {e}"))?;
        if require_bool(survivor, "joined_mid_run").map_err(|e| format!("{ctx}: {e}"))? {
            joiner_rows += 1;
            // The joiner's samples are all post-join: lag during churn.
            lag_field(survivor, "lag_ms", &ctx, true)?;
        } else {
            lag_field(survivor, "lag_ms", &ctx, false)?;
        }
    }
    if joiner_rows != 1 {
        return Err(format!(
            "expected exactly 1 mid-run joiner among the survivors, got {joiner_rows}"
        ));
    }
    let classes = doc
        .get("classes")
        .and_then(JsonValue::as_arr)
        .ok_or("missing classes array")?;
    if classes.len() != 3 {
        return Err(format!(
            "expected 3 consistency classes, got {}",
            classes.len()
        ));
    }
    for class in classes {
        let kind = class
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or("class row missing class name")?;
        let reads = require_nonneg(class, "reads").map_err(|e| format!("{kind}: {e}"))?;
        if reads <= 0.0 {
            return Err(format!("{kind}: served no reads"));
        }
        require_nonneg(class, "reads_per_sec").map_err(|e| format!("{kind}: {e}"))?;
        require_nonneg(class, "timeouts").map_err(|e| format!("{kind}: {e}"))?;
        lag_field(class, "latency_ms", kind, false)?;
        lag_field(class, "staleness_ms", kind, false)?;
    }
    let session = doc.get("session").ok_or("missing session object")?;
    for field in ["writes", "ryw_reads", "replica_switches", "timeouts"] {
        require_nonneg(session, field).map_err(|e| format!("session: {e}"))?;
    }
    if require_num(session, "writes")? <= 0.0 || require_num(session, "ryw_reads")? <= 0.0 {
        return Err("sessions performed no tokened writes/RYW reads".into());
    }
    Ok(())
}

fn validate_obs(doc: &JsonValue) -> Result<(), String> {
    let total = require_nonneg(doc, "events_total")?;
    if total <= 0.0 {
        return Err("events_total must be positive".into());
    }
    require_nonneg(doc, "events_dropped")?;
    let by_kind = doc.get("by_kind").ok_or("missing by_kind object")?;
    // The acceptance gate of the observability layer: the pipeline, the
    // shipper, the router, and the fleet controller each spoke at least once.
    for kind in ["stage", "ship", "route", "lifecycle"] {
        let n = require_nonneg(by_kind, kind).map_err(|e| format!("by_kind: {e}"))?;
        if n <= 0.0 {
            return Err(format!(
                "by_kind.{kind} is zero: an instrumented subsystem went silent"
            ));
        }
    }
    for kind in ["recovery", "span"] {
        require_nonneg(by_kind, kind).map_err(|e| format!("by_kind: {e}"))?;
    }
    let stages = doc.get("stage_samples").ok_or("missing stage_samples")?;
    for stage in ["ingest", "schedule", "apply", "expose"] {
        let n = require_nonneg(stages, stage).map_err(|e| format!("stage_samples: {e}"))?;
        if n < 1.0 {
            return Err(format!("stage_samples.{stage}: no dwell samples"));
        }
    }
    let snapshot = doc.get("snapshot").ok_or("missing snapshot object")?;
    for section in ["counters", "gauges", "histograms"] {
        match snapshot.get(section) {
            Some(JsonValue::Obj(entries)) if !entries.is_empty() => {}
            Some(JsonValue::Obj(_)) => {
                return Err(format!("snapshot.{section} is empty"));
            }
            _ => return Err(format!("snapshot.{section} is not an object")),
        }
    }
    // Spot-check series every layer must have registered.
    let counters = snapshot.get("counters").expect("checked above");
    for series in ["ship_segments_total", "ship_records_total"] {
        let v = require_nonneg(counters, series).map_err(|e| format!("snapshot.counters: {e}"))?;
        if v <= 0.0 {
            return Err(format!("snapshot.counters.{series} must be positive"));
        }
    }
    let histograms = snapshot.get("histograms").expect("checked above");
    for series in ["ship_ns", "fleet_join_to_serving_ns"] {
        let h = histograms
            .get(series)
            .ok_or_else(|| format!("snapshot.histograms missing {series}"))?;
        let count =
            require_nonneg(h, "count").map_err(|e| format!("snapshot.histograms.{series}: {e}"))?;
        if count < 1.0 {
            return Err(format!("snapshot.histograms.{series} has no samples"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the smoke-overwrites-baselines bug: `bench
    /// --smoke` without `BENCH_OUT_DIR` used to resolve to the repository
    /// root and clobber the committed full-parameter `BENCH_*.json` files
    /// with reduced-iteration numbers.
    #[test]
    fn smoke_mode_never_defaults_to_the_repo_root() {
        if std::env::var_os("BENCH_OUT_DIR").is_some() {
            return; // an explicit override wins in every mode, nothing to check
        }
        let smoke = out_dir_for("smoke");
        let root = repo_root();
        assert_ne!(
            smoke.canonicalize().ok(),
            root.canonicalize().ok().filter(|r| r.exists()),
            "smoke output must not land at the repo root"
        );
        assert!(smoke.starts_with(std::env::temp_dir()));
        // Fixed mode still targets the committed baselines.
        assert_eq!(out_dir_for("fixed"), root);
    }

    #[test]
    fn smoke_guard_refuses_the_repo_root_however_spelled() {
        // The canonical path and a dotted respelling of it are both caught.
        let root = repo_root();
        assert!(smoke_guard("smoke", &root).is_err());
        assert!(smoke_guard("smoke", &root.join("crates/..")).is_err());
        // Fixed mode writes the committed baselines there by design.
        assert!(smoke_guard("fixed", &root).is_ok());
        // A scratch directory is fine in smoke mode.
        assert!(smoke_guard("smoke", &std::env::temp_dir()).is_ok());
    }
}
