//! Experiment scaling.

use std::time::Duration;

use c5_workloads::TpccConfig;

/// How big to make each experiment.
///
/// The paper's trials run for 120 seconds on a CloudLab cluster; this
/// reproduction defaults to a few seconds per data point so the full suite
/// finishes in minutes on a laptop, with `Scale::full()` available when more
/// stable numbers are wanted. The *shape* of every result (who keeps up, who
/// lags, where crossovers happen) is already visible at the quick scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Wall-clock duration of each streaming measurement.
    pub duration: Duration,
    /// Transactions per client thread for offline (replay) measurements.
    pub offline_txns_per_thread: u64,
    /// Primary executor threads / clients.
    pub primary_threads: usize,
    /// Backup worker threads (never more than the primary's).
    pub replica_workers: usize,
    /// Number of TPC-C items in the catalog.
    pub tpcc_items: u64,
    /// Number of TPC-C customers per district.
    pub tpcc_customers: u64,
    /// Log records per shipped segment.
    pub segment_records: usize,
}

impl Scale {
    /// The quick scale used by default and by the integration tests.
    pub fn quick() -> Self {
        Self {
            duration: Duration::from_millis(1500),
            offline_txns_per_thread: 2_000,
            primary_threads: 4,
            replica_workers: 4,
            tpcc_items: 1_000,
            tpcc_customers: 100,
            segment_records: 256,
        }
    }

    /// A fuller scale for more stable numbers.
    pub fn full() -> Self {
        Self {
            duration: Duration::from_secs(10),
            offline_txns_per_thread: 20_000,
            primary_threads: 8,
            replica_workers: 8,
            tpcc_items: 10_000,
            tpcc_customers: 500,
            segment_records: 512,
        }
    }

    /// The TPC-C configuration at this scale (standard 10 districts,
    /// unoptimized; experiments override the knobs they sweep).
    pub fn tpcc(&self) -> TpccConfig {
        TpccConfig {
            warehouses: 1,
            districts_per_warehouse: 10,
            items: self.tpcc_items,
            customers_per_district: self.tpcc_customers,
            optimized: false,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = Scale::quick();
        let f = Scale::full();
        assert!(q.duration < f.duration);
        assert!(q.offline_txns_per_thread < f.offline_txns_per_thread);
        assert_eq!(Scale::default(), q);
        assert_eq!(q.tpcc().districts_per_warehouse, 10);
    }
}
