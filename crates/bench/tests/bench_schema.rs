//! Schema contract for the committed `BENCH_*.json` trajectory files.
//!
//! Runs the full bench emitter at reduced parameters into a scratch
//! directory, re-parses every emitted file, and asserts that each one
//! carries every field the performance-methodology docs promise, with
//! values in sane ranges. This is what keeps the committed baselines, the
//! validator, and DESIGN.md's field tables from drifting apart: a field
//! renamed or dropped in the emitter fails here before it lands.

use c5_bench::json::JsonValue;
use c5_bench::report;
use c5_common::BenchConfig;
use std::time::Duration;

/// A configuration small enough for a debug-build test run: tiny streaming
/// windows, a short replay log, and a 1..=4 shard sweep. Schema coverage is
/// identical to the committed `fixed` runs — only the magnitudes shrink.
fn tiny() -> BenchConfig {
    BenchConfig {
        duration: Duration::from_millis(150),
        apply_txns: 2_000,
        max_sweep_shards: 4,
        ..BenchConfig::smoke()
    }
}

fn scratch_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("c5-bench-schema-{}", std::process::id()))
}

/// Asserts `doc` has every field in `fields` (dot-separated paths walk
/// nested objects).
fn assert_fields(name: &str, doc: &JsonValue, fields: &[&str]) {
    for field in fields {
        let mut node = doc;
        for part in field.split('.') {
            node = node
                .get(part)
                .unwrap_or_else(|| panic!("BENCH_{name}.json missing `{field}`"));
        }
    }
}

#[test]
fn emitted_bench_files_carry_every_documented_field() {
    let out_dir = scratch_dir();
    let written = report::run(&tiny(), "smoke", &out_dir).expect("bench run");
    assert_eq!(
        written.len(),
        7,
        "one file per scenario: pipeline, fanout, sharded, failover, reads, elastic, obs"
    );

    for name in [
        "pipeline", "fanout", "sharded", "failover", "reads", "elastic", "obs",
    ] {
        let path = out_dir.join(format!("BENCH_{name}.json"));
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        let doc = c5_bench::json::parse(&raw)
            .unwrap_or_else(|e| panic!("BENCH_{name}.json is not valid JSON: {e}"));

        // The emitter's own validator must accept what it wrote.
        report::validate_bench(name, &doc)
            .unwrap_or_else(|e| panic!("BENCH_{name}.json fails validation: {e}"));

        // Envelope, shared by every file.
        assert_fields(
            name,
            &doc,
            &[
                "schema_version",
                "name",
                "mode",
                "config.duration_ms",
                "config.primary_threads",
                "config.replica_workers",
                "config.segment_records",
                "config.apply_txns",
                "config.fanout_replicas",
                "config.read_sessions",
                "config.max_sweep_shards",
                "config.seed",
            ],
        );
        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_num),
            Some(1.0)
        );
        assert_eq!(doc.get("name").and_then(JsonValue::as_str), Some(name));
        assert_eq!(doc.get("mode").and_then(JsonValue::as_str), Some("smoke"));

        // Per-scenario payloads, matching DESIGN.md's field tables.
        match name {
            "pipeline" => {
                assert_fields(
                    name,
                    &doc,
                    &[
                        "apply_path",
                        "streaming.protocol",
                        "streaming.workload",
                        "streaming.primary_tps",
                        "streaming.committed",
                        "streaming.replica_tps",
                        "streaming.keeps_up",
                        "streaming.lag_ms.p50",
                        "streaming.lag_ms.p99",
                        "streaming.lag_ms.max",
                        "baseline.note",
                        "baseline.pre_change_ns_per_record",
                        "stage_ns.ingest.count",
                        "stage_ns.schedule.count",
                        "stage_ns.apply.count",
                        "stage_ns.expose.count",
                        "stage_ns.apply.p50",
                        "stage_ns.apply.p99",
                        "stage_ns.apply.max",
                        "stage_ns.apply.mean",
                    ],
                );
                for stage in ["ingest", "schedule", "apply", "expose"] {
                    let count = doc
                        .get("stage_ns")
                        .and_then(|s| s.get(stage))
                        .and_then(|s| s.get("count"))
                        .and_then(JsonValue::as_num)
                        .expect("stage count number");
                    assert!(count >= 1.0, "stage `{stage}` recorded no dwell samples");
                }
                let targets = doc
                    .get("apply_path")
                    .and_then(JsonValue::as_arr)
                    .expect("apply_path array");
                assert_eq!(targets.len(), 3, "c5, c5-myrocks, c5-sharded-8");
                for target in targets {
                    for field in [
                        "protocol",
                        "records",
                        "txns",
                        "replays",
                        "best_wall_ms",
                        "ns_per_record",
                    ] {
                        assert!(
                            target.get(field).is_some(),
                            "apply_path entry missing `{field}`"
                        );
                    }
                    let ns = target
                        .get("ns_per_record")
                        .and_then(JsonValue::as_num)
                        .expect("ns_per_record number");
                    assert!(
                        (1.0..1e9).contains(&ns),
                        "ns_per_record {ns} outside sane range"
                    );
                }
            }
            "fanout" => {
                assert_fields(
                    name,
                    &doc,
                    &[
                        "primary_tps",
                        "committed",
                        "worst_p50_ms",
                        "all_converged",
                        "replicas",
                    ],
                );
                for replica in doc.get("replicas").and_then(JsonValue::as_arr).unwrap() {
                    for field in [
                        "replica",
                        "wall_ms",
                        "applied_txns",
                        "lag_ms.p50",
                        "lag_ms.p99",
                    ] {
                        let mut node = replica;
                        for part in field.split('.') {
                            node = node.get(part).unwrap_or_else(|| {
                                panic!("fanout replica entry missing `{field}`")
                            });
                        }
                    }
                }
            }
            "sharded" => {
                assert_fields(name, &doc, &["workload", "key_space", "sweep"]);
                let sweep = doc.get("sweep").and_then(JsonValue::as_arr).unwrap();
                assert_eq!(sweep.len(), 3, "1, 2, 4 shards at max_sweep_shards = 4");
                let mut last_shards = 0.0;
                for point in sweep {
                    for field in [
                        "shards",
                        "workers_total",
                        "primary_tps",
                        "applied_txns",
                        "cross_shard_share",
                        "cuts_taken",
                        "replica_wall_ms",
                        "lag_ms.p50",
                        "lag_ms.p99",
                        "lag_ms.max",
                        "converged",
                    ] {
                        let mut node = point;
                        for part in field.split('.') {
                            node = node
                                .get(part)
                                .unwrap_or_else(|| panic!("sweep point missing `{field}`"));
                        }
                    }
                    let shards = point.get("shards").and_then(JsonValue::as_num).unwrap();
                    assert!(shards > last_shards, "sweep must be strictly increasing");
                    last_shards = shards;
                    let cuts = point.get("cuts_taken").and_then(JsonValue::as_num).unwrap();
                    assert!(cuts >= 1.0, "a converged run publishes at least one cut");
                }
            }
            "failover" => assert_fields(
                name,
                &doc,
                &[
                    "protocol",
                    "primary_tps",
                    "committed",
                    "shipped_seq",
                    "applied_at_kill",
                    "backlog_records",
                    "promotion_drain_ms",
                    "takeover_ms",
                    "drain_bounded_by_lag",
                    "resumed_tps",
                    "standby_caught_up",
                ],
            ),
            "reads" => {
                assert_fields(
                    name,
                    &doc,
                    &[
                        "staleness_bound_ms",
                        "primary_tps",
                        "wall_ms",
                        "sessions",
                        "total_reads",
                        "all_converged",
                        "classes",
                        "session.writes",
                        "session.ryw_reads",
                        "session.replica_switches",
                        "session.timeouts",
                    ],
                );
                let classes = doc.get("classes").and_then(JsonValue::as_arr).unwrap();
                assert_eq!(classes.len(), 3, "strong, causal, bounded");
                for class in classes {
                    for field in ["class", "reads", "reads_per_sec", "timeouts"] {
                        assert!(class.get(field).is_some(), "class entry missing `{field}`");
                    }
                }
            }
            "elastic" => {
                assert_fields(
                    name,
                    &doc,
                    &[
                        "seed_replicas",
                        "staleness_bound_ms",
                        "primary_tps",
                        "wall_ms",
                        "sessions",
                        "generations",
                        "join.replica",
                        "join.checkpoint_cut",
                        "join.stream_start",
                        "join.replayed_records",
                        "join.join_to_serving_ms",
                        "retire.replica",
                        "retire.drain_ms",
                        "retire.retired_exposed",
                        "survivors_converged",
                        "survivors",
                        "classes",
                        "session.writes",
                        "session.ryw_reads",
                        "session.replica_switches",
                        "session.timeouts",
                    ],
                );
                let survivors = doc.get("survivors").and_then(JsonValue::as_arr).unwrap();
                assert!(!survivors.is_empty(), "at least one surviving member");
                let joiners = survivors
                    .iter()
                    .filter(|s| matches!(s.get("joined_mid_run"), Some(JsonValue::Bool(true))))
                    .count();
                assert_eq!(joiners, 1, "exactly one mid-run joiner survives");
                let classes = doc.get("classes").and_then(JsonValue::as_arr).unwrap();
                assert_eq!(classes.len(), 3, "strong, causal, bounded");
            }
            "obs" => {
                assert_fields(
                    name,
                    &doc,
                    &[
                        "events_total",
                        "events_dropped",
                        "by_kind.stage",
                        "by_kind.ship",
                        "by_kind.route",
                        "by_kind.lifecycle",
                        "by_kind.recovery",
                        "by_kind.span",
                        "stage_samples.ingest",
                        "stage_samples.schedule",
                        "stage_samples.apply",
                        "stage_samples.expose",
                        "snapshot.counters",
                        "snapshot.gauges",
                        "snapshot.histograms",
                    ],
                );
                // Every instrumented subsystem must have spoken.
                for kind in ["stage", "ship", "route", "lifecycle"] {
                    let n = doc
                        .get("by_kind")
                        .and_then(|k| k.get(kind))
                        .and_then(JsonValue::as_num)
                        .expect("kind count number");
                    assert!(n >= 1.0, "no `{kind}` events in the dumped timeline");
                }
            }
            _ => unreachable!(),
        }
    }

    std::fs::remove_dir_all(&out_dir).ok();
}

/// The validator is not a rubber stamp: a document with a field knocked out
/// must be rejected.
#[test]
fn validator_rejects_a_mutilated_document() {
    let out_dir = scratch_dir().join("mutate");
    report::run(
        &BenchConfig {
            duration: Duration::from_millis(120),
            apply_txns: 1_000,
            max_sweep_shards: 2,
            ..BenchConfig::smoke()
        },
        "smoke",
        &out_dir,
    )
    .expect("bench run");
    let raw = std::fs::read_to_string(out_dir.join("BENCH_pipeline.json")).unwrap();
    let doc = c5_bench::json::parse(&raw).unwrap();
    report::validate_bench("pipeline", &doc).expect("intact document validates");

    // Drop `apply_path` and the validator must object.
    let JsonValue::Obj(mut fields) = doc else {
        panic!("document root is an object")
    };
    fields.retain(|(k, _)| k != "apply_path");
    assert!(
        report::validate_bench("pipeline", &JsonValue::Obj(fields)).is_err(),
        "validator must reject a document missing apply_path"
    );

    std::fs::remove_dir_all(&out_dir).ok();
}
