//! Configuration for the primary engines and the backup replicas.

use std::sync::Arc;
use std::time::Duration;

use c5_obs::Obs;

use crate::cost::OpCost;
use crate::error::{Error, Result};

/// Isolation level used by the two-phase-locking primary.
///
/// The paper's MyRocks evaluation runs the primary at read committed "to
/// stress the backup" (Section 6); the formal model assumes serializable.
/// Both are supported: under read committed, read locks are released as soon
/// as the read completes, which increases primary parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationLevel {
    /// Shared locks are held only for the duration of each read.
    ReadCommitted,
    /// Strict two-phase locking: all locks held until commit.
    Serializable,
}

/// How the backup's storage exposes snapshots to the snapshotter.
///
/// This models the difference between Section 4.2 / 7.2 (workers can write at
/// explicit timestamps, so the three logical snapshots live inside the
/// multi-version store) and Section 5.2 (MyRocks/RocksDB can only snapshot
/// "the current state of the whole database", forcing the snapshotter to
/// briefly block workers at every cut).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Timestamped snapshots: the faithful design (C5-Cicada).
    Timestamped,
    /// Whole-database snapshots taken at a prefix-consistent cut
    /// (C5-MyRocks). Workers are blocked from committing writes past `n`
    /// while the cut is taken.
    WholeDatabase,
}

/// Configuration for a primary engine.
#[derive(Debug, Clone)]
pub struct PrimaryConfig {
    /// Number of executor threads (the paper's `m` cores).
    pub threads: usize,
    /// Isolation level (2PL engine only; the MVTSO engine is always
    /// serializable).
    pub isolation: IsolationLevel,
    /// Per-operation cost model.
    pub op_cost: OpCost,
    /// Maximum number of times a transaction is retried after a
    /// protocol-induced abort before the error is returned to the client.
    pub max_retries: usize,
}

impl Default for PrimaryConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            isolation: IsolationLevel::ReadCommitted,
            op_cost: OpCost::free(),
            max_retries: 64,
        }
    }
}

impl PrimaryConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.threads == 0 {
            return Err(Error::InvalidConfig(
                "primary must have at least one thread".into(),
            ));
        }
        Ok(())
    }
}

/// When a durable log or checkpoint writer calls `fsync`.
///
/// The paper's protocols are described over an always-durable log; the
/// reproduction makes the cost knob explicit. The policy only matters to
/// components that actually write to disk (a disk-backed `LogArchive`, a
/// checkpoint file writer); the default in-memory pipeline ignores it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// `fsync` after every segment (and every checkpoint file). A `kill -9`
    /// loses at most the segment being written when the process died.
    #[default]
    EverySegment,
    /// `fsync` after every `n` segments. A crash may lose up to `n`
    /// OS-buffered segments; recovery still truncates to a valid
    /// transaction-aligned prefix because segments are written in log order.
    EveryNSegments(u32),
    /// Never `fsync`: the OS flushes at its leisure. Survives process
    /// crashes (the page cache persists) but not host crashes.
    Never,
}

impl DurabilityPolicy {
    /// Validates the policy.
    pub fn validate(&self) -> Result<()> {
        if matches!(self, DurabilityPolicy::EveryNSegments(0)) {
            return Err(Error::InvalidConfig(
                "fsync-every-n-segments needs n >= 1 (use Never to disable syncing)".into(),
            ));
        }
        Ok(())
    }

    /// Whether the `count`-th segment written since the last sync (1-based)
    /// should trigger an `fsync`.
    pub fn should_sync(&self, count: u32) -> bool {
        match self {
            DurabilityPolicy::EverySegment => true,
            DurabilityPolicy::EveryNSegments(n) => count >= *n,
            DurabilityPolicy::Never => false,
        }
    }
}

/// Configuration for a backup replica (any cloned concurrency control
/// protocol).
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Number of worker threads applying writes. The paper never uses more
    /// workers than the primary has threads.
    pub workers: usize,
    /// Per-operation cost model (`d` is the backup-side cost).
    pub op_cost: OpCost,
    /// How the storage engine exposes snapshots (see [`SnapshotMode`]).
    pub snapshot_mode: SnapshotMode,
    /// Approximate interval between snapshot cuts, the `I` knob of
    /// Section 5.2. Also used by the faithful snapshotter as the period of
    /// its advancing thread.
    pub snapshot_interval: Duration,
    /// Capacity (in log segments) of the channel between the log shipper and
    /// the scheduler. Bounded so that an overwhelmed replica exerts
    /// backpressure in benchmarks instead of buffering unboundedly.
    pub segment_channel_capacity: usize,
    /// How far (in log positions) the version-garbage-collection horizon
    /// trails the exposed cut. Read views pin their cut at creation time, so
    /// the trail is the window within which an already-created view is
    /// guaranteed to keep seeing every version it can name; versions older
    /// than `exposed - gc_trail` are reclaimed by the expose stage. Zero
    /// collects right up to the cut.
    pub gc_trail: u64,
    /// Number of keyspace shards a sharded replica partitions the log into.
    /// Each shard runs its own apply pipeline (`workers` threads each); a
    /// cross-shard cut coordinator reassembles a globally consistent exposed
    /// prefix. `1` (the default) is the paper's unsharded replica.
    pub shards: usize,
    /// The key space the shard router partitions into contiguous ranges
    /// (keys at or beyond it clamp into the last shard). Only meaningful
    /// when `shards > 1`.
    pub shard_key_space: u64,
    /// Target number of log records the scheduler hands a worker per queue
    /// item in one-worker-per-transaction mode. The scheduler accumulates
    /// consecutive whole transactions until the batch reaches this many
    /// records (a single larger transaction still travels alone), which
    /// amortizes channel and watermark-publication traffic without changing
    /// which worker applies which transaction. `1` restores the original
    /// one-item-per-transaction dispatch.
    pub dispatch_batch_records: usize,
    /// When the durable layers `fsync` (see [`DurabilityPolicy`]). Ignored
    /// by the default in-memory pipeline; honored by a disk-backed
    /// `LogArchive` and the checkpoint file writer.
    pub durability: DurabilityPolicy,
    /// The observability sink the replica's pipeline records stage metrics
    /// and trace events into. Defaults to the process-wide
    /// [`Obs::global`] sink; experiments attach a fresh one per run so
    /// their snapshots are isolated.
    pub obs: Arc<Obs>,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            op_cost: OpCost::free(),
            snapshot_mode: SnapshotMode::Timestamped,
            snapshot_interval: Duration::from_millis(10),
            segment_channel_capacity: 1024,
            gc_trail: 4096,
            shards: 1,
            shard_key_space: 1 << 20,
            dispatch_batch_records: 64,
            durability: DurabilityPolicy::default(),
            obs: Arc::clone(Obs::global()),
        }
    }
}

impl ReplicaConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.workers == 0 {
            return Err(Error::InvalidConfig(
                "replica must have at least one worker".into(),
            ));
        }
        if self.segment_channel_capacity == 0 {
            return Err(Error::InvalidConfig(
                "segment channel capacity must be non-zero".into(),
            ));
        }
        if self.snapshot_interval.is_zero() {
            return Err(Error::InvalidConfig(
                "snapshot interval must be non-zero".into(),
            ));
        }
        if self.shards == 0 || self.shards > crate::shard::MAX_SHARDS {
            return Err(Error::InvalidConfig(format!(
                "shard count must be in 1..={} (got {})",
                crate::shard::MAX_SHARDS,
                self.shards
            )));
        }
        if self.dispatch_batch_records == 0 {
            return Err(Error::InvalidConfig(
                "dispatch batch must hold at least one record".into(),
            ));
        }
        if !crate::shard::ShardRouter::splits_evenly(self.shards, self.shard_key_space) {
            return Err(Error::InvalidConfig(format!(
                "shard key space {} cannot split into {} non-empty equal-width ranges",
                self.shard_key_space, self.shards
            )));
        }
        self.durability.validate()?;
        Ok(())
    }

    /// The shard router this configuration describes.
    pub fn shard_router(&self) -> crate::shard::ShardRouter {
        if self.shards == 1 {
            crate::shard::ShardRouter::single()
        } else {
            crate::shard::ShardRouter::new(self.shards, self.shard_key_space)
        }
    }

    /// Builder-style setter for the number of workers.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Builder-style setter for the snapshot mode.
    pub fn with_snapshot_mode(mut self, mode: SnapshotMode) -> Self {
        self.snapshot_mode = mode;
        self
    }

    /// Builder-style setter for the snapshot interval.
    pub fn with_snapshot_interval(mut self, interval: Duration) -> Self {
        self.snapshot_interval = interval;
        self
    }

    /// Builder-style setter for the op cost.
    pub fn with_op_cost(mut self, cost: OpCost) -> Self {
        self.op_cost = cost;
        self
    }

    /// Builder-style setter for the GC-horizon trail.
    pub fn with_gc_trail(mut self, trail: u64) -> Self {
        self.gc_trail = trail;
        self
    }

    /// Builder-style setter for the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Builder-style setter for the sharded key space.
    pub fn with_shard_key_space(mut self, key_space: u64) -> Self {
        self.shard_key_space = key_space;
        self
    }

    /// Builder-style setter for the dispatch batch size (records per queue
    /// item in one-worker-per-transaction mode).
    pub fn with_dispatch_batch(mut self, records: usize) -> Self {
        self.dispatch_batch_records = records;
        self
    }

    /// Builder-style setter for the durable-layer fsync policy.
    pub fn with_durability(mut self, policy: DurabilityPolicy) -> Self {
        self.durability = policy;
        self
    }

    /// Builder-style setter for the observability sink.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }
}

/// Fixed run parameters for the committed benchmark suite (`c5-bench`'s
/// `bench` sub-command, which emits the `BENCH_*.json` trajectory files at
/// the repository root).
///
/// The whole point of the committed trajectory is cross-revision
/// comparability, so these parameters are *data*, not knobs: every revision
/// runs the same scenarios at [`BenchConfig::fixed`] and CI smoke-checks the
/// schema at [`BenchConfig::smoke`]. Changing `fixed()` resets the
/// trajectory and must be called out in the PR that does it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchConfig {
    /// Wall-clock duration of each streaming measurement window.
    pub duration: Duration,
    /// Primary executor threads / closed-loop clients.
    pub primary_threads: usize,
    /// Backup apply workers (per pipeline; per shard for sharded runs).
    pub replica_workers: usize,
    /// Log records per shipped segment.
    pub segment_records: usize,
    /// Transactions in the pre-materialized log the apply-path replay
    /// measures ns/record over (offline, zero simulated op cost, so the
    /// number isolates pipeline overhead).
    pub apply_txns: u64,
    /// Replicas in the fan-out and read-serving scenarios.
    pub fanout_replicas: usize,
    /// Reader sessions in the read-serving scenario.
    pub read_sessions: usize,
    /// Largest shard count of the sharding sweep (the sweep doubles from 1
    /// up to this; the high end is what locates the cut-coordinator knee).
    pub max_sweep_shards: usize,
    /// RNG seed shared by every scenario.
    pub seed: u64,
}

impl BenchConfig {
    /// The fixed parameters the committed `BENCH_*.json` baselines are
    /// measured at.
    pub fn fixed() -> Self {
        Self {
            duration: Duration::from_millis(1500),
            primary_threads: 4,
            replica_workers: 4,
            segment_records: 256,
            apply_txns: 60_000,
            fanout_replicas: 3,
            read_sessions: 4,
            max_sweep_shards: 64,
            seed: 42,
        }
    }

    /// The reduced-iteration smoke mode CI runs on every push: same
    /// scenarios and schema, a fraction of the duration, sweep capped low.
    /// Numbers from this mode are for schema validation only — never commit
    /// them as baselines.
    pub fn smoke() -> Self {
        Self {
            duration: Duration::from_millis(300),
            primary_threads: 2,
            replica_workers: 2,
            segment_records: 64,
            apply_txns: 5_000,
            fanout_replicas: 2,
            read_sessions: 2,
            max_sweep_shards: 16,
            seed: 42,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.duration.is_zero() {
            return Err(Error::InvalidConfig(
                "bench duration must be non-zero".into(),
            ));
        }
        if self.primary_threads == 0 || self.replica_workers == 0 {
            return Err(Error::InvalidConfig(
                "bench needs at least one primary thread and one worker".into(),
            ));
        }
        if self.segment_records == 0 || self.apply_txns == 0 {
            return Err(Error::InvalidConfig(
                "bench segment size and apply transaction count must be non-zero".into(),
            ));
        }
        if self.fanout_replicas == 0 || self.read_sessions == 0 {
            return Err(Error::InvalidConfig(
                "bench needs at least one replica and one session".into(),
            ));
        }
        if !self.max_sweep_shards.is_power_of_two()
            || self.max_sweep_shards > crate::shard::MAX_SHARDS
        {
            return Err(Error::InvalidConfig(format!(
                "sweep shard count must be a power of two at most {} (got {})",
                crate::shard::MAX_SHARDS,
                self.max_sweep_shards
            )));
        }
        Ok(())
    }

    /// The shard counts the sharding sweep visits: powers of two from 1
    /// through `max_sweep_shards`.
    pub fn sweep_shards(&self) -> Vec<usize> {
        let mut shards = Vec::new();
        let mut n = 1;
        while n <= self.max_sweep_shards {
            shards.push(n);
            n *= 2;
        }
        shards
    }
}

/// Configuration for the read-serving layer (`c5-read`): sessions, read-only
/// transactions, and the freshness-aware router over a replica fleet.
#[derive(Debug, Clone)]
pub struct ReadConfig {
    /// The longest a read may block waiting for some replica's exposed cut to
    /// cover its required position (a causal token, the primary frontier for
    /// strong reads, or a session's monotonic floor) before it fails with
    /// [`crate::Error::ReadTimeout`].
    pub max_wait: Duration,
    /// One in every `latency_sample_every` reads records its latency and
    /// observed staleness into the router's latency histograms. `1`
    /// samples everything; larger values keep the metrics path off the hot
    /// read path in throughput experiments.
    pub latency_sample_every: u64,
    /// The observability sink the router records route decisions and
    /// latency histograms into. Defaults to the process-wide
    /// [`Obs::global`] sink.
    pub obs: Arc<Obs>,
}

impl Default for ReadConfig {
    fn default() -> Self {
        Self {
            max_wait: Duration::from_secs(2),
            latency_sample_every: 8,
            obs: Arc::clone(Obs::global()),
        }
    }
}

impl ReadConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.max_wait.is_zero() {
            return Err(Error::InvalidConfig(
                "read max_wait must be non-zero".into(),
            ));
        }
        if self.latency_sample_every == 0 {
            return Err(Error::InvalidConfig(
                "latency_sample_every must be non-zero".into(),
            ));
        }
        Ok(())
    }

    /// Builder-style setter for the blocking bound.
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Builder-style setter for the latency sampling stride.
    pub fn with_latency_sample_every(mut self, every: u64) -> Self {
        self.latency_sample_every = every;
        self
    }

    /// Builder-style setter for the observability sink.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = obs;
        self
    }
}

impl PrimaryConfig {
    /// Builder-style setter for the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style setter for the isolation level.
    pub fn with_isolation(mut self, isolation: IsolationLevel) -> Self {
        self.isolation = isolation;
        self
    }

    /// Builder-style setter for the op cost.
    pub fn with_op_cost(mut self, cost: OpCost) -> Self {
        self.op_cost = cost;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configs_validate() {
        assert!(PrimaryConfig::default().validate().is_ok());
        assert!(ReplicaConfig::default().validate().is_ok());
        assert!(ReadConfig::default().validate().is_ok());
    }

    #[test]
    fn read_config_rejects_degenerate_knobs() {
        assert!(ReadConfig::default()
            .with_max_wait(Duration::ZERO)
            .validate()
            .is_err());
        assert!(ReadConfig::default()
            .with_latency_sample_every(0)
            .validate()
            .is_err());
        let cfg = ReadConfig::default()
            .with_max_wait(Duration::from_millis(50))
            .with_latency_sample_every(1);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.max_wait, Duration::from_millis(50));
        assert_eq!(cfg.latency_sample_every, 1);
    }

    #[test]
    fn zero_threads_rejected() {
        let cfg = PrimaryConfig::default().with_threads(0);
        assert!(matches!(cfg.validate(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn zero_workers_rejected() {
        let cfg = ReplicaConfig::default().with_workers(0);
        assert!(matches!(cfg.validate(), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn zero_snapshot_interval_rejected() {
        let cfg = ReplicaConfig::default().with_snapshot_interval(Duration::ZERO);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn shard_knobs_validate() {
        assert!(ReplicaConfig::default().with_shards(0).validate().is_err());
        assert!(ReplicaConfig::default().with_shards(65).validate().is_err());
        assert!(ReplicaConfig::default()
            .with_shards(4)
            .with_shard_key_space(3)
            .validate()
            .is_err());
        // The rounded-up span must leave the last shard a non-empty range
        // (ceil(9/4) = 3 starves shard 3), mirroring ShardRouter::new.
        assert!(ReplicaConfig::default()
            .with_shards(4)
            .with_shard_key_space(9)
            .validate()
            .is_err());
        let cfg = ReplicaConfig::default()
            .with_shards(4)
            .with_shard_key_space(1000);
        assert!(cfg.validate().is_ok());
        let router = cfg.shard_router();
        assert_eq!(router.shards(), 4);
        assert_eq!(router.key_space(), 1000);
        // The default single-shard config routes everything to shard 0.
        let single = ReplicaConfig::default().shard_router();
        assert_eq!(single.shards(), 1);
    }

    #[test]
    fn durability_policy_validates_and_schedules_syncs() {
        assert!(DurabilityPolicy::EverySegment.validate().is_ok());
        assert!(DurabilityPolicy::Never.validate().is_ok());
        assert!(DurabilityPolicy::EveryNSegments(3).validate().is_ok());
        assert!(DurabilityPolicy::EveryNSegments(0).validate().is_err());
        assert!(ReplicaConfig::default()
            .with_durability(DurabilityPolicy::EveryNSegments(0))
            .validate()
            .is_err());

        assert!(DurabilityPolicy::EverySegment.should_sync(1));
        assert!(!DurabilityPolicy::Never.should_sync(1_000));
        let every3 = DurabilityPolicy::EveryNSegments(3);
        assert!(!every3.should_sync(1));
        assert!(!every3.should_sync(2));
        assert!(every3.should_sync(3));

        let cfg = ReplicaConfig::default().with_durability(DurabilityPolicy::Never);
        assert_eq!(cfg.durability, DurabilityPolicy::Never);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn builders_set_fields() {
        let cfg = ReplicaConfig::default()
            .with_workers(8)
            .with_snapshot_mode(SnapshotMode::WholeDatabase)
            .with_snapshot_interval(Duration::from_millis(5))
            .with_op_cost(OpCost::symmetric(10))
            .with_gc_trail(128);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.snapshot_mode, SnapshotMode::WholeDatabase);
        assert_eq!(cfg.snapshot_interval, Duration::from_millis(5));
        assert_eq!(cfg.op_cost, OpCost::symmetric(10));
        assert_eq!(cfg.gc_trail, 128);

        let p = PrimaryConfig::default()
            .with_threads(12)
            .with_isolation(IsolationLevel::Serializable)
            .with_op_cost(OpCost::symmetric(7));
        assert_eq!(p.threads, 12);
        assert_eq!(p.isolation, IsolationLevel::Serializable);
        assert_eq!(p.op_cost, OpCost::symmetric(7));
    }
}
