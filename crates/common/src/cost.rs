//! Per-operation cost model.
//!
//! Section 3.1 of the paper reasons about a primary whose cores each execute
//! an operation in `e > 0` time units and a backup whose cores execute each
//! operation in `0 < d <= e` time units. The unbounded-lag theorems (and the
//! figure shapes in the evaluation) depend on that asymmetry, not on the
//! absolute numbers. On the small machines this reproduction runs on, raw row
//! writes are so cheap that scheduler overheads rather than execution
//! parallelism would dominate; attaching a deterministic busy-wait per
//! operation restores the regime the paper studies and makes the benchmark
//! shapes reproducible across hosts.
//!
//! The cost model is entirely optional: `OpCost::free()` disables it, and the
//! micro-benchmarks that measure raw protocol overhead use it that way.

use std::time::{Duration, Instant};

/// Models the per-row-operation execution cost on the primary (`e`) and on
/// the backup (`d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpCost {
    /// Time to execute one row operation on the primary (`e` in the paper).
    pub primary_ns: u64,
    /// Time to execute one row operation on the backup (`d` in the paper).
    /// The paper assumes `d <= e` because the backup skips parsing and
    /// planning.
    pub backup_ns: u64,
}

impl OpCost {
    /// No artificial cost: operations take only their natural time.
    pub const fn free() -> Self {
        Self {
            primary_ns: 0,
            backup_ns: 0,
        }
    }

    /// A symmetric cost (`e == d`).
    pub const fn symmetric(ns: u64) -> Self {
        Self {
            primary_ns: ns,
            backup_ns: ns,
        }
    }

    /// The configuration used by most experiments: the backup is marginally
    /// faster per operation than the primary (Section 5.2 notes C5-MyRocks
    /// relies on this being true in practice).
    pub const fn paper_like(primary_ns: u64) -> Self {
        Self {
            primary_ns,
            backup_ns: primary_ns * 9 / 10,
        }
    }

    /// Whether any artificial cost is configured.
    pub fn is_free(&self) -> bool {
        self.primary_ns == 0 && self.backup_ns == 0
    }

    /// Busy-waits for the primary-side cost `e`.
    #[inline]
    pub fn charge_primary(&self) {
        busy_wait_ns(self.primary_ns);
    }

    /// Busy-waits for the backup-side cost `d`.
    #[inline]
    pub fn charge_backup(&self) {
        busy_wait_ns(self.backup_ns);
    }
}

impl Default for OpCost {
    fn default() -> Self {
        Self::free()
    }
}

/// Spin for approximately `ns` nanoseconds.
///
/// A busy-wait (rather than `thread::sleep`) is used because the costs being
/// modelled are sub-microsecond to a few microseconds — far below the
/// scheduler's sleep granularity — and because sleeping would free the core,
/// which is exactly the opposite of what "this core is busy executing the
/// operation" is supposed to model.
#[inline]
pub fn busy_wait_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(ns);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_cost_is_free() {
        assert!(OpCost::free().is_free());
        assert!(!OpCost::symmetric(100).is_free());
    }

    #[test]
    fn paper_like_backup_is_not_slower_than_primary() {
        let c = OpCost::paper_like(1_000);
        assert!(c.backup_ns <= c.primary_ns);
        assert!(c.backup_ns > 0);
    }

    #[test]
    fn busy_wait_waits_at_least_the_requested_time() {
        let start = Instant::now();
        busy_wait_ns(200_000); // 200 us
        assert!(start.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn zero_wait_returns_immediately() {
        let start = Instant::now();
        busy_wait_ns(0);
        assert!(start.elapsed() < Duration::from_millis(5));
    }
}
