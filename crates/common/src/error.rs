//! Workspace-wide error type.

use std::fmt;

use crate::ids::{RowRef, SeqNo, TxnId};

/// Convenience alias used throughout the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by the storage engine, the primary engines, and the
/// replication machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A read targeted a row that does not exist (or is not visible at the
    /// requested timestamp).
    RowNotFound(RowRef),
    /// An insert targeted a row that already exists.
    DuplicateRow(RowRef),
    /// The transaction was aborted by the concurrency control protocol and
    /// should be retried by the caller.
    TxnAborted {
        /// The aborted transaction.
        txn: TxnId,
        /// Why the protocol aborted it.
        reason: AbortReason,
    },
    /// A component was asked to do something after it was shut down.
    Shutdown(&'static str),
    /// The replication log channel was disconnected unexpectedly.
    LogChannelClosed,
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// The monotonic-prefix-consistency checker found a violation. This is an
    /// error (rather than a panic) so property tests can assert on it.
    ConsistencyViolation(String),
    /// A log-archive replay was requested from a position the archive has
    /// already truncated past: records in `(from, truncated_through]` are
    /// gone, so a replica bootstrapping from `from` cannot be caught up from
    /// this archive. The caller must restart from a checkpoint at or above
    /// `truncated_through` — silently starting cold would replay a log with
    /// a hole in it.
    ArchiveTruncated {
        /// The cut the replay was requested from.
        from: SeqNo,
        /// The largest position truncation has dropped.
        truncated_through: SeqNo,
    },
    /// A fleet-membership operation targeted a replica in the wrong
    /// lifecycle state (or one that is not a fleet member at all), or a
    /// join/retire could not complete its transition — e.g. a joiner that
    /// never caught up to its subscription point, or a retiring replica
    /// whose in-flight reads never drained.
    Lifecycle(String),
    /// A read gave up waiting for any replica's exposed cut to cover the
    /// position its consistency class requires. The caller may retry, route
    /// to the primary, or surface the timeout.
    ReadTimeout {
        /// The log position the read needed covered (causal token, primary
        /// frontier, or session floor).
        required: SeqNo,
        /// The freshest exposed cut in the fleet when the wait gave up.
        freshest: SeqNo,
    },
}

/// Why a concurrency control protocol aborted a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// MVTSO validation failed: a version this transaction read was
    /// overwritten by a transaction with a smaller timestamp, or a write
    /// would be installed below an existing read timestamp.
    ValidationFailed,
    /// 2PL deadlock avoidance (wait-die) killed the transaction.
    Deadlock,
    /// A write-write conflict could not be resolved in favour of this
    /// transaction.
    WriteConflict,
    /// The stored procedure itself requested an abort (e.g. TPC-C's 1%
    /// intentionally failing NewOrder transactions).
    UserRequested,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::ValidationFailed => "validation failed",
            AbortReason::Deadlock => "deadlock avoidance",
            AbortReason::WriteConflict => "write-write conflict",
            AbortReason::UserRequested => "user requested",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::RowNotFound(row) => write!(f, "row {row} not found"),
            Error::DuplicateRow(row) => write!(f, "row {row} already exists"),
            Error::TxnAborted { txn, reason } => write!(f, "{txn} aborted: {reason}"),
            Error::Shutdown(what) => write!(f, "{what} has shut down"),
            Error::LogChannelClosed => write!(f, "replication log channel closed"),
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::ConsistencyViolation(msg) => {
                write!(f, "monotonic prefix consistency violated: {msg}")
            }
            Error::ArchiveTruncated {
                from,
                truncated_through,
            } => write!(
                f,
                "archive replay from {from} is below the truncation point {truncated_through}: \
                 the records above the requested cut are gone"
            ),
            Error::Lifecycle(msg) => write!(f, "fleet lifecycle error: {msg}"),
            Error::ReadTimeout { required, freshest } => write!(
                f,
                "read timed out waiting for cut {required} (freshest replica at {freshest})"
            ),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Whether the caller should retry the transaction (true only for
    /// protocol-induced aborts, not user-requested ones).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Error::TxnAborted {
                reason: AbortReason::ValidationFailed
                    | AbortReason::Deadlock
                    | AbortReason::WriteConflict,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_classification() {
        let retry = Error::TxnAborted {
            txn: TxnId(1),
            reason: AbortReason::ValidationFailed,
        };
        assert!(retry.is_retryable());

        let user = Error::TxnAborted {
            txn: TxnId(1),
            reason: AbortReason::UserRequested,
        };
        assert!(!user.is_retryable());

        assert!(!Error::LogChannelClosed.is_retryable());
        assert!(!Error::RowNotFound(RowRef::new(0, 0)).is_retryable());
        assert!(!Error::ArchiveTruncated {
            from: SeqNo(2),
            truncated_through: SeqNo(8),
        }
        .is_retryable());
        assert!(!Error::ReadTimeout {
            required: SeqNo(10),
            freshest: SeqNo(4),
        }
        .is_retryable());
        assert!(!Error::Lifecycle("replica 3 is not serving".into()).is_retryable());
    }

    #[test]
    fn display_is_informative() {
        let e = Error::TxnAborted {
            txn: TxnId(3),
            reason: AbortReason::Deadlock,
        };
        assert_eq!(e.to_string(), "txn3 aborted: deadlock avoidance");
        assert_eq!(
            Error::RowNotFound(RowRef::new(1, 2)).to_string(),
            "row t1/k2 not found"
        );
        let truncated = Error::ArchiveTruncated {
            from: SeqNo(2),
            truncated_through: SeqNo(8),
        };
        assert!(truncated.to_string().contains("seq2"));
        assert!(truncated.to_string().contains("seq8"));
    }

    #[test]
    fn error_implements_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::LogChannelClosed);
    }
}
