//! Checksummed length-prefixed frames: the byte-level building block of every
//! durable file in the workspace.
//!
//! The paper assumes durability and recovery exist on both the primary and
//! the backup and never describes a format; this module supplies the smallest
//! one that supports the recovery contract the durable layers need:
//!
//! * each frame is `[len: u32 LE][crc: u32 LE][payload; len bytes]`, where
//!   the CRC-32 (IEEE, the zlib/PNG polynomial) covers the payload only;
//! * a reader consumes frames until the buffer ends exactly, and reports a
//!   **truncation** — not a panic — on a short header, a short payload, or a
//!   checksum mismatch, returning every frame that validated before the
//!   damage.
//!
//! "Truncate at the first bad frame" is what makes a torn tail (a process
//! killed mid-write, a half-synced page) recoverable: the valid prefix is
//! trusted, the rest is discarded, and the caller re-aligns the prefix to
//! its own unit of atomicity (the log layers trim to a transaction
//! boundary on top of this).

/// The CRC-32 (IEEE 802.3) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum every frame carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends one frame (`len`, `crc`, payload) to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Why a frame scan stopped before the end of the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDamage {
    /// The buffer ended inside a frame header or payload (a torn write).
    ShortRead,
    /// A payload's checksum did not match its header (bit rot or a torn
    /// write that happened to leave the length plausible).
    BadChecksum,
}

/// The result of scanning a buffer of frames: the payloads that validated,
/// plus what (if anything) stopped the scan early.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameScan {
    /// Every payload up to (not including) the first damaged frame.
    pub frames: Vec<Vec<u8>>,
    /// `None` when the buffer ended exactly on a frame boundary; otherwise
    /// the damage that truncated the scan.
    pub damage: Option<FrameDamage>,
}

impl FrameScan {
    /// Whether every byte of the buffer validated.
    pub fn is_clean(&self) -> bool {
        self.damage.is_none()
    }
}

/// Scans `bytes` as a sequence of frames, stopping (never panicking) at the
/// first short read or checksum mismatch.
pub fn read_frames(bytes: &[u8]) -> FrameScan {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < 8 {
            return FrameScan {
                frames,
                damage: Some(FrameDamage::ShortRead),
            };
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let start = at + 8;
        let Some(end) = start.checked_add(len).filter(|&end| end <= bytes.len()) else {
            return FrameScan {
                frames,
                damage: Some(FrameDamage::ShortRead),
            };
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            return FrameScan {
                frames,
                damage: Some(FrameDamage::BadChecksum),
            };
        }
        frames.push(payload.to_vec());
        at = end;
    }
    FrameScan {
        frames,
        damage: None,
    }
}

/// A little-endian cursor over a validated payload, for decoding the fields
/// a frame carries. Every accessor returns `None` on underrun instead of
/// panicking — a decoded frame with a valid checksum can still be from a
/// future (or corrupted-before-checksum) writer, and recovery must degrade
/// to "truncate here", never crash.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> PayloadReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        let bytes = self.bytes.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        let bytes = self.bytes.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a length-prefixed byte string (`u32` length, then the bytes).
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.u32()? as usize;
        let bytes = self.bytes.get(self.at..self.at.checked_add(len)?)?;
        self.at += len;
        Some(bytes)
    }
}

/// The matching little-endian encoder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    bytes: Vec<u8>,
}

impl PayloadWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.bytes.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.bytes.extend_from_slice(v);
        self
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello");
        write_frame(&mut buf, b"");
        write_frame(&mut buf, &[0xFFu8; 300]);
        let scan = read_frames(&buf);
        assert!(scan.is_clean());
        assert_eq!(scan.frames.len(), 3);
        assert_eq!(scan.frames[0], b"hello");
        assert!(scan.frames[1].is_empty());
        assert_eq!(scan.frames[2].len(), 300);
    }

    #[test]
    fn torn_tail_truncates_to_the_valid_prefix() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"keep me");
        write_frame(&mut buf, b"torn");
        // Lose the last two bytes, as a crash mid-write would.
        buf.truncate(buf.len() - 2);
        let scan = read_frames(&buf);
        assert_eq!(scan.damage, Some(FrameDamage::ShortRead));
        assert_eq!(scan.frames, vec![b"keep me".to_vec()]);
    }

    #[test]
    fn flipped_byte_truncates_with_a_checksum_mismatch() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"good");
        let second_at = buf.len();
        write_frame(&mut buf, b"bad!");
        buf[second_at + 8] ^= 0x01; // first payload byte of the second frame
        let scan = read_frames(&buf);
        assert_eq!(scan.damage, Some(FrameDamage::BadChecksum));
        assert_eq!(scan.frames, vec![b"good".to_vec()]);
    }

    #[test]
    fn absurd_length_is_a_short_read_not_a_panic() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"tiny");
        let scan = read_frames(&buf);
        assert_eq!(scan.damage, Some(FrameDamage::ShortRead));
        assert!(scan.frames.is_empty());
    }

    #[test]
    fn payload_codec_round_trips_and_bounds_checks() {
        let mut w = PayloadWriter::new();
        w.u8(7).u32(1234).u64(u64::MAX).bytes(b"payload");
        let buf = w.finish();

        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(1234));
        assert_eq!(r.u64(), Some(u64::MAX));
        assert_eq!(r.bytes(), Some(&b"payload"[..]));
        assert!(r.is_exhausted());
        assert_eq!(r.u8(), None, "reads past the end return None");

        // A declared length past the end underruns cleanly.
        let mut w = PayloadWriter::new();
        w.u32(1000);
        let buf = w.finish();
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.bytes(), None);
    }
}
