//! Identifier newtypes used across the workspace.
//!
//! These are all thin wrappers around integers. They exist so that a log
//! sequence number can never be accidentally used where a write timestamp is
//! expected, and so on — the distinctions matter in the C5 scheduler and
//! snapshotter, where both kinds of counters are in flight at once.

use std::fmt;

/// Identifies a table in the database.
///
/// The synthetic workloads use a single table; TPC-C uses nine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// Returns the raw table number.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A row key within a table.
///
/// The paper's formal model treats keys as opaque members of a set `K`; all
/// of our workloads encode their composite keys (e.g. TPC-C's
/// `(warehouse, district)` pairs) into a single 64-bit integer, which keeps
/// the hot scheduler paths free of allocations and hashing of variable-length
/// data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub u64);

impl Key {
    /// Returns the raw key.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A fully qualified row reference: table plus key.
///
/// This is the unit of conflict in C5's row-granularity protocol: two writes
/// conflict if and only if their `RowRef`s are equal (Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowRef {
    /// The table containing the row.
    pub table: TableId,
    /// The row's key within the table.
    pub key: Key,
}

impl RowRef {
    /// Creates a row reference from raw table and key numbers.
    #[inline]
    pub const fn new(table: u32, key: u64) -> Self {
        Self {
            table: TableId(table),
            key: Key(key),
        }
    }

    /// Packs the reference into a single `u128` suitable for hashing or map
    /// keys where a single integer is more convenient.
    #[inline]
    pub const fn packed(self) -> u128 {
        ((self.table.0 as u128) << 64) | self.key.0 as u128
    }
}

impl fmt::Display for RowRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.table, self.key)
    }
}

/// Identifies a transaction issued on the primary.
///
/// Transaction ids are unique per run but carry no ordering meaning; the
/// commit order is defined by the log ([`SeqNo`]) and, for the MVTSO engine,
/// by [`Timestamp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// A Cicada-style write timestamp.
///
/// On the MVTSO primary every transaction is assigned a unique timestamp from
/// its thread-local clock; ordering transactions by timestamp yields a valid
/// serial schedule (Section 7.1). Version chains in the storage engine are
/// ordered by descending write timestamp. Timestamp `0` is reserved for "no
/// previous write" in the scheduler's embedded per-row FIFOs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp, used as "no previous write" by the scheduler and
    /// as the initial snapshot boundary.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Maximum representable timestamp.
    pub const MAX: Timestamp = Timestamp(u64::MAX);

    /// Returns the raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next timestamp. Panics on overflow (which would require
    /// 2^64 committed transactions).
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts{}", self.0)
    }
}

/// A position in the primary's replication log.
///
/// The C5 scheduler assigns each *write* a sequence number reflecting its
/// position in the log (Section 4.1); the snapshotter's `c` and `n` counters
/// are sequence numbers as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// Sequence number zero: "nothing has been logged yet".
    pub const ZERO: SeqNo = SeqNo(0);

    /// Maximum representable sequence number.
    pub const MAX: SeqNo = SeqNo(u64::MAX);

    /// Returns the raw value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the next sequence number.
    #[inline]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq{}", self.0)
    }
}

/// Identifies a backup worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub usize);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Identifies a read session (a client's sequence of causally related reads
/// against the replica fleet).
///
/// Session ids are handed out by the read router; they carry no ordering
/// meaning and exist so per-session guarantees (read-your-writes, monotonic
/// reads) can be attributed in logs and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn row_ref_packing_is_injective_for_distinct_refs() {
        let a = RowRef::new(1, 42);
        let b = RowRef::new(2, 42);
        let c = RowRef::new(1, 43);
        let set: HashSet<u128> = [a, b, c].iter().map(|r| r.packed()).collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn timestamp_ordering_matches_raw_ordering() {
        assert!(Timestamp(1) < Timestamp(2));
        assert!(Timestamp::ZERO < Timestamp::MAX);
        assert_eq!(Timestamp(7).next(), Timestamp(8));
    }

    #[test]
    fn seqno_next_increments() {
        assert_eq!(SeqNo::ZERO.next(), SeqNo(1));
        assert_eq!(SeqNo(41).next().as_u64(), 42);
    }

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(RowRef::new(3, 9).to_string(), "t3/k9");
        assert_eq!(TxnId(5).to_string(), "txn5");
        assert_eq!(Timestamp(5).to_string(), "ts5");
        assert_eq!(SeqNo(5).to_string(), "seq5");
        assert_eq!(WorkerId(5).to_string(), "w5");
        assert_eq!(SessionId(5).to_string(), "s5");
    }

    #[test]
    fn row_ref_equality_is_conflict_relation() {
        // Two writes conflict iff table and key both match.
        assert_eq!(RowRef::new(1, 1), RowRef::new(1, 1));
        assert_ne!(RowRef::new(1, 1), RowRef::new(2, 1));
        assert_ne!(RowRef::new(1, 1), RowRef::new(1, 2));
    }
}
