//! Shared vocabulary types for the C5 reproduction.
//!
//! Every other crate in this workspace (storage engine, replication log,
//! primary engines, the C5 protocol itself, the baselines, the workloads, and
//! the benchmark harness) speaks in terms of the identifiers, values, errors,
//! and configuration structs defined here.
//!
//! The paper's system model (Section 3.1) is deliberately minimal: a database
//! maps keys to values, a transaction is an ordered set of reads and writes on
//! individual keys, the primary's log totally orders committed transactions,
//! and the backup's protocol replays that log. The types in this crate mirror
//! that model:
//!
//! * [`TableId`] / [`Key`] / [`RowRef`] identify a row ("row" in the paper's
//!   sense — the unit at which C5 serializes conflicting writes).
//! * [`Value`] is an opaque byte payload.
//! * [`Timestamp`] is a Cicada-style write timestamp; [`SeqNo`] is a position
//!   in the primary's replication log. The two are kept as distinct newtypes
//!   because conflating them is a classic source of bugs in cloned
//!   concurrency control implementations.
//! * [`TxnId`] identifies a transaction issued on the primary.
//! * [`Error`] is the workspace-wide error type.
//! * [`OpCost`] models the per-operation execution costs `e` (primary) and
//!   `d` (backup) from Section 3.1 so that benchmark shapes are reproducible
//!   on hosts with very different core counts than the paper's testbed.
//! * [`frame`] is the checksummed length-prefixed frame codec the durable
//!   layers (disk-backed log archive, checkpoint files) build their on-disk
//!   formats from, and [`DurabilityPolicy`] is their shared fsync knob.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cost;
pub mod error;
pub mod frame;
pub mod ids;
pub mod pacing;
pub mod shard;
pub mod value;

pub use config::{
    BenchConfig, DurabilityPolicy, IsolationLevel, PrimaryConfig, ReadConfig, ReplicaConfig,
    SnapshotMode,
};
pub use cost::OpCost;
pub use error::{Error, Result};
pub use ids::{Key, RowRef, SeqNo, SessionId, TableId, Timestamp, TxnId, WorkerId};
pub use pacing::{poll_until, Pacer};
pub use shard::ShardRouter;
pub use value::{RowWrite, Value, WriteKind};
