//! Deadline-based pacing and bounded polling.
//!
//! Two recurring timing patterns in this workspace used to be written with
//! raw `thread::sleep` calls, and both misbehave under heavy load:
//!
//! * **Fixed-interval pacing** (a sampler taking a view every 300µs, a
//!   shipper simulating per-segment network latency): `sleep(interval)` in a
//!   loop drifts by the oversleep of every iteration, so on a loaded CI host
//!   the simulated rate silently degrades. [`Pacer`] keeps an absolute
//!   deadline and advances it by `interval` per tick, so oversleeping one
//!   tick does not slow down the ticks after it.
//! * **Waiting for a condition** (a test waiting for a replica to expose a
//!   prefix): a fixed iteration count times a fixed sleep encodes a hidden
//!   assumption about how fast the machine is. [`poll_until`] polls until the
//!   condition holds or an explicit deadline passes, so the only tunable is
//!   the worst case a test is willing to wait.

use std::time::{Duration, Instant};

/// How often [`poll_until`] re-checks its condition.
pub const POLL_INTERVAL: Duration = Duration::from_micros(200);

/// Polls `cond` every [`POLL_INTERVAL`] until it returns true or `timeout`
/// elapses. Returns whether the condition held (the condition is checked one
/// final time at the deadline, so a condition that becomes true during the
/// last sleep is not missed).
pub fn poll_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        if Instant::now() >= deadline {
            return cond();
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

/// A fixed-interval pacer with deadline arithmetic.
///
/// Each [`wait`](Pacer::wait) sleeps until the next deadline and then advances
/// the deadline by the interval *from the deadline, not from wake-up time*:
/// if the thread oversleeps within one interval, the next tick comes sooner,
/// so the long-run rate stays one tick per interval. Falling more than one
/// interval behind (an idle gap, not an oversleep) resets the schedule to a
/// full interval from now — no burst through missed deadlines, and the
/// "every tick costs at least close to one interval" floor that simulated
/// wire latency depends on is preserved.
#[derive(Debug)]
pub struct Pacer {
    interval: Duration,
    next: Option<Instant>,
}

impl Pacer {
    /// Creates a pacer ticking every `interval`. The first [`wait`](Pacer::wait)
    /// sleeps one full interval.
    pub fn new(interval: Duration) -> Self {
        Self {
            interval,
            next: None,
        }
    }

    /// The pacing interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Sleeps until the next deadline (compensating for past oversleep) and
    /// schedules the one after it.
    pub fn wait(&mut self) {
        let now = Instant::now();
        let target = match self.next {
            // More than one interval behind schedule (an idle gap, not an
            // oversleep): reset to a fresh full interval rather than burst
            // through missed deadlines — a tick after a quiet period still
            // pays the full interval, like the first tick ever does.
            Some(t) if now.saturating_duration_since(t) > self.interval => now + self.interval,
            // Within one interval of the schedule: keep the deadline, so an
            // oversleep shortens the waits after it instead of accumulating.
            Some(t) => t,
            None => now + self.interval,
        };
        if let Some(gap) = target.checked_duration_since(now) {
            if !gap.is_zero() {
                std::thread::sleep(gap);
            }
        }
        self.next = Some(target + self.interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn poll_until_returns_when_condition_holds() {
        let n = AtomicU64::new(0);
        let ok = poll_until(Duration::from_secs(5), || {
            n.fetch_add(1, Ordering::Relaxed) >= 3
        });
        assert!(ok);
        assert!(n.load(Ordering::Relaxed) >= 4);
    }

    #[test]
    fn poll_until_times_out_on_a_false_condition() {
        let start = Instant::now();
        assert!(!poll_until(Duration::from_millis(5), || false));
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn poll_until_checks_once_even_with_zero_timeout() {
        assert!(poll_until(Duration::ZERO, || true));
    }

    #[test]
    fn pacer_compensates_for_oversleep_within_an_interval() {
        // Tick at 20ms but burn 8ms between ticks: the second wait keeps the
        // original deadline, so two ticks complete near the 40ms schedule
        // rather than near 40ms + 8ms.
        let mut pacer = Pacer::new(Duration::from_millis(20));
        let start = Instant::now();
        pacer.wait();
        std::thread::sleep(Duration::from_millis(8)); // oversleep, < interval
        pacer.wait();
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(38), "got {elapsed:?}");
        assert!(
            elapsed < Duration::from_millis(47),
            "the stall must be absorbed by a shortened wait, got {elapsed:?}"
        );
    }

    #[test]
    fn pacer_imposes_a_full_interval_after_an_idle_gap() {
        // Miss many deadlines, then tick: no burst through the backlog, and
        // the tick still pays (close to) one full interval — the per-tick
        // latency floor simulated wire delays rely on.
        let mut pacer = Pacer::new(Duration::from_millis(5));
        pacer.wait();
        std::thread::sleep(Duration::from_millis(20));
        let start = Instant::now();
        pacer.wait();
        assert!(start.elapsed() >= Duration::from_millis(4));
    }
}
