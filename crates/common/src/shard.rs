//! Key-range partitioning of the keyspace into shards.
//!
//! The paper replicates one log into one backup; at production scale the
//! keyspace itself must shard, with each shard owning a contiguous key range
//! and its own slice of the log. [`ShardRouter`] is the single routing rule
//! every layer shares: the log shipper uses it to split segments into
//! per-shard streams, the sharded replica uses it to direct writes to the
//! right apply pipeline, and read views use it to pick the shard cut a row
//! is served under. Keeping the rule in one value (rather than re-deriving
//! it per layer) is what makes "the same row always lands on the same shard"
//! an invariant instead of a convention.
//!
//! The rule is deliberately simple — contiguous equal-width key ranges over
//! `[0, key_space)`, with keys at or beyond `key_space` clamped into the last
//! shard — because the cut coordinator's correctness only needs *stability*
//! (a row's shard never changes mid-run), not balance. Workloads whose keys
//! exceed the configured key space still run correctly; they just load the
//! last shard more heavily.

use std::fmt;

use crate::ids::RowRef;

/// Maximum number of shards a router supports. Cross-shard transaction
/// tracking uses a 64-bit shard bitmask, which is far beyond any sensible
/// per-process shard count (each shard runs its own scheduler, worker pool,
/// and expose thread).
pub const MAX_SHARDS: usize = 64;

/// Routes rows to shards by contiguous key range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: usize,
    key_space: u64,
    /// Width of each shard's key range (`key_space / shards`, rounded up).
    span: u64,
}

impl ShardRouter {
    /// Creates a router over `shards` equal-width ranges of `[0, key_space)`.
    ///
    /// # Panics
    /// Panics if `shards` is zero or exceeds [`MAX_SHARDS`], or if the key
    /// space cannot split into `shards` non-empty equal-width ranges (the
    /// rounded-up span must leave room for the last shard — e.g. 9 keys do
    /// not split into 4 ranges of width 3; in practice the key space is
    /// orders of magnitude larger than the shard count).
    pub fn new(shards: usize, key_space: u64) -> Self {
        assert!(shards >= 1, "a router needs at least one shard");
        assert!(
            shards <= MAX_SHARDS,
            "at most {MAX_SHARDS} shards are supported (got {shards})"
        );
        let span = key_space.div_ceil(shards as u64);
        assert!(
            Self::splits_evenly(shards, key_space),
            "key space {key_space} cannot split into {shards} non-empty ranges of width {span}"
        );
        Self {
            shards,
            key_space,
            span,
        }
    }

    /// Whether `key_space` splits into `shards` non-empty equal-width
    /// ranges (the condition [`new`](Self::new) enforces; exposed so
    /// configuration validation can reject bad combinations with an error
    /// instead of a panic).
    pub fn splits_evenly(shards: usize, key_space: u64) -> bool {
        if shards == 0 || key_space == 0 {
            return false;
        }
        let span = key_space.div_ceil(shards as u64);
        // The last shard's range starts at span * (shards - 1); it must
        // start inside the key space or it (and route()) could never reach
        // every shard.
        match span.checked_mul(shards as u64 - 1) {
            Some(last_start) => last_start < key_space,
            None => false,
        }
    }

    /// A single-shard router (everything routes to shard 0).
    pub fn single() -> Self {
        Self::new(1, u64::MAX)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The key space the ranges partition.
    pub fn key_space(&self) -> u64 {
        self.key_space
    }

    /// The shard owning `row`. Keys at or beyond the key space clamp into the
    /// last shard, so routing is total.
    #[inline]
    pub fn route(&self, row: RowRef) -> usize {
        if self.shards == 1 {
            return 0;
        }
        ((row.key.as_u64() / self.span) as usize).min(self.shards - 1)
    }

    /// The key range `[start, end)` owned by `shard` (the last shard's range
    /// additionally absorbs all keys at or beyond the key space).
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn key_range(&self, shard: usize) -> (u64, u64) {
        assert!(shard < self.shards, "shard {shard} out of range");
        let start = self.span * shard as u64;
        let end = if shard + 1 == self.shards {
            self.key_space
        } else {
            // Never past the key space, so every range is a subset of it
            // (the constructor guarantees start < key_space, hence
            // non-emptiness).
            (self.span * (shard + 1) as u64).min(self.key_space)
        };
        (start, end)
    }
}

impl fmt::Display for ShardRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shard(s) over keys [0, {})",
            self.shards, self.key_space
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_by_contiguous_range() {
        let router = ShardRouter::new(4, 100);
        assert_eq!(router.route(RowRef::new(0, 0)), 0);
        assert_eq!(router.route(RowRef::new(0, 24)), 0);
        assert_eq!(router.route(RowRef::new(0, 25)), 1);
        assert_eq!(router.route(RowRef::new(0, 99)), 3);
        // Keys beyond the key space clamp into the last shard.
        assert_eq!(router.route(RowRef::new(0, 10_000)), 3);
        assert_eq!(router.route(RowRef::new(0, u64::MAX)), 3);
    }

    #[test]
    fn routing_ignores_the_table() {
        let router = ShardRouter::new(2, 10);
        assert_eq!(
            router.route(RowRef::new(0, 7)),
            router.route(RowRef::new(9, 7))
        );
    }

    #[test]
    fn every_key_routes_to_exactly_the_covering_range() {
        let router = ShardRouter::new(3, 10);
        for key in 0..20 {
            let shard = router.route(RowRef::new(0, key));
            let (start, end) = router.key_range(shard);
            if key < router.key_space() {
                assert!(
                    start <= key && key < end,
                    "key {key} not in [{start},{end})"
                );
            } else {
                assert_eq!(shard, 2);
            }
        }
    }

    #[test]
    fn single_shard_router_routes_everything_to_zero() {
        let router = ShardRouter::single();
        assert_eq!(router.shards(), 1);
        assert_eq!(router.route(RowRef::new(5, u64::MAX)), 0);
    }

    #[test]
    fn ranges_tile_the_key_space() {
        let router = ShardRouter::new(4, 10);
        let mut covered = 0;
        for s in 0..4 {
            let (start, end) = router.key_range(s);
            assert_eq!(start, covered);
            covered = end;
        }
        assert_eq!(covered, 10);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0, 10);
    }

    #[test]
    #[should_panic(expected = "non-empty ranges")]
    fn tiny_key_space_panics() {
        let _ = ShardRouter::new(4, 3);
    }

    #[test]
    #[should_panic(expected = "non-empty ranges")]
    fn rounded_span_that_starves_the_last_shard_panics() {
        // span = ceil(9 / 4) = 3, so shard 3's range would start at 9 — at
        // the end of the key space, i.e. empty.
        let _ = ShardRouter::new(4, 9);
    }

    #[test]
    fn every_accepted_router_reaches_every_shard_with_valid_ranges() {
        for shards in 1..=8usize {
            for key_space in 1..=40u64 {
                if !ShardRouter::splits_evenly(shards, key_space) {
                    continue;
                }
                let router = ShardRouter::new(shards, key_space);
                let mut reached = vec![false; shards];
                for key in 0..key_space {
                    reached[router.route(RowRef::new(0, key))] = true;
                }
                assert!(
                    reached.iter().all(|&r| r),
                    "{shards} shards over {key_space} keys left a shard unreachable"
                );
                for shard in 0..shards {
                    let (start, end) = router.key_range(shard);
                    assert!(start < end, "empty range for shard {shard}");
                    assert!(end <= key_space, "range past the key space");
                }
            }
        }
    }
}
