//! Row values and write descriptors.

use std::fmt;

use bytes::Bytes;

use crate::ids::RowRef;

/// An opaque row payload.
///
/// The storage engine and replication machinery never interpret the bytes;
/// workloads are free to encode whatever they need (the TPC-C rows use a
/// compact fixed binary encoding, the synthetic workloads store a single
/// integer). `Value` is cheaply cloneable (`bytes::Bytes` is reference
/// counted), which matters because the same payload travels from the primary's
/// write set into the log and from the log into the backup's store.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Value(Bytes);

impl Value {
    /// Creates a value from raw bytes.
    pub fn from_bytes(bytes: Bytes) -> Self {
        Self(bytes)
    }

    /// Creates a value from a `u64`, the encoding used by the synthetic
    /// workloads (a single integer column).
    pub fn from_u64(v: u64) -> Self {
        Self(Bytes::copy_from_slice(&v.to_le_bytes()))
    }

    /// Decodes a value previously produced by [`Value::from_u64`].
    ///
    /// Returns `None` if the payload is not exactly eight bytes.
    pub fn as_u64(&self) -> Option<u64> {
        let slice: &[u8] = &self.0;
        let arr: [u8; 8] = slice.try_into().ok()?;
        Some(u64::from_le_bytes(arr))
    }

    /// Borrows the raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Number of bytes in the payload.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_u64() {
            write!(f, "Value(u64:{v})")
        } else {
            write!(f, "Value({} bytes)", self.0.len())
        }
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Self(Bytes::from(v))
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Self(Bytes::copy_from_slice(v))
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

/// The kind of a row write (Section 2.2: inserts, updates, and deletes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WriteKind {
    /// A new row is added.
    Insert,
    /// An existing row's value is replaced.
    Update,
    /// The row is removed.
    Delete,
}

impl WriteKind {
    /// Whether this write carries a payload (`Insert`/`Update`) or not
    /// (`Delete`).
    pub fn carries_value(self) -> bool {
        !matches!(self, WriteKind::Delete)
    }
}

/// A single row write as it appears in a transaction's write set and in the
/// replication log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowWrite {
    /// The row being written.
    pub row: RowRef,
    /// Insert, update, or delete.
    pub kind: WriteKind,
    /// The new payload; `None` for deletes.
    pub value: Option<Value>,
}

impl RowWrite {
    /// Creates an insert.
    pub fn insert(row: RowRef, value: Value) -> Self {
        Self {
            row,
            kind: WriteKind::Insert,
            value: Some(value),
        }
    }

    /// Creates an update.
    pub fn update(row: RowRef, value: Value) -> Self {
        Self {
            row,
            kind: WriteKind::Update,
            value: Some(value),
        }
    }

    /// Creates a delete.
    pub fn delete(row: RowRef) -> Self {
        Self {
            row,
            kind: WriteKind::Delete,
            value: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips() {
        for v in [0u64, 1, 42, u64::MAX] {
            assert_eq!(Value::from_u64(v).as_u64(), Some(v));
        }
    }

    #[test]
    fn non_u64_payload_decodes_to_none() {
        let v = Value::from(vec![1u8, 2, 3]);
        assert_eq!(v.as_u64(), None);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn write_kind_value_carrying() {
        assert!(WriteKind::Insert.carries_value());
        assert!(WriteKind::Update.carries_value());
        assert!(!WriteKind::Delete.carries_value());
    }

    #[test]
    fn row_write_constructors_set_kind_and_value() {
        let row = RowRef::new(1, 2);
        let w = RowWrite::insert(row, Value::from_u64(9));
        assert_eq!(w.kind, WriteKind::Insert);
        assert_eq!(w.value.as_ref().and_then(Value::as_u64), Some(9));

        let d = RowWrite::delete(row);
        assert_eq!(d.kind, WriteKind::Delete);
        assert!(d.value.is_none());
    }

    #[test]
    fn debug_formatting_distinguishes_integer_payloads() {
        assert_eq!(format!("{:?}", Value::from_u64(7)), "Value(u64:7)");
        assert_eq!(format!("{:?}", Value::from(vec![0u8; 3])), "Value(3 bytes)");
    }
}
