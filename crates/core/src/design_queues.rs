//! The explicit queue structure of Section 4.1 (Figure 4).
//!
//! The design describes the scheduler as maintaining, per row, a FIFO queue
//! of that row's writes in log order, plus a *scheduler queue* — a FIFO of
//! row queues — from which workers draw work: a worker removes the row queue
//! at the head of the scheduler queue, executes the write at that queue's
//! head, and on completion the row queue (if still non-empty) is reinserted
//! at the scheduler queue's tail.
//!
//! The production execution paths in [`crate::replica`] use the embedded
//! `prev_seq` representation instead (Section 7.2), because dynamically
//! allocating and managing explicit queues is exactly the scheduler
//! bottleneck the paper warns about. This module keeps the explicit structure
//! around for three reasons: it is the specification the embedded form is
//! tested against, it drives the `design_vs_embedded` ablation benchmark, and
//! it makes the Figure 4 walkthrough executable.

use std::collections::{HashMap, VecDeque};

use c5_common::RowRef;
use c5_log::LogRecord;

/// A write waiting in a per-row queue.
#[derive(Debug, Clone)]
pub struct QueuedWrite {
    /// The log record carrying the write.
    pub record: LogRecord,
}

/// The scheduler's explicit queues.
#[derive(Debug, Default)]
pub struct RowQueueScheduler {
    row_queues: HashMap<RowRef, VecDeque<QueuedWrite>>,
    scheduler_queue: VecDeque<RowRef>,
    /// Rows whose head write is currently being executed by some worker.
    executing: std::collections::HashSet<RowRef>,
    enqueued: u64,
    completed: u64,
}

impl RowQueueScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a write. If the row's queue becomes newly runnable (it was
    /// empty and nobody is executing its head), the row enters the scheduler
    /// queue.
    pub fn enqueue(&mut self, record: LogRecord) {
        let row = record.write.row;
        let queue = self.row_queues.entry(row).or_default();
        let was_empty = queue.is_empty();
        queue.push_back(QueuedWrite { record });
        self.enqueued += 1;
        if was_empty && !self.executing.contains(&row) {
            self.scheduler_queue.push_back(row);
        }
    }

    /// A worker asks for its next write: the head write of the row queue at
    /// the head of the scheduler queue. Returns `None` if no row queue is
    /// currently runnable (either everything is empty or every non-empty row
    /// is already being executed by another worker).
    pub fn next_work(&mut self) -> Option<LogRecord> {
        let row = self.scheduler_queue.pop_front()?;
        let queue = self.row_queues.get(&row).expect("queued row has a queue");
        let write = queue.front().expect("runnable row queue is non-empty");
        self.executing.insert(row);
        Some(write.record.clone())
    }

    /// A worker reports that it finished executing the head write of `row`'s
    /// queue. The write is removed; if the queue still holds writes the row
    /// is reinserted at the scheduler queue's tail.
    pub fn complete(&mut self, row: RowRef) {
        let remove_queue = {
            let queue = self
                .row_queues
                .get_mut(&row)
                .expect("completed row has a queue");
            queue.pop_front().expect("completed row had a head write");
            self.completed += 1;
            self.executing.remove(&row);
            if queue.is_empty() {
                true
            } else {
                self.scheduler_queue.push_back(row);
                false
            }
        };
        if remove_queue {
            self.row_queues.remove(&row);
        }
    }

    /// Number of writes enqueued so far.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Number of writes completed so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Number of writes currently waiting or executing.
    pub fn pending(&self) -> u64 {
        self.enqueued - self.completed
    }

    /// Number of row queues currently runnable (i.e. the maximum number of
    /// writes that could execute in parallel right now). This is the
    /// quantity Theorem 2 is about: it never falls below the parallelism the
    /// primary's own concurrency control had available.
    pub fn runnable(&self) -> usize {
        self.scheduler_queue.len()
    }

    /// Whether every enqueued write has completed.
    pub fn is_drained(&self) -> bool {
        self.pending() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, SeqNo, Timestamp, TxnId, Value};

    fn record(seq: u64, key: u64) -> LogRecord {
        LogRecord {
            txn: TxnId(seq),
            seq: SeqNo(seq),
            commit_ts: Timestamp(seq),
            commit_wall_nanos: 0,
            prev_seq: SeqNo::ZERO,
            write: RowWrite::update(RowRef::new(0, key), Value::from_u64(seq)),
            idx_in_txn: 0,
            txn_len: 1,
        }
    }

    /// The Figure 4 walkthrough: Alice's transaction A writes a1 (comment
    /// row) and a2 (video counter); Bob's transaction B writes b1 and b2 to
    /// the same two rows. Two workers execute them.
    #[test]
    fn figure_4_walkthrough() {
        const COMMENT_A: u64 = 1;
        const COMMENT_B: u64 = 2;
        const COUNTER: u64 = 9;

        let mut sched = RowQueueScheduler::new();
        // Log order: a1 (comment A), a2 (counter), b1 (comment B), b2 (counter).
        sched.enqueue(record(1, COMMENT_A));
        sched.enqueue(record(2, COUNTER));
        sched.enqueue(record(3, COMMENT_B));
        sched.enqueue(record(4, COUNTER));

        // Panel 2: two workers take a1 and a2 in parallel. b1 is also
        // runnable (different row), but b2 is stuck behind a2 in the
        // counter's queue.
        let w1 = sched.next_work().unwrap();
        let w2 = sched.next_work().unwrap();
        assert_eq!(w1.seq, SeqNo(1));
        assert_eq!(w2.seq, SeqNo(2));
        assert_eq!(sched.runnable(), 1); // only b1's row

        // Panel 3: a2 finishes first; the counter queue is reinserted at the
        // scheduler queue's tail, behind b1's row.
        sched.complete(w2.write.row);
        let w3 = sched.next_work().unwrap();
        assert_eq!(w3.seq, SeqNo(3), "b1 runs before b2: FIFO of row queues");

        // Panel 4: b2 now runs; a1 finishes whenever.
        let w4 = sched.next_work().unwrap();
        assert_eq!(w4.seq, SeqNo(4));
        sched.complete(w1.write.row);
        sched.complete(w3.write.row);
        sched.complete(w4.write.row);
        assert!(sched.is_drained());
    }

    #[test]
    fn per_row_order_is_preserved() {
        let mut sched = RowQueueScheduler::new();
        for seq in 1..=5 {
            sched.enqueue(record(seq, 7));
        }
        let mut executed = Vec::new();
        while let Some(w) = sched.next_work() {
            executed.push(w.seq.as_u64());
            sched.complete(w.write.row);
        }
        assert_eq!(executed, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn conflicting_writes_never_run_concurrently() {
        let mut sched = RowQueueScheduler::new();
        sched.enqueue(record(1, 7));
        sched.enqueue(record(2, 7));
        let w = sched.next_work().unwrap();
        assert_eq!(w.seq, SeqNo(1));
        // The second write to row 7 is not runnable while the first executes.
        assert!(sched.next_work().is_none());
        sched.complete(w.write.row);
        assert_eq!(sched.next_work().unwrap().seq, SeqNo(2));
    }

    #[test]
    fn non_conflicting_writes_expose_full_parallelism() {
        let mut sched = RowQueueScheduler::new();
        for seq in 1..=16 {
            sched.enqueue(record(seq, seq)); // all distinct rows
        }
        assert_eq!(sched.runnable(), 16);
        let mut grabbed = Vec::new();
        while let Some(w) = sched.next_work() {
            grabbed.push(w);
        }
        assert_eq!(grabbed.len(), 16, "all sixteen writes can run concurrently");
    }

    #[test]
    fn counters_track_progress() {
        let mut sched = RowQueueScheduler::new();
        sched.enqueue(record(1, 1));
        sched.enqueue(record(2, 2));
        assert_eq!(sched.enqueued(), 2);
        assert_eq!(sched.pending(), 2);
        let w = sched.next_work().unwrap();
        sched.complete(w.write.row);
        assert_eq!(sched.completed(), 1);
        assert!(!sched.is_drained());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use c5_common::{RowWrite, SeqNo, Timestamp, TxnId, Value};
    use proptest::prelude::*;

    fn record(seq: u64, key: u64) -> LogRecord {
        LogRecord {
            txn: TxnId(seq),
            seq: SeqNo(seq),
            commit_ts: Timestamp(seq),
            commit_wall_nanos: 0,
            prev_seq: SeqNo::ZERO,
            write: RowWrite::update(RowRef::new(0, key), Value::from_u64(seq)),
            idx_in_txn: 0,
            txn_len: 1,
        }
    }

    proptest! {
        /// Draining the queues with a simulated pool of workers always
        /// executes each row's writes in log order, for any interleaving of
        /// grab/complete steps.
        #[test]
        fn per_row_log_order_holds_under_any_interleaving(
            keys in prop::collection::vec(0u64..6, 1..40),
            choices in prop::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut sched = RowQueueScheduler::new();
            for (i, &k) in keys.iter().enumerate() {
                sched.enqueue(record(i as u64 + 1, k));
            }
            let mut in_flight: Vec<LogRecord> = Vec::new();
            let mut executed_per_row: std::collections::HashMap<RowRef, Vec<u64>> =
                std::collections::HashMap::new();
            let mut choice_idx = 0;
            while !sched.is_drained() {
                let grab = if in_flight.is_empty() {
                    true
                } else {
                    let c = choices.get(choice_idx).copied().unwrap_or(false);
                    choice_idx += 1;
                    c
                };
                if grab {
                    if let Some(w) = sched.next_work() {
                        in_flight.push(w);
                        continue;
                    }
                }
                // Complete the oldest in-flight write.
                if let Some(w) = in_flight.first().cloned() {
                    in_flight.remove(0);
                    executed_per_row.entry(w.write.row).or_default().push(w.seq.as_u64());
                    sched.complete(w.write.row);
                }
            }
            for seqs in executed_per_row.values() {
                let mut sorted = seqs.clone();
                sorted.sort_unstable();
                prop_assert_eq!(seqs, &sorted);
            }
            prop_assert_eq!(sched.completed(), keys.len() as u64);
        }
    }
}
