//! Online fleet membership: live replica join and retire.
//!
//! The paper assumes a fixed fleet wired at startup — Section 2.1's "one
//! primary serving many read replicas" never changes shape mid-run. This
//! module adds the elastic-membership layer on top of the primitives the
//! paper's cheap-failover design already provides: a joiner bootstraps from
//! a **live checkpoint** exported by a serving member (Section 6's
//! consistent-cut capture), closes the gap from the **log archive**, and
//! rides the **live stream** from there; a retiree drains its pinned reads
//! and detaches without disturbing its peers.
//!
//! The correctness hinge is the **gap-closure invariant**: the joiner
//! subscribes to the live stream *before* the archive replay finishes.
//! [`c5_log::LogShipper::subscribe`] returns `starts_after` — the coverage
//! watermark read under the same lock that advances it and appends to the
//! archive — so the archive is guaranteed to hold every record at or below
//! `starts_after`, the channel delivers every record above it, and no
//! sequence number falls between the two. The replay applies exactly the
//! archived segments covered at or below `starts_after` (segments the
//! archive gained *after* the subscription also arrive live, and are
//! skipped from the replay by that same filter), the driver thread applies
//! the stream, and once the joiner's exposed cut reaches
//! `max(checkpoint cut, starts_after)` it is provably a prefix-complete
//! clone and flips to `Serving`.
//!
//! The lifecycle of a member is an explicit state machine
//! ([`ReplicaLifecycle`]): `Bootstrapping → CatchingUp → Serving →
//! Draining → Retired`, with a kill edge from any live state straight to
//! `Retired`. The [`FleetController`] drives both protocols end to end and
//! talks to the read-routing layer through [`FleetRoutingSink`] — defined
//! here (rather than in `c5-read`, which implements it on its `ReadRouter`)
//! because the dependency points the other way.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use c5_common::{poll_until, Error, ReplicaConfig, Result, SeqNo};
use c5_log::{LogArchive, LogShipper, Subscription, SubscriptionId};
use c5_obs::TraceEvent;
use c5_storage::MvStore;

use crate::replica::{drive_from_receiver, C5Mode, C5Replica, ClonedConcurrencyControl};

/// Where a fleet member is in its life: the only legal transitions are the
/// forward edges `Bootstrapping → CatchingUp → Serving → Draining →
/// Retired`, plus a kill edge from any live state straight to `Retired`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicaLifecycle {
    /// Installing its starting state (a checkpoint or a seed store); not
    /// yet applying the log.
    Bootstrapping,
    /// Applying the archived gap and the live stream; not yet serving.
    CatchingUp,
    /// A full fleet member: serving reads, counted by freshness math.
    Serving,
    /// Mid-retire: no new reads are routed here, pinned reads finish.
    Draining,
    /// Detached from the fleet; terminal.
    Retired,
}

impl ReplicaLifecycle {
    /// Short state name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaLifecycle::Bootstrapping => "bootstrapping",
            ReplicaLifecycle::CatchingUp => "catching-up",
            ReplicaLifecycle::Serving => "serving",
            ReplicaLifecycle::Draining => "draining",
            ReplicaLifecycle::Retired => "retired",
        }
    }

    /// Whether the `self → next` edge is legal.
    pub fn can_advance_to(self, next: ReplicaLifecycle) -> bool {
        use ReplicaLifecycle::*;
        matches!(
            (self, next),
            (Bootstrapping, CatchingUp) | (CatchingUp, Serving) | (Serving, Draining)
        ) || (next == Retired && self != Retired)
    }

    /// Takes the `self → next` edge, or fails with [`Error::Lifecycle`] if
    /// the edge does not exist.
    pub fn advance(self, next: ReplicaLifecycle) -> Result<ReplicaLifecycle> {
        if self.can_advance_to(next) {
            Ok(next)
        } else {
            Err(Error::Lifecycle(format!(
                "illegal lifecycle transition {} -> {}",
                self.name(),
                next.name()
            )))
        }
    }
}

impl std::fmt::Display for ReplicaLifecycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The routing side of online membership, implemented by `c5-read`'s
/// `ReadRouter` (and by test stubs). The contract mirrors the router's
/// inherent methods: `admit` returns a stable member id, `retire` stops new
/// routes while pinned reads finish, `in_flight_of` is the drain barometer
/// (`None` once detached), `detach` removes the member and hands its
/// replica back.
pub trait FleetRoutingSink: Send + Sync {
    /// Adds a member; returns its stable routing id.
    fn admit(&self, replica: Arc<dyn ClonedConcurrencyControl>) -> usize;
    /// Marks a member draining: no new routes, pinned reads finish.
    fn retire(&self, replica: usize) -> Result<()>;
    /// Removes a member and returns its replica handle.
    fn detach(&self, replica: usize) -> Result<Arc<dyn ClonedConcurrencyControl>>;
    /// Reads currently pinned to a member (`None` once detached).
    fn in_flight_of(&self, replica: usize) -> Option<u64>;
}

/// One controller-managed fleet member, keyed by its routing id.
struct Member {
    replica: Arc<C5Replica>,
    subscription: SubscriptionId,
    state: ReplicaLifecycle,
    /// The thread pumping the live stream into the replica; joined on
    /// retire/kill/finish ([`drive_from_receiver`] drains the closing
    /// channel, then finishes the replica).
    driver: Option<JoinHandle<Duration>>,
}

/// What an online join did, and how long it took.
#[derive(Debug, Clone, Copy)]
pub struct JoinReport {
    /// The new member's routing id.
    pub replica: usize,
    /// The transaction-aligned cut the joiner's starting state covers
    /// (`SeqNo::ZERO` for a seeded join).
    pub checkpoint_cut: SeqNo,
    /// The watermark the live stream starts above
    /// ([`Subscription::starts_after`]); the archive replay covered
    /// `(checkpoint_cut, stream_start]`.
    pub stream_start: SeqNo,
    /// Log records applied from the archive to close the gap.
    pub replayed_records: u64,
    /// Wall-clock time from the join request until the member was
    /// `Serving` (checkpoint export + install + replay + catch-up).
    pub join_to_serving: Duration,
}

/// What an online retire did, and how long it took.
#[derive(Debug, Clone, Copy)]
pub struct RetireReport {
    /// The retired member's routing id.
    pub replica: usize,
    /// Wall-clock time from the retire request until the member was
    /// detached with its pinned reads drained and its driver stopped.
    pub drain: Duration,
    /// The member's exposed cut at retirement.
    pub retired_exposed: SeqNo,
}

/// Drives online join and retire against one shipper/archive pair and one
/// routing sink. Owns the driver thread of every member it admits.
pub struct FleetController {
    shipper: LogShipper,
    archive: Arc<LogArchive>,
    router: Arc<dyn FleetRoutingSink>,
    mode: C5Mode,
    config: ReplicaConfig,
    channel_capacity: usize,
    catch_up_timeout: Duration,
    drain_timeout: Duration,
    members: Mutex<HashMap<usize, Member>>,
}

impl FleetController {
    /// Creates a controller joining replicas of `mode`/`config` onto
    /// `shipper`'s stream, backfilling from `archive` (which must be the
    /// archive attached to that shipper — the gap-closure invariant is
    /// theirs jointly), and publishing membership to `router`.
    pub fn new(
        shipper: LogShipper,
        archive: Arc<LogArchive>,
        router: Arc<dyn FleetRoutingSink>,
        mode: C5Mode,
        config: ReplicaConfig,
    ) -> Self {
        let channel_capacity = config.segment_channel_capacity;
        Self {
            shipper,
            archive,
            router,
            mode,
            config,
            channel_capacity,
            catch_up_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            members: Mutex::new(HashMap::new()),
        }
    }

    /// Overrides how long a joiner may take to catch up to its
    /// subscription point before the join fails.
    pub fn with_catch_up_timeout(mut self, timeout: Duration) -> Self {
        self.catch_up_timeout = timeout;
        self
    }

    /// Overrides how long a retire waits for pinned reads to drain.
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Records one lifecycle transition into the configured observability
    /// sink (trace event plus a transition counter).
    fn trace_transition(&self, replica: usize, from: ReplicaLifecycle, to: ReplicaLifecycle) {
        self.config.obs.trace.record(TraceEvent::Lifecycle {
            replica: replica as u64,
            from: from.name(),
            to: to.name(),
        });
        self.config
            .obs
            .metrics
            .counter(&format!("fleet_transitions_total{{to=\"{}\"}}", to.name()))
            .inc();
    }

    /// Publishes the current `Serving` head-count as a gauge.
    fn publish_serving_gauge(&self) {
        self.config
            .obs
            .metrics
            .gauge("fleet_serving")
            .set(self.serving_count() as i64);
    }

    /// Joins a brand-new replica into the live fleet: exports a checkpoint
    /// from the freshest `Serving` member, installs it, subscribes to the
    /// live stream, replays the archived gap, waits until the joiner's
    /// exposed cut reaches the subscription point, then flips it to
    /// `Serving` and admits it to the router. Fails with
    /// [`Error::Lifecycle`] when no member is `Serving` (seed the fleet
    /// with [`FleetController::join_seeded`] first).
    pub fn join(&self) -> Result<JoinReport> {
        let started = Instant::now();
        let source = {
            let members = self.members.lock();
            members
                .values()
                .filter(|m| m.state == ReplicaLifecycle::Serving)
                .max_by_key(|m| m.replica.exposed_seq())
                .map(|m| Arc::clone(&m.replica))
        };
        let Some(source) = source else {
            return Err(Error::Lifecycle(
                "no serving member to export a checkpoint from; seed the fleet with \
                 join_seeded"
                    .into(),
            ));
        };
        // Export while the source keeps serving: the cut is pinned through
        // a read view, applies continue concurrently (Section 6).
        let checkpoint = source.checkpoint();
        let cut = checkpoint.cut();
        // Subscribe BEFORE the replay: everything at or below
        // `starts_after` is already archived, everything above it arrives
        // on this channel — the replay below closes exactly the gap.
        let subscription = self.shipper.subscribe(self.channel_capacity)?;
        let replica =
            C5Replica::resume_from_checkpoint(self.mode, &checkpoint, self.config.clone());
        self.catch_up_and_admit(replica, subscription, cut, started)
    }

    /// Seeds the fleet with a member bootstrapping from `store` (the
    /// initial population, installed at `Timestamp::ZERO`) instead of a
    /// checkpoint: the whole archived log is its gap. How the first
    /// members get in before anyone is `Serving`.
    pub fn join_seeded(&self, store: Arc<MvStore>) -> Result<JoinReport> {
        let started = Instant::now();
        let subscription = self.shipper.subscribe(self.channel_capacity)?;
        let replica = C5Replica::new(self.mode, store, self.config.clone());
        self.catch_up_and_admit(replica, subscription, SeqNo::ZERO, started)
    }

    /// The shared back half of both join flavours: `Bootstrapping` is done
    /// (starting state installed, subscription taken), so replay the
    /// archived gap, pump the live stream, wait for catch-up, admit.
    fn catch_up_and_admit(
        &self,
        replica: Arc<C5Replica>,
        subscription: Subscription,
        cut: SeqNo,
        started: Instant,
    ) -> Result<JoinReport> {
        let mut state = ReplicaLifecycle::Bootstrapping.advance(ReplicaLifecycle::CatchingUp)?;
        let stream_start = subscription.starts_after;
        // Replay exactly the archived segments the live stream will not
        // deliver. The archive may have grown past `starts_after` between
        // the subscription and this call; those segments arrive on the
        // channel and are filtered out here so nothing applies twice.
        // `starts_after` is always a shipped-segment coverage boundary, so
        // the filter never splits a segment.
        let mut replayed_records = 0u64;
        for segment in self.archive.replay_from(cut)? {
            if segment.covered_through() > stream_start {
                continue;
            }
            replayed_records += segment.len() as u64;
            replica.apply_segment(segment);
        }
        let driver = {
            let replica = Arc::clone(&replica);
            let receiver = subscription.receiver;
            std::thread::spawn(move || drive_from_receiver(replica.as_ref(), receiver))
        };
        // Caught up = exposed covers both the starting state and the
        // subscription point: from here the live stream alone keeps the
        // member a prefix-complete clone.
        let target = cut.max(stream_start);
        if !replica.wait_until_exposed(target, self.catch_up_timeout) {
            self.shipper.unsubscribe(subscription.id);
            let _ = driver.join();
            return Err(Error::Lifecycle(format!(
                "joiner never caught up to {target} within {:?} (exposed {})",
                self.catch_up_timeout,
                replica.exposed_seq()
            )));
        }
        state = state.advance(ReplicaLifecycle::Serving)?;
        let id = self
            .router
            .admit(Arc::clone(&replica) as Arc<dyn ClonedConcurrencyControl>);
        self.members.lock().insert(
            id,
            Member {
                replica,
                subscription: subscription.id,
                state,
                driver: Some(driver),
            },
        );
        // The routing id only exists once the router admits the member, so
        // the join's earlier transitions are traced here, in order; their
        // wall time is the join duration histogram's business.
        self.trace_transition(
            id,
            ReplicaLifecycle::Bootstrapping,
            ReplicaLifecycle::CatchingUp,
        );
        self.trace_transition(id, ReplicaLifecycle::CatchingUp, ReplicaLifecycle::Serving);
        self.config
            .obs
            .metrics
            .histogram("fleet_join_to_serving_ns")
            .record_duration(started.elapsed());
        self.publish_serving_gauge();
        Ok(JoinReport {
            replica: id,
            checkpoint_cut: cut,
            stream_start,
            replayed_records,
            join_to_serving: started.elapsed(),
        })
    }

    /// Retires a member online: flips it to `Draining` (the router stops
    /// routing new reads to it), waits for its pinned reads to drain,
    /// detaches it from the router and the stream, joins its driver (which
    /// drains the closing channel and finishes the replica), and marks it
    /// `Retired`. On a drain timeout the member is left `Draining` — still
    /// finishing its pinned reads, receiving no new ones — and the call
    /// can be retried.
    pub fn retire(&self, id: usize) -> Result<RetireReport> {
        let started = Instant::now();
        {
            let mut members = self.members.lock();
            let member = members.get_mut(&id).ok_or_else(|| {
                Error::Lifecycle(format!("replica {id} is not a controller-managed member"))
            })?;
            member.state = member.state.advance(ReplicaLifecycle::Draining)?;
        }
        self.trace_transition(id, ReplicaLifecycle::Serving, ReplicaLifecycle::Draining);
        self.publish_serving_gauge();
        self.router.retire(id)?;
        // Poll outside the members lock: pinned reads completing must not
        // contend with concurrent joins.
        let drained = poll_until(self.drain_timeout, || {
            self.router.in_flight_of(id) == Some(0)
        });
        if !drained {
            return Err(Error::Lifecycle(format!(
                "replica {id} still has reads in flight after {:?}; retry the retire",
                self.drain_timeout
            )));
        }
        self.router.detach(id)?;
        let (subscription, driver) = {
            let mut members = self.members.lock();
            let member = members.get_mut(&id).expect("member checked above");
            (member.subscription, member.driver.take())
        };
        self.shipper.unsubscribe(subscription);
        // The unsubscribe dropped the member's sender: the driver drains
        // whatever was already queued, then finishes the replica. Joined
        // outside the lock — it can take as long as the backlog is deep.
        if let Some(driver) = driver {
            let _ = driver.join();
        }
        let mut members = self.members.lock();
        let member = members.get_mut(&id).expect("member checked above");
        member.state = member.state.advance(ReplicaLifecycle::Retired)?;
        let retired_exposed = member.replica.exposed_seq();
        drop(members);
        self.trace_transition(id, ReplicaLifecycle::Draining, ReplicaLifecycle::Retired);
        self.config
            .obs
            .metrics
            .histogram("fleet_retire_drain_ns")
            .record_duration(started.elapsed());
        Ok(RetireReport {
            replica: id,
            drain: started.elapsed(),
            retired_exposed,
        })
    }

    /// Kills a member: immediate detach from router and stream from any
    /// live state, no drain (pinned reads still finish safely — their
    /// leases keep the replica alive — but the fleet stops counting them).
    /// Returns the replica for post-mortem inspection.
    pub fn kill(&self, id: usize) -> Result<Arc<C5Replica>> {
        {
            let mut members = self.members.lock();
            let member = members.get_mut(&id).ok_or_else(|| {
                Error::Lifecycle(format!("replica {id} is not a controller-managed member"))
            })?;
            let from = member.state;
            member.state = member.state.advance(ReplicaLifecycle::Retired)?;
            drop(members);
            self.trace_transition(id, from, ReplicaLifecycle::Retired);
            self.publish_serving_gauge();
        }
        let _ = self.router.detach(id)?;
        let (subscription, driver, replica) = {
            let mut members = self.members.lock();
            let member = members.get_mut(&id).expect("member checked above");
            (
                member.subscription,
                member.driver.take(),
                Arc::clone(&member.replica),
            )
        };
        self.shipper.unsubscribe(subscription);
        if let Some(driver) = driver {
            let _ = driver.join();
        }
        Ok(replica)
    }

    /// Joins every remaining member's driver thread. Call after the log is
    /// closed (the channels end, the drivers finish their replicas): the
    /// end-of-run drain.
    pub fn finish(&self) {
        let drivers: Vec<JoinHandle<Duration>> = {
            let mut members = self.members.lock();
            members
                .values_mut()
                .filter_map(|m| m.driver.take())
                .collect()
        };
        for driver in drivers {
            let _ = driver.join();
        }
    }

    /// The member's replica handle, if it is controller-managed.
    pub fn replica(&self, id: usize) -> Option<Arc<C5Replica>> {
        self.members.lock().get(&id).map(|m| Arc::clone(&m.replica))
    }

    /// The member's lifecycle state, if it is controller-managed.
    pub fn lifecycle(&self, id: usize) -> Option<ReplicaLifecycle> {
        self.members.lock().get(&id).map(|m| m.state)
    }

    /// Every managed member and its state, sorted by routing id.
    pub fn members(&self) -> Vec<(usize, ReplicaLifecycle)> {
        let mut out: Vec<(usize, ReplicaLifecycle)> = self
            .members
            .lock()
            .iter()
            .map(|(&id, m)| (id, m.state))
            .collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// How many members are currently `Serving`.
    pub fn serving_count(&self) -> usize {
        self.members
            .lock()
            .values()
            .filter(|m| m.state == ReplicaLifecycle::Serving)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, RowWrite, Timestamp, TxnId, Value};
    use c5_log::{explode_txn, Segment, TxnEntry};

    #[test]
    fn lifecycle_edges() {
        use ReplicaLifecycle::*;
        let joined = Bootstrapping
            .advance(CatchingUp)
            .and_then(|s| s.advance(Serving))
            .and_then(|s| s.advance(Draining))
            .and_then(|s| s.advance(Retired))
            .unwrap();
        assert_eq!(joined, Retired);
        // The kill edge: any live state goes straight to Retired.
        for live in [Bootstrapping, CatchingUp, Serving, Draining] {
            assert_eq!(live.advance(Retired).unwrap(), Retired);
        }
        // No skipping forward, no going back, no leaving Retired.
        assert!(Bootstrapping.advance(Serving).is_err());
        assert!(Serving.advance(CatchingUp).is_err());
        assert!(Retired.advance(Serving).is_err());
        assert!(matches!(Retired.advance(Retired), Err(Error::Lifecycle(_))));
    }

    /// A minimal routing sink: a map of members, zero in-flight reads.
    #[derive(Default)]
    struct StubSink {
        state: Mutex<StubState>,
    }

    #[derive(Default)]
    struct StubState {
        next: usize,
        members: HashMap<usize, Arc<dyn ClonedConcurrencyControl>>,
    }

    impl FleetRoutingSink for StubSink {
        fn admit(&self, replica: Arc<dyn ClonedConcurrencyControl>) -> usize {
            let mut state = self.state.lock();
            let id = state.next;
            state.next += 1;
            state.members.insert(id, replica);
            id
        }

        fn retire(&self, replica: usize) -> Result<()> {
            if self.state.lock().members.contains_key(&replica) {
                Ok(())
            } else {
                Err(Error::Lifecycle(format!("no member {replica}")))
            }
        }

        fn detach(&self, replica: usize) -> Result<Arc<dyn ClonedConcurrencyControl>> {
            self.state
                .lock()
                .members
                .remove(&replica)
                .ok_or_else(|| Error::Lifecycle(format!("no member {replica}")))
        }

        fn in_flight_of(&self, replica: usize) -> Option<u64> {
            self.state
                .lock()
                .members
                .contains_key(&replica)
                .then_some(0)
        }
    }

    fn segment_at(id: u64, start: SeqNo) -> (Segment, SeqNo) {
        let entry = TxnEntry::new(
            TxnId(id),
            Timestamp(id),
            vec![RowWrite::insert(
                RowRef::new(0, id),
                Value::from_u64(id * 100),
            )],
        );
        let (records, next) = explode_txn(&entry, start);
        (Segment::new(id, records), next)
    }

    fn controller_over(shipper: &LogShipper, archive: &Arc<LogArchive>) -> FleetController {
        FleetController::new(
            shipper.clone(),
            Arc::clone(archive),
            Arc::new(StubSink::default()),
            C5Mode::Faithful,
            ReplicaConfig::default()
                .with_workers(2)
                .with_snapshot_interval(Duration::from_micros(200)),
        )
        .with_catch_up_timeout(Duration::from_secs(10))
        .with_drain_timeout(Duration::from_secs(10))
    }

    #[test]
    fn seeded_join_replays_the_archive_then_rides_the_stream() {
        let archive = Arc::new(LogArchive::new());
        let (shipper, _) = LogShipper::fan_out(0, 16);
        let shipper = shipper.with_archive(Arc::clone(&archive));
        let controller = controller_over(&shipper, &archive);

        // History shipped before anyone joined: archive-only.
        let (seg1, next) = segment_at(1, SeqNo::ZERO);
        shipper.ship(seg1);

        let report = controller
            .join_seeded(Arc::new(MvStore::default()))
            .unwrap();
        assert_eq!(report.checkpoint_cut, SeqNo::ZERO);
        assert_eq!(report.stream_start, SeqNo(1));
        assert_eq!(report.replayed_records, 1);
        assert_eq!(
            controller.lifecycle(report.replica),
            Some(ReplicaLifecycle::Serving)
        );

        // Live traffic after the join arrives on the stream.
        let (seg2, _) = segment_at(2, next);
        shipper.ship(seg2);
        let member = controller.replica(report.replica).unwrap();
        assert!(member.wait_until_exposed(SeqNo(2), Duration::from_secs(10)));

        shipper.close();
        controller.finish();
        assert_eq!(member.exposed_seq(), SeqNo(2));
    }

    #[test]
    fn online_join_from_a_serving_member_and_online_retire() {
        let archive = Arc::new(LogArchive::new());
        let (shipper, _) = LogShipper::fan_out(0, 16);
        let shipper = shipper.with_archive(Arc::clone(&archive));
        let controller = controller_over(&shipper, &archive);

        // A join with nobody serving is a typed error.
        assert!(matches!(controller.join(), Err(Error::Lifecycle(_))));

        let seed = controller
            .join_seeded(Arc::new(MvStore::default()))
            .unwrap();
        let mut next = SeqNo::ZERO;
        for id in 1..=4 {
            let (seg, n) = segment_at(id, next);
            next = n;
            shipper.ship(seg);
        }
        let seed_replica = controller.replica(seed.replica).unwrap();
        assert!(seed_replica.wait_until_exposed(SeqNo(4), Duration::from_secs(10)));

        // Online join: checkpoint from the seed, gap from the archive,
        // tail from the stream.
        let joined = controller.join().unwrap();
        assert!(joined.checkpoint_cut <= joined.stream_start);
        assert_eq!(controller.serving_count(), 2);
        let joiner = controller.replica(joined.replica).unwrap();
        assert!(joiner.exposed_seq() >= joined.checkpoint_cut.max(joined.stream_start));

        // Traffic under the new shape reaches both members.
        let (seg5, _) = segment_at(5, next);
        shipper.ship(seg5);
        assert!(joiner.wait_until_exposed(SeqNo(5), Duration::from_secs(10)));
        assert!(seed_replica.wait_until_exposed(SeqNo(5), Duration::from_secs(10)));

        // Retire the seed: drained (stub has no reads), detached, Retired.
        let retired = controller.retire(seed.replica).unwrap();
        assert_eq!(retired.replica, seed.replica);
        assert_eq!(retired.retired_exposed, SeqNo(5));
        assert_eq!(
            controller.lifecycle(seed.replica),
            Some(ReplicaLifecycle::Retired)
        );
        assert_eq!(controller.serving_count(), 1);
        // Retiring twice is a lifecycle error, not a hang.
        assert!(matches!(
            controller.retire(seed.replica),
            Err(Error::Lifecycle(_))
        ));

        // The survivor still rides the stream; both stores converge over
        // the full history.
        shipper.close();
        controller.finish();
        assert_eq!(joiner.exposed_seq(), SeqNo(5));
        let survivor_rows = joiner.read_view().scan_all();
        let retired_rows = seed_replica.read_view().scan_all();
        assert_eq!(survivor_rows.len(), 5);
        assert_eq!(retired_rows.len(), 5);

        // A kill on an unknown id is a typed error.
        assert!(matches!(controller.kill(99), Err(Error::Lifecycle(_))));
    }
}
