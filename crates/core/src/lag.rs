//! Replication-lag measurement.
//!
//! Section 2.4 defines a transaction's replication lag as the difference
//! between the time its changes are included in the state returned by the
//! primary (`f_p`) and by the backup (`f_b`). On the primary, `f_p` is the
//! commit time, which travels to the backup in every log record
//! (`commit_wall_nanos`). On the backup, a transaction is included in the
//! returned state once the snapshotter's exposed cut `c` reaches the
//! transaction's last write (for C5) or once its last write is applied (for
//! baselines that expose the latest applied state directly).
//!
//! [`LagTracker`] collects one [`LagSample`] per committed transaction and
//! summarizes them as the paper's Figure 8 does: quartiles, minimum and
//! maximum, optionally bucketed into fixed observation windows.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use c5_common::SeqNo;

/// One transaction's replication-lag observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LagSample {
    /// Sequence number of the transaction's last write.
    pub boundary_seq: SeqNo,
    /// Primary commit time (nanoseconds since the Unix epoch).
    pub committed_at_nanos: u64,
    /// Time the backup first exposed the transaction (same clock).
    pub exposed_at_nanos: u64,
}

impl LagSample {
    /// The replication lag in nanoseconds (clamped at zero: clock
    /// granularity can make the two stamps appear reversed for sub-
    /// microsecond lags).
    pub fn lag_nanos(&self) -> u64 {
        self.exposed_at_nanos
            .saturating_sub(self.committed_at_nanos)
    }

    /// The replication lag in milliseconds.
    pub fn lag_millis(&self) -> f64 {
        self.lag_nanos() as f64 / 1e6
    }

    /// Whether the two clock stamps are reversed (the backup's exposure time
    /// is before the primary's commit time). [`lag_nanos`](Self::lag_nanos)
    /// clamps such samples to zero; [`LagTracker::clock_skew_samples`] counts
    /// them so skew is surfaced instead of silently masked.
    pub fn is_clock_skewed(&self) -> bool {
        self.exposed_at_nanos < self.committed_at_nanos
    }
}

/// Summary statistics over a set of lag samples (the box-and-whisker numbers
/// of Figure 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LagStats {
    /// Number of samples.
    pub count: usize,
    /// Minimum lag in milliseconds.
    pub min_ms: f64,
    /// First quartile in milliseconds.
    pub p25_ms: f64,
    /// Median in milliseconds.
    pub p50_ms: f64,
    /// Third quartile in milliseconds.
    pub p75_ms: f64,
    /// 99th percentile in milliseconds (the tail failover cares about:
    /// promotion drains at most roughly this much backlog).
    pub p99_ms: f64,
    /// Maximum lag in milliseconds.
    pub max_ms: f64,
    /// Mean lag in milliseconds.
    pub mean_ms: f64,
}

impl LagStats {
    /// Computes statistics from raw millisecond values.
    ///
    /// Percentiles use the checked nearest-rank rule: the p-th percentile is
    /// the smallest value with at least `⌈p·N⌉` samples at or below it.
    /// Rounding `(N-1)·p` instead misreports small windows (the p25 of four
    /// samples lands on the second value rather than the first).
    pub fn from_millis(mut values: Vec<f64>) -> Option<LagStats> {
        if values.is_empty() {
            return None;
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("lag values are finite"));
        let count = values.len();
        let pct = |p: f64| -> f64 {
            let rank = ((count as f64) * p).ceil().max(1.0) as usize;
            values[rank.min(count) - 1]
        };
        let mean = values.iter().sum::<f64>() / count as f64;
        Some(LagStats {
            count,
            min_ms: values[0],
            p25_ms: pct(0.25),
            p50_ms: pct(0.50),
            p75_ms: pct(0.75),
            p99_ms: pct(0.99),
            max_ms: values[count - 1],
            mean_ms: mean,
        })
    }
}

/// Collects lag samples for a replica run.
#[derive(Debug, Default)]
pub struct LagTracker {
    samples: Mutex<Vec<LagSample>>,
    /// Samples whose clock stamps were reversed (exposure before commit).
    /// Their lag is clamped to zero rather than discarded, but the count is
    /// surfaced so non-monotonic clocks are visible instead of masked.
    clock_skew: AtomicU64,
    /// Largest primary commit wall time (nanos) over all recorded samples —
    /// the commit time of the newest transaction the replica has exposed.
    /// Lock-free so freshness probes stay off the sample lock.
    covered_commit: AtomicU64,
}

impl LagTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the transaction whose last write is `boundary_seq`,
    /// committed on the primary at `committed_at_nanos`, became visible on
    /// the backup at `exposed_at_nanos`.
    pub fn record(&self, boundary_seq: SeqNo, committed_at_nanos: u64, exposed_at_nanos: u64) {
        let sample = LagSample {
            boundary_seq,
            committed_at_nanos,
            exposed_at_nanos,
        };
        if sample.is_clock_skewed() {
            self.clock_skew.fetch_add(1, Ordering::Relaxed);
        }
        self.covered_commit
            .fetch_max(committed_at_nanos, Ordering::Relaxed);
        self.samples.lock().push(sample);
    }

    /// Primary commit wall time (nanoseconds since the Unix epoch) of the
    /// newest transaction any recorded sample covers, or `None` before the
    /// first sample. A router estimates a replica's staleness as
    /// `now - latest_covered_commit_nanos()`: everything the primary
    /// committed up to that instant is already visible on the replica.
    pub fn latest_covered_commit_nanos(&self) -> Option<u64> {
        match self.covered_commit.load(Ordering::Relaxed) {
            0 => None,
            nanos => Some(nanos),
        }
    }

    /// Number of samples recorded with reversed clock stamps (their lag reads
    /// as zero; a large count means the two clocks disagree by more than the
    /// real lag).
    pub fn clock_skew_samples(&self) -> u64 {
        self.clock_skew.load(Ordering::Relaxed)
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.lock().is_empty()
    }

    /// A copy of every sample.
    pub fn samples(&self) -> Vec<LagSample> {
        self.samples.lock().clone()
    }

    /// Summary statistics over every sample.
    pub fn stats(&self) -> Option<LagStats> {
        LagStats::from_millis(
            self.samples
                .lock()
                .iter()
                .map(LagSample::lag_millis)
                .collect(),
        )
    }

    /// Summary statistics over the samples whose *exposure* time falls within
    /// `[window_start_nanos, window_end_nanos)` — the per-window breakdown of
    /// Figure 8 ("0–30 s", "30–60 s", "60–90 s").
    pub fn stats_in_window(
        &self,
        window_start_nanos: u64,
        window_end_nanos: u64,
    ) -> Option<LagStats> {
        LagStats::from_millis(
            self.samples
                .lock()
                .iter()
                .filter(|s| {
                    s.exposed_at_nanos >= window_start_nanos
                        && s.exposed_at_nanos < window_end_nanos
                })
                .map(LagSample::lag_millis)
                .collect(),
        )
    }

    /// Maximum lag over all samples, in milliseconds.
    pub fn max_lag_ms(&self) -> f64 {
        self.samples
            .lock()
            .iter()
            .map(LagSample::lag_millis)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_lag_is_clamped_and_converted() {
        let s = LagSample {
            boundary_seq: SeqNo(1),
            committed_at_nanos: 1_000_000,
            exposed_at_nanos: 3_000_000,
        };
        assert_eq!(s.lag_nanos(), 2_000_000);
        assert!((s.lag_millis() - 2.0).abs() < 1e-9);

        let reversed = LagSample {
            boundary_seq: SeqNo(2),
            committed_at_nanos: 5,
            exposed_at_nanos: 3,
        };
        assert_eq!(reversed.lag_nanos(), 0);
        assert!(reversed.is_clock_skewed());
        assert!(!s.is_clock_skewed());
    }

    #[test]
    fn stats_compute_quartiles() {
        let stats = LagStats::from_millis(vec![1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(stats.count, 5);
        assert_eq!(stats.min_ms, 1.0);
        assert_eq!(stats.p50_ms, 3.0);
        assert_eq!(stats.p99_ms, 5.0);
        assert_eq!(stats.max_ms, 5.0);
        assert!((stats.mean_ms - 3.0).abs() < 1e-9);
        assert!(LagStats::from_millis(vec![]).is_none());
    }

    #[test]
    fn percentiles_use_the_checked_nearest_rank_rule() {
        // p25 of four samples is the smallest value with at least ⌈0.25·4⌉ = 1
        // sample at or below it — the minimum. The old rounding rule
        // (`round((N-1)·p)`) returned the second value.
        let four = LagStats::from_millis(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(four.p25_ms, 1.0);
        assert_eq!(four.p50_ms, 2.0);
        assert_eq!(four.p75_ms, 3.0);
        assert_eq!(four.p99_ms, 4.0);

        // A single sample is every percentile.
        let one = LagStats::from_millis(vec![7.0]).unwrap();
        assert_eq!(one.p25_ms, 7.0);
        assert_eq!(one.p50_ms, 7.0);
        assert_eq!(one.p99_ms, 7.0);

        // On a large window p99 sits at rank ⌈0.99·200⌉ = 198.
        let values: Vec<f64> = (1..=200).map(|v| v as f64).collect();
        let big = LagStats::from_millis(values).unwrap();
        assert_eq!(big.p99_ms, 198.0);
        assert_eq!(big.p50_ms, 100.0);
    }

    #[test]
    fn clock_skew_samples_are_counted_not_masked() {
        let t = LagTracker::new();
        t.record(SeqNo(1), 100, 200); // normal
        t.record(SeqNo(2), 300, 250); // reversed stamps
        t.record(SeqNo(3), 400, 400); // equal stamps: zero lag, not skew
        assert_eq!(t.clock_skew_samples(), 1);
        assert_eq!(t.len(), 3);
        // The skewed sample still contributes a (clamped) zero-lag sample.
        assert_eq!(t.stats().unwrap().min_ms, 0.0);
    }

    #[test]
    fn latest_covered_commit_tracks_the_newest_commit_seen() {
        let t = LagTracker::new();
        assert_eq!(t.latest_covered_commit_nanos(), None);
        t.record(SeqNo(1), 100, 200);
        t.record(SeqNo(3), 400, 500);
        // Out-of-order recording must not regress the watermark.
        t.record(SeqNo(2), 300, 350);
        assert_eq!(t.latest_covered_commit_nanos(), Some(400));
    }

    #[test]
    fn tracker_windows_partition_samples() {
        let t = LagTracker::new();
        t.record(SeqNo(1), 0, 10);
        t.record(SeqNo(2), 5, 25);
        t.record(SeqNo(3), 20, 40);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());

        let w1 = t.stats_in_window(0, 30).unwrap();
        assert_eq!(w1.count, 2);
        let w2 = t.stats_in_window(30, 60).unwrap();
        assert_eq!(w2.count, 1);
        assert!(t.stats_in_window(100, 200).is_none());
        assert!(t.stats().unwrap().count == 3);
        assert!(t.max_lag_ms() >= t.stats().unwrap().p50_ms);
    }
}
