//! C5: row-granularity cloned concurrency control.
//!
//! This crate is the paper's primary contribution (Section 4). A backup
//! running C5 consists of three cooperating components:
//!
//! * a **scheduler** ([`scheduler`]) that reads the primary's log in order,
//!   assigns each write its position, and computes, for every write, the
//!   position of the previous write to the same row (the per-row FIFO
//!   constraint that keeps the backup's state convergent with the primary's);
//! * a set of **workers** ([`replica::C5Replica`]) that apply individual row
//!   writes in parallel, constrained only by the per-row order — never by
//!   transaction boundaries — so the backup always has at least as much
//!   execution parallelism available as the primary's concurrency control
//!   used (Theorem 2, Section 4.1.1);
//! * a **snapshotter** ([`snapshotter`]) that exposes a progressing,
//!   prefix-complete, transaction-aligned view of the database to read-only
//!   transactions, so monotonic prefix consistency holds without ever
//!   blocking the workers (Section 4.2).
//!
//! Two execution modes reproduce the paper's two implementations:
//! [`replica::C5Mode::Faithful`] is C5-Cicada (Section 7) and
//! [`replica::C5Mode::OneWorkerPerTxn`] adds the backward-compatibility
//! constraints of C5-MyRocks (Section 5: a transaction's writes all execute
//! on one worker, picked up in commit order; snapshots are whole-database
//! cuts taken at a tunable interval while workers briefly hold back writes
//! past the cut).
//!
//! The crate also hosts everything the baseline protocols share with C5 so
//! that every replica in the workspace is measured identically: the
//! [`replica::ClonedConcurrencyControl`] trait, the shared replication
//! [`pipeline`] runtime every protocol (C5 and baseline alike) runs on, the
//! applied/exposed progress tracker ([`progress`]), replication-lag metrics
//! ([`lag`]), and the monotonic-prefix-consistency checker ([`mpc`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod design_queues;
pub mod fleet;
pub mod lag;
pub mod mpc;
pub mod pipeline;
pub mod progress;
pub mod recovery;
pub mod replica;
pub mod scheduler;
pub mod shard;
pub mod snapshotter;

pub use fleet::{FleetController, FleetRoutingSink, JoinReport, ReplicaLifecycle, RetireReport};
pub use lag::{LagSample, LagStats, LagTracker};
pub use mpc::MpcChecker;
pub use pipeline::{
    BlockingInstall, GcDriver, PipelineOptions, PipelinePolicy, PipelineRuntime, PipelineSignals,
    QueuePlan, RowWaitList, WorkSink,
};
pub use progress::WatermarkTracker;
pub use recovery::{checkpoint_dir, log_dir, recover_replica, RecoveredReplica, RecoveryError};
pub use replica::{
    drive_from_receiver, drive_segments, C5Mode, C5Replica, ClonedConcurrencyControl, Promotion,
    ReadView, ReplicaMetrics,
};
pub use scheduler::{preprocess_segment, SchedulerState, SchedulerStats};
pub use shard::{CutCoordinator, ShardProgress, ShardedC5Replica};
