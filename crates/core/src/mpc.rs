//! Monotonic-prefix-consistency checking.
//!
//! Section 2.3 defines MPC as two guarantees: (1) every state the backup
//! exposes to read-only transactions reflects the changes of a contiguous
//! prefix of the primary's transaction log, and (2) the sequence of exposed
//! states reflects prefixes of monotonically increasing length.
//!
//! [`MpcChecker`] verifies both against the ground truth: it is constructed
//! from the initial database population and the full log, replays the log
//! serially into a [`ReferenceStore`] (the oracle), and checks every observed
//! [`ReadView`] against the prefix it claims to expose. It also rejects
//! prefixes that end in the middle of a transaction (which would break
//! transactional atomicity — the "comment without the counter increment"
//! anomaly of the motivating example) and cuts that move backwards.

use std::collections::BTreeMap;

use c5_common::{Error, Result, RowRef, SeqNo, Value};
use c5_log::{LogRecord, Segment};
use c5_storage::ReferenceStore;

use crate::replica::ReadView;

/// Checks exposed states against the log.
#[derive(Debug)]
pub struct MpcChecker {
    /// The full log, in order.
    records: Vec<LogRecord>,
    /// Sequence numbers that end a transaction (valid exposure points).
    boundaries: std::collections::HashSet<u64>,
    /// Oracle state replayed up to `replayed_through`.
    reference: ReferenceStore,
    replayed_through: usize,
    /// The largest cut observed so far (for the monotonicity check).
    last_observed: Option<SeqNo>,
    /// Number of views checked.
    checked: usize,
}

impl MpcChecker {
    /// Creates a checker from the initial population (the state both the
    /// primary and the backup start from) and the full replication log.
    pub fn new(initial: &[(RowRef, Value)], segments: &[Segment]) -> Self {
        let mut reference = ReferenceStore::new();
        for (row, value) in initial {
            reference.apply(&c5_common::RowWrite::insert(*row, value.clone()));
        }
        let records: Vec<LogRecord> = segments
            .iter()
            .flat_map(|s| s.records.iter().cloned())
            .collect();
        let boundaries = records
            .iter()
            .filter(|r| r.is_txn_last())
            .map(|r| r.seq.as_u64())
            .collect();
        Self {
            records,
            boundaries,
            reference,
            replayed_through: 0,
            last_observed: None,
            checked: 0,
        }
    }

    /// Number of views verified so far.
    pub fn checked(&self) -> usize {
        self.checked
    }

    /// The last write position in the log (what a fully caught-up replica
    /// should expose).
    pub fn final_seq(&self) -> SeqNo {
        self.records.last().map(|r| r.seq).unwrap_or(SeqNo::ZERO)
    }

    /// Verifies one exposed view. Views must be presented in the order they
    /// were observed (the checker enforces the monotonicity guarantee across
    /// calls). The view's full contents are compared against the serial
    /// replay of the prefix it claims.
    pub fn verify_view(&mut self, view: &dyn ReadView) -> Result<()> {
        let cut = view.as_of();
        self.verify_state(cut, view.scan_all())
    }

    /// Verifies an exposed state given directly as a set of rows.
    pub fn verify_state(&mut self, cut: SeqNo, state: Vec<(RowRef, Value)>) -> Result<()> {
        self.checked += 1;
        // Guarantee 2: monotonically increasing prefixes.
        if let Some(last) = self.last_observed {
            if cut < last {
                return Err(Error::ConsistencyViolation(format!(
                    "exposed cut moved backwards: {last} then {cut}"
                )));
            }
        }
        self.last_observed = Some(cut);

        // Guarantee 1a: the prefix must end at a transaction boundary.
        if cut != SeqNo::ZERO && !self.boundaries.contains(&cut.as_u64()) {
            return Err(Error::ConsistencyViolation(format!(
                "exposed cut {cut} is not a transaction boundary"
            )));
        }
        if cut > self.final_seq() {
            return Err(Error::ConsistencyViolation(format!(
                "exposed cut {cut} is beyond the end of the log {}",
                self.final_seq()
            )));
        }

        // Guarantee 1b: the exposed state must equal the serial replay of the
        // prefix.
        self.replay_through(cut);
        let expected: BTreeMap<RowRef, Value> = self.reference.snapshot();
        let observed: BTreeMap<RowRef, Value> = state.into_iter().collect();
        if expected != observed {
            let missing = expected
                .iter()
                .find(|(row, value)| observed.get(row) != Some(value));
            let extra = observed
                .iter()
                .find(|(row, value)| expected.get(row) != Some(value));
            return Err(Error::ConsistencyViolation(format!(
                "state at cut {cut} diverges from the serial replay \
                 (expected {} rows, observed {}; first mismatch: expected {:?}, observed {:?})",
                expected.len(),
                observed.len(),
                missing,
                extra,
            )));
        }
        Ok(())
    }

    fn replay_through(&mut self, cut: SeqNo) {
        while self.replayed_through < self.records.len() {
            let record = &self.records[self.replayed_through];
            if record.seq > cut {
                break;
            }
            self.reference.apply(&record.write);
            self.replayed_through += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ReadView;
    use c5_common::{RowWrite, TableId, Timestamp, TxnId};
    use c5_log::{segments_from_entries, TxnEntry};

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    /// A fake view backed by an explicit row map.
    struct FakeView {
        as_of: SeqNo,
        rows: Vec<(RowRef, Value)>,
    }

    impl ReadView for FakeView {
        fn get(&self, row: RowRef) -> Option<Value> {
            self.rows
                .iter()
                .find(|(r, _)| *r == row)
                .map(|(_, v)| v.clone())
        }
        fn as_of(&self) -> SeqNo {
            self.as_of
        }
        fn scan_table(&self, table: TableId) -> Vec<(RowRef, Value)> {
            self.rows
                .iter()
                .filter(|(r, _)| r.table == table)
                .cloned()
                .collect()
        }
        fn scan_all(&self) -> Vec<(RowRef, Value)> {
            self.rows.clone()
        }
    }

    /// Log: txn1 writes rows 1,2 ; txn2 updates row 1 ; txn3 deletes row 2.
    fn log() -> Vec<Segment> {
        let entries = vec![
            TxnEntry::new(
                TxnId(1),
                Timestamp(1),
                vec![
                    RowWrite::insert(row(1), Value::from_u64(10)),
                    RowWrite::insert(row(2), Value::from_u64(20)),
                ],
            ),
            TxnEntry::new(
                TxnId(2),
                Timestamp(2),
                vec![RowWrite::update(row(1), Value::from_u64(11))],
            ),
            TxnEntry::new(TxnId(3), Timestamp(3), vec![RowWrite::delete(row(2))]),
        ];
        segments_from_entries(&entries, 2)
    }

    #[test]
    fn correct_prefixes_pass() {
        let mut checker = MpcChecker::new(&[], &log());
        assert_eq!(checker.final_seq(), SeqNo(4));

        // Empty prefix.
        checker
            .verify_view(&FakeView {
                as_of: SeqNo::ZERO,
                rows: vec![],
            })
            .unwrap();
        // After txn1.
        checker
            .verify_view(&FakeView {
                as_of: SeqNo(2),
                rows: vec![(row(1), Value::from_u64(10)), (row(2), Value::from_u64(20))],
            })
            .unwrap();
        // After txn3 (row 2 deleted, row 1 updated).
        checker
            .verify_view(&FakeView {
                as_of: SeqNo(4),
                rows: vec![(row(1), Value::from_u64(11))],
            })
            .unwrap();
        assert_eq!(checker.checked(), 3);
    }

    #[test]
    fn torn_transaction_is_rejected() {
        let mut checker = MpcChecker::new(&[], &log());
        // Cut 1 splits txn1 (its writes are seqs 1 and 2).
        let err = checker
            .verify_view(&FakeView {
                as_of: SeqNo(1),
                rows: vec![(row(1), Value::from_u64(10))],
            })
            .unwrap_err();
        assert!(matches!(err, Error::ConsistencyViolation(_)));
    }

    #[test]
    fn wrong_contents_are_rejected() {
        let mut checker = MpcChecker::new(&[], &log());
        let err = checker
            .verify_view(&FakeView {
                as_of: SeqNo(2),
                // Row 2 is missing even though txn1 inserted it.
                rows: vec![(row(1), Value::from_u64(10))],
            })
            .unwrap_err();
        assert!(matches!(err, Error::ConsistencyViolation(_)));
    }

    #[test]
    fn backwards_cut_is_rejected() {
        let mut checker = MpcChecker::new(&[], &log());
        checker
            .verify_view(&FakeView {
                as_of: SeqNo(2),
                rows: vec![(row(1), Value::from_u64(10)), (row(2), Value::from_u64(20))],
            })
            .unwrap();
        let err = checker
            .verify_view(&FakeView {
                as_of: SeqNo::ZERO,
                rows: vec![],
            })
            .unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }

    #[test]
    fn cut_beyond_log_is_rejected() {
        let mut checker = MpcChecker::new(&[], &log());
        let err = checker
            .verify_view(&FakeView {
                as_of: SeqNo(99),
                rows: vec![],
            })
            .unwrap_err();
        assert!(matches!(err, Error::ConsistencyViolation(_)));
    }

    #[test]
    fn initial_population_is_part_of_every_prefix() {
        let initial = vec![(row(50), Value::from_u64(5))];
        let mut checker = MpcChecker::new(&initial, &log());
        checker
            .verify_view(&FakeView {
                as_of: SeqNo::ZERO,
                rows: vec![(row(50), Value::from_u64(5))],
            })
            .unwrap();
        // Forgetting the preloaded row is a violation.
        let mut checker2 = MpcChecker::new(&initial, &log());
        assert!(checker2
            .verify_view(&FakeView {
                as_of: SeqNo::ZERO,
                rows: vec![]
            })
            .is_err());
    }
}
