//! The shared replication-pipeline runtime.
//!
//! Every backup protocol in this workspace — C5 in both modes and every
//! baseline in `c5-baselines` — is the same machine with a different ordering
//! policy: segments arrive from the log shipper (**ingest**), a single
//! scheduler thread turns them into work items and routes them to queues
//! (**schedule**), worker threads execute the items under the protocol's
//! ordering constraints (**apply**), and a periodic thread advances the
//! transaction-aligned cut that read-only transactions may observe
//! (**expose**). This module owns that machine once — the threads, the
//! channels, the shutdown/drain protocol, the garbage-collection horizon —
//! so each protocol only supplies a [`PipelinePolicy`]: what a work item is,
//! how segments become items, and what "apply one item" means.
//!
//! ## Batched hand-off
//!
//! The scheduler→worker and worker→watermark edges are the backup's hottest
//! path: every log record crosses both. Two disciplines keep their per-record
//! cost amortized, and policies are expected to follow them:
//!
//! * **Dispatch in batches.** A work item should carry a *run* of records —
//!   a whole sub-segment, or a run of consecutive whole transactions
//!   (`ReplicaConfig::dispatch_batch_records`) — so the queue hand-off cost
//!   is paid once per batch, not once per record. Batches must respect the
//!   policy's ordering unit: a batch never splits a transaction, and the
//!   scheduler publishes any dispatch watermark *before* enqueueing the
//!   batch, so a cut chosen from that watermark can never land mid-item.
//! * **Publish watermarks per item, not per record.** Workers buffer the
//!   applied-marks of one work item and flush them in a single batched
//!   watermark update when the item completes. This is safe because workers
//!   never *wait* on a watermark — only the expose thread does, and it only
//!   waits for records of items that were dispatched before its target was
//!   chosen, all of which flush when those items finish. The publication
//!   *order* inside a flush still matters; see
//!   [`crate::progress::WatermarkTracker::mark_applied_batch`].
//!
//! Two pieces of shared policy infrastructure also live here:
//!
//! * [`RowWaitList`] — the event-driven realization of the per-row FIFO
//!   queues specified in [`crate::design_queues`]. A write whose per-row
//!   predecessor has not been installed parks on that predecessor's log
//!   position; the worker that installs the predecessor wakes it (and
//!   installs it, cascading down the row's chain). This replaces the
//!   busy-retry deferral loop the replica used to run: a deferred write costs
//!   one hash-map insert instead of unbounded re-checks, and it moves into
//!   the wait list instead of being cloned out of its segment.
//! * [`GcDriver`] — advances a version-garbage-collection horizon trailing
//!   the exposed cut, so long-running workloads do not grow version chains
//!   without bound (the expose stage drives it after every cut).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};

use c5_common::{SeqNo, Timestamp};
use c5_log::{LogRecord, Segment};
use c5_obs::{Counter, Histogram, Obs, PipelineStage, TraceEvent};
use c5_storage::MvStore;

use crate::lag::LagTracker;
use crate::replica::{ClonedConcurrencyControl, Promotion, ReadView, ReplicaMetrics};

/// Cross-stage signals shared by every thread of one pipeline instance.
#[derive(Debug, Default)]
pub struct PipelineSignals {
    shutdown: AtomicBool,
    draining: AtomicBool,
}

impl PipelineSignals {
    /// Whether the runtime has asked every stage to stop. Long waits inside
    /// [`PipelinePolicy::apply`] and [`PipelinePolicy::expose`] must poll
    /// this and bail out.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Whether the pipeline is draining: ingestion has ended and `finish` is
    /// waiting for the final prefix to be applied and exposed. The expose
    /// stage ticks at full speed while this is set.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    fn start_draining(&self) {
        self.draining.store(true, Ordering::Release);
    }
}

/// Where the schedule stage's work items are queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePlan {
    /// One queue shared by every worker; workers pick up items in dispatch
    /// order (C5's one-worker-per-transaction mode, KuaFu, single-threaded).
    Shared {
        /// Queue capacity (items).
        capacity: usize,
    },
    /// One queue per worker; the policy routes each item to a lane
    /// (C5-Cicada's round-robin segments, coarse-grain conflict groups).
    PerWorker {
        /// Per-queue capacity (items).
        capacity: usize,
    },
}

/// Construction-time options for a [`PipelineRuntime`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Number of apply-stage worker threads.
    pub workers: usize,
    /// Queue topology between the schedule and apply stages.
    pub queue: QueuePlan,
    /// Capacity (in segments) of the ingest channel; bounded so a hopelessly
    /// slow replica exerts backpressure on the shipper.
    pub ingest_capacity: usize,
    /// Interval between expose-stage cuts.
    pub expose_interval: Duration,
    /// Prefix for thread names (the protocol's report name works well).
    pub label: &'static str,
}

/// The schedule stage's outlet: routes work items into the apply stage's
/// queues. One sink lives for the lifetime of the scheduler thread, so
/// policies that route round-robin get a persistent cursor for free.
pub struct WorkSink<T> {
    lanes: Vec<Sender<T>>,
    next: usize,
    gone: bool,
}

impl<T> WorkSink<T> {
    fn new(lanes: Vec<Sender<T>>) -> Self {
        Self {
            lanes,
            next: 0,
            gone: false,
        }
    }

    /// Number of queues (1 under [`QueuePlan::Shared`], `workers` under
    /// [`QueuePlan::PerWorker`]).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Sends an item to the next lane round-robin (equivalently: to the
    /// shared queue). Blocks for backpressure when the lane is full.
    pub fn send(&mut self, item: T) {
        let lane = self.next % self.lanes.len();
        self.next = self.next.wrapping_add(1);
        self.send_to(lane, item);
    }

    /// Sends an item to a specific lane (taken modulo the lane count).
    /// Blocks for backpressure when the lane is full.
    pub fn send_to(&mut self, lane: usize, item: T) {
        if self.lanes[lane % self.lanes.len()].send(item).is_err() {
            self.gone = true;
        }
    }

    /// Whether a send failed because the workers exited (shutdown).
    pub fn workers_gone(&self) -> bool {
        self.gone
    }

    /// Total items currently queued across every lane (the schedule stage's
    /// output backlog).
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|lane| lane.len()).sum()
    }
}

/// Cached observability handles for one pipeline stage: each completed unit
/// of work costs one histogram record, one counter bump, and one typed
/// trace event — a handful of relaxed atomics plus an uncontended
/// per-thread ring push, never a registry lock. Instrumentation is per
/// *item* (segment, batch, cut), never per record, so the apply path's
/// per-record cost is unchanged to within noise.
struct StageObs {
    obs: Arc<Obs>,
    stage: PipelineStage,
    dwell: Arc<Histogram>,
    items: Arc<Counter>,
}

impl StageObs {
    fn new(obs: &Arc<Obs>, stage: PipelineStage) -> Self {
        let dwell = obs
            .metrics
            .histogram(&format!("stage_dwell_ns{{stage=\"{}\"}}", stage.name()));
        let items = obs
            .metrics
            .counter(&format!("stage_items_total{{stage=\"{}\"}}", stage.name()));
        Self {
            obs: Arc::clone(obs),
            stage,
            dwell,
            items,
        }
    }

    fn record(&self, dwell: Duration, queue_depth: usize) {
        let dwell_ns = u64::try_from(dwell.as_nanos()).unwrap_or(u64::MAX);
        self.dwell.record(dwell_ns);
        self.items.inc();
        self.obs.trace.record(TraceEvent::Stage {
            stage: self.stage,
            dwell_ns,
            queue_depth,
        });
    }
}

/// A backup protocol's ordering policy, run by a [`PipelineRuntime`].
///
/// The runtime calls [`schedule`](Self::schedule) on its single scheduler
/// thread in log order, [`apply`](Self::apply) on worker threads, and
/// [`expose`](Self::expose)/[`collect_garbage`](Self::collect_garbage) on
/// its expose thread. All other methods are progress probes the runtime (and
/// the shared [`ClonedConcurrencyControl`] implementation) read from any
/// thread.
pub trait PipelinePolicy: Send + Sync + 'static {
    /// The unit of work flowing from the schedule stage to the apply stage.
    type Item: Send + 'static;

    /// Short protocol name for reports (e.g. `"c5"`, `"kuafu"`).
    fn name(&self) -> &'static str;

    /// Turns one ingested segment into work items, in log order. The policy
    /// owns the segment: records should *move* into items, never be cloned.
    fn schedule(&self, segment: Segment, sink: &mut WorkSink<Self::Item>);

    /// Executes one work item under the protocol's ordering constraints.
    /// Long waits must poll `signals` and abandon the item on shutdown.
    fn apply(&self, worker: usize, item: Self::Item, signals: &PipelineSignals);

    /// Advances the exposed, transaction-aligned cut if progress allows.
    /// Waits inside (the whole-database cut) must poll `signals`.
    fn expose(&self, signals: &PipelineSignals);

    /// Reclaims storage the exposed cut has moved past (usually by driving a
    /// [`GcDriver`]). Called by the expose stage after every cut.
    fn collect_garbage(&self) {}

    /// Wakes any worker blocked inside [`apply`](Self::apply); called once
    /// when shutdown is signalled.
    fn interrupt(&self) {}

    /// Largest contiguous applied log position.
    fn applied_seq(&self) -> SeqNo;

    /// Largest position the expose stage is allowed to reach right now (the
    /// boundary watermark). `finish` waits until the exposed cut gets here.
    fn exposure_target(&self) -> SeqNo;

    /// Largest position exposed to read-only transactions.
    fn exposed_seq(&self) -> SeqNo;

    /// Last log position handed to [`schedule`](Self::schedule) so far (the
    /// end of the log once ingestion is done).
    fn shipped_seq(&self) -> SeqNo;

    /// A read view of the exposed state.
    fn read_view(&self) -> Box<dyn ReadView>;

    /// Replication-lag samples collected so far.
    fn lag(&self) -> Arc<LagTracker>;

    /// Progress counters.
    fn metrics(&self) -> ReplicaMetrics;

    /// The observability sink the runtime records per-stage dwell
    /// histograms and trace events into. Policies constructed from a
    /// `ReplicaConfig` should return the config's sink; the default is the
    /// process-wide [`Obs::global`].
    fn obs(&self) -> Arc<Obs> {
        Arc::clone(Obs::global())
    }

    /// The backup's store. Promotion
    /// ([`ClonedConcurrencyControl::promote`]) hands it to the new primary
    /// once the pipeline is sealed; checkpoints export from it.
    fn store(&self) -> &Arc<MvStore>;
}

/// The shared four-stage runtime: threads, queues, and the drain/shutdown
/// protocol, generic over a [`PipelinePolicy`].
///
/// Implements [`ClonedConcurrencyControl`] directly, so a protocol wrapper
/// only has to construct its policy, pick [`PipelineOptions`], and delegate
/// the trait (see [`delegate_replica_to_pipeline!`](crate::delegate_replica_to_pipeline)).
pub struct PipelineRuntime<P: PipelinePolicy> {
    policy: Arc<P>,
    signals: Arc<PipelineSignals>,
    // Segments travel with their enqueue instant so the scheduler can
    // attribute ingest dwell (time spent queued behind backpressure).
    ingest_tx: Mutex<Option<Sender<(Instant, Segment)>>>,
    ingest_done: Arc<AtomicBool>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    finished: AtomicBool,
}

impl<P: PipelinePolicy> PipelineRuntime<P> {
    /// Starts the pipeline: spawns the scheduler, `options.workers` workers,
    /// and the expose thread.
    pub fn start(policy: Arc<P>, options: PipelineOptions) -> Self {
        assert!(options.workers > 0, "pipeline requires at least one worker");
        let signals = Arc::new(PipelineSignals::default());
        let ingest_done = Arc::new(AtomicBool::new(false));
        let (ingest_tx, ingest_rx) = bounded::<(Instant, Segment)>(options.ingest_capacity);
        let mut threads = Vec::with_capacity(options.workers + 2);

        let obs = policy.obs();
        let apply_obs = Arc::new(StageObs::new(&obs, PipelineStage::Apply));

        // Apply stage.
        let mut lane_txs: Vec<Sender<P::Item>> = Vec::new();
        {
            let mut spawn_worker = |worker: usize, rx: Receiver<P::Item>| {
                let policy = Arc::clone(&policy);
                let signals = Arc::clone(&signals);
                let apply_obs = Arc::clone(&apply_obs);
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("{}-worker-{worker}", options.label))
                        .spawn(move || {
                            while let Ok(item) = rx.recv() {
                                let started = Instant::now();
                                policy.apply(worker, item, &signals);
                                apply_obs.record(started.elapsed(), rx.len());
                            }
                        })
                        .expect("spawn worker"),
                );
            };
            match options.queue {
                QueuePlan::Shared { capacity } => {
                    let (tx, rx) = bounded::<P::Item>(capacity);
                    lane_txs.push(tx);
                    for worker in 0..options.workers {
                        spawn_worker(worker, rx.clone());
                    }
                }
                QueuePlan::PerWorker { capacity } => {
                    for worker in 0..options.workers {
                        let (tx, rx) = bounded::<P::Item>(capacity);
                        lane_txs.push(tx);
                        spawn_worker(worker, rx);
                    }
                }
            }
        }

        // Schedule stage.
        {
            let policy = Arc::clone(&policy);
            let signals = Arc::clone(&signals);
            let ingest_done = Arc::clone(&ingest_done);
            let ingest_obs = StageObs::new(&obs, PipelineStage::Ingest);
            let schedule_obs = StageObs::new(&obs, PipelineStage::Schedule);
            let ingest_depth = obs.metrics.gauge("ingest_queue_depth");
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-scheduler", options.label))
                    .spawn(move || {
                        let mut sink = WorkSink::new(lane_txs);
                        while let Ok((enqueued, segment)) = ingest_rx.recv() {
                            let backlog = ingest_rx.len();
                            ingest_depth.set(backlog as i64);
                            ingest_obs.record(enqueued.elapsed(), backlog);
                            let started = Instant::now();
                            policy.schedule(segment, &mut sink);
                            schedule_obs.record(started.elapsed(), sink.queued());
                            if sink.workers_gone() || signals.shutdown_requested() {
                                break;
                            }
                        }
                        ingest_depth.set(0);
                        ingest_done.store(true, Ordering::Release);
                        // Dropping the sink closes the worker queues.
                    })
                    .expect("spawn scheduler"),
            );
        }

        // Expose stage.
        {
            let policy = Arc::clone(&policy);
            let signals = Arc::clone(&signals);
            let interval = options.expose_interval;
            let expose_obs = StageObs::new(&obs, PipelineStage::Expose);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-expose", options.label))
                    .spawn(move || expose_loop(policy, signals, interval, expose_obs))
                    .expect("spawn expose"),
            );
        }

        Self {
            policy,
            signals,
            ingest_tx: Mutex::new(Some(ingest_tx)),
            ingest_done,
            threads: Mutex::new(threads),
            finished: AtomicBool::new(false),
        }
    }

    /// The policy driving this pipeline.
    pub fn policy(&self) -> &Arc<P> {
        &self.policy
    }

    fn stop_threads(&self) {
        self.signals.request_shutdown();
        self.policy.interrupt();
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// The expose stage: tick frequently so shutdown is responsive, but only cut
/// at `interval` — except while draining, where every tick cuts so `finish`
/// converges quickly.
fn expose_loop<P: PipelinePolicy>(
    policy: Arc<P>,
    signals: Arc<PipelineSignals>,
    interval: Duration,
    expose_obs: StageObs,
) {
    let tick = interval.min(Duration::from_millis(1));
    let mut last_cut = Instant::now();
    loop {
        let shutting_down = signals.shutdown_requested();
        if last_cut.elapsed() >= interval || signals.draining() || shutting_down {
            // The expose stage's "queue" is the span of log positions whose
            // boundaries are applied but not yet visible to readers.
            let pending = policy
                .exposure_target()
                .as_u64()
                .saturating_sub(policy.exposed_seq().as_u64());
            let started = Instant::now();
            policy.expose(&signals);
            policy.collect_garbage();
            expose_obs.record(started.elapsed(), pending as usize);
            last_cut = Instant::now();
        }
        if shutting_down {
            // One final cut happened above; exit.
            return;
        }
        std::thread::sleep(if signals.draining() {
            Duration::from_micros(100)
        } else {
            tick
        });
    }
}

impl<P: PipelinePolicy> ClonedConcurrencyControl for PipelineRuntime<P> {
    fn name(&self) -> &'static str {
        self.policy.name()
    }

    fn apply_segment(&self, segment: Segment) {
        let guard = self.ingest_tx.lock();
        if let Some(tx) = guard.as_ref() {
            // A send error means the scheduler exited (shutdown); drop the
            // segment in that case.
            let _ = tx.send((Instant::now(), segment));
        }
    }

    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close the ingest channel so the scheduler (and then the workers)
        // drain and exit, then wait for every shipped write to be applied
        // and exposed.
        self.ingest_tx.lock().take();
        while !self.ingest_done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(200));
        }
        let target = self.policy.shipped_seq();
        while self.policy.applied_seq() < target {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.signals.start_draining();
        while self.policy.exposed_seq() < self.policy.exposure_target() {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.stop_threads();
    }

    fn promote(&self) -> Promotion {
        // Promotion *is* the drain-and-seal protocol `finish` already runs:
        // ingestion ends at whatever prefix has arrived, in-flight applies
        // drain to it, the cut advances to the last boundary in the prefix,
        // and the threads stop. What promotion adds is the measurement (the
        // drain time is the failover cost the paper's thesis bounds by
        // replication lag) and the handover of the sealed store.
        let start = Instant::now();
        self.finish();
        Promotion {
            protocol: self.policy.name(),
            cut: self.policy.exposed_seq(),
            drain: start.elapsed(),
            store: Arc::clone(self.policy.store()),
        }
    }

    fn applied_seq(&self) -> SeqNo {
        self.policy.applied_seq()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.policy.exposed_seq()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        self.policy.read_view()
    }

    fn lag(&self) -> Arc<LagTracker> {
        self.policy.lag()
    }

    fn metrics(&self) -> ReplicaMetrics {
        self.policy.metrics()
    }
}

impl<P: PipelinePolicy> Drop for PipelineRuntime<P> {
    fn drop(&mut self) {
        // Make sure background threads stop even if the caller forgot to
        // call finish(); without the full drain semantics, just signal
        // shutdown.
        self.ingest_tx.lock().take();
        self.stop_threads();
    }
}

/// Implements [`ClonedConcurrencyControl`] for a wrapper struct by
/// delegating every method to a [`PipelineRuntime`] field.
///
/// ```ignore
/// pub struct MyReplica { runtime: PipelineRuntime<MyPolicy> }
/// c5_core::delegate_replica_to_pipeline!(MyReplica, runtime);
/// ```
#[macro_export]
macro_rules! delegate_replica_to_pipeline {
    ($ty:ty, $field:ident) => {
        impl $crate::replica::ClonedConcurrencyControl for $ty {
            fn name(&self) -> &'static str {
                $crate::replica::ClonedConcurrencyControl::name(&self.$field)
            }
            fn apply_segment(&self, segment: ::c5_log::Segment) {
                self.$field.apply_segment(segment)
            }
            fn finish(&self) {
                self.$field.finish()
            }
            fn applied_seq(&self) -> ::c5_common::SeqNo {
                self.$field.applied_seq()
            }
            fn exposed_seq(&self) -> ::c5_common::SeqNo {
                self.$field.exposed_seq()
            }
            fn read_view(&self) -> ::std::boxed::Box<dyn $crate::replica::ReadView> {
                self.$field.read_view()
            }
            fn lag(&self) -> ::std::sync::Arc<$crate::lag::LagTracker> {
                self.$field.lag()
            }
            fn metrics(&self) -> $crate::replica::ReplicaMetrics {
                self.$field.metrics()
            }
            fn promote(&self) -> $crate::replica::Promotion {
                self.$field.promote()
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Boundary / lag bookkeeping shared by every policy.
// ---------------------------------------------------------------------------

/// Transaction-boundary ledger shared by every policy: the schedule stage
/// records each transaction's last-write position and primary commit time in
/// log order, and the expose stage drains every boundary the exposed cut has
/// covered into one replication-lag sample per transaction. Also remembers
/// the last position scheduled, which is the runtime's drain target.
#[derive(Debug, Default)]
pub struct BoundaryLedger {
    lag: Arc<LagTracker>,
    /// (last-write position, primary commit wall time) in log order.
    boundaries: Mutex<std::collections::VecDeque<(SeqNo, u64)>>,
    final_seq: AtomicU64,
}

impl BoundaryLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a ledger resuming at `cut`: the log is considered shipped
    /// through the cut (a checkpoint covers it), so the contiguity assert
    /// expects the first live segment to start at `cut + 1`. Transactions at
    /// or below the cut were exposed before the checkpoint and produce no
    /// new lag samples.
    pub fn starting_at(cut: SeqNo) -> Self {
        let ledger = Self::default();
        ledger.final_seq.store(cut.as_u64(), Ordering::Release);
        ledger
    }

    /// The lag tracker samples drain into.
    pub fn lag(&self) -> &Arc<LagTracker> {
        &self.lag
    }

    /// Records a segment's transaction boundaries (call from the schedule
    /// stage, in log order) and remembers the last position seen.
    ///
    /// # Panics
    /// Panics if the segment does not directly follow the last one noted.
    /// Every policy depends on log order — the per-row `prev_seq` stamps,
    /// the boundary queue, the dispatch order — and a reordered segment
    /// corrupts them silently (the symptom is a replica that wedges much
    /// later, with rows whose version chains skip writes). Failing loudly at
    /// the first misordered segment names the real culprit: the producer.
    pub fn note_segment(&self, segment: &Segment) {
        if let Some(first) = segment.first_seq() {
            let shipped = self.shipped_seq();
            assert_eq!(
                first.as_u64(),
                shipped.as_u64() + 1,
                "segments must arrive in log order: got a segment starting at \
                 {first} when the log was shipped through {shipped}"
            );
        }
        let mut boundaries = self.boundaries.lock();
        for record in &segment.records {
            if record.is_txn_last() {
                boundaries.push_back((record.seq, record.commit_wall_nanos));
            }
        }
        if let Some(last) = segment.last_seq() {
            self.final_seq.fetch_max(last.as_u64(), Ordering::Release);
        }
    }

    /// Records one lag sample for every transaction boundary now covered by
    /// the exposed cut. Safe to call concurrently (workers and the expose
    /// stage may both drive it).
    pub fn drain_exposed(&self, exposed: SeqNo) {
        let now = c5_log::now_nanos();
        let mut boundaries = self.boundaries.lock();
        while let Some(&(seq, committed_at)) = boundaries.front() {
            if seq <= exposed {
                boundaries.pop_front();
                self.lag.record(seq, committed_at, now);
            } else {
                break;
            }
        }
    }

    /// The last log position noted so far (the end of the log once ingestion
    /// is done).
    pub fn shipped_seq(&self) -> SeqNo {
        SeqNo(self.final_seq.load(Ordering::Acquire))
    }
}

// ---------------------------------------------------------------------------
// Per-row dependency wait lists.
// ---------------------------------------------------------------------------

/// Outcome of [`RowWaitList::install_blocking`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockingInstall {
    /// The write installed immediately (its predecessor was in place).
    Installed,
    /// The write installed after waiting for its per-row predecessor.
    InstalledAfterWait,
    /// Shutdown was signalled before the predecessor arrived.
    Aborted,
}

struct WaitShard {
    /// Parked writes keyed by the log position of the predecessor they wait
    /// for. A row's successor is unique, so each key holds at most one
    /// record.
    parked: Mutex<HashMap<u64, LogRecord>>,
    /// Notified whenever a position hashing to this shard is installed.
    installed: Condvar,
}

/// Event-driven per-row dependency wait lists — the runtime realization of
/// the explicit queue structure specified in [`crate::design_queues`].
///
/// The embedded `prev_seq` representation (Section 7.2) already tells every
/// write exactly which log position must be installed before it may execute.
/// Instead of busy-retrying a deferred write until that position appears,
/// the write *parks* here, keyed by its predecessor's position, and the
/// worker that installs the predecessor wakes it — installing it directly
/// and cascading down the row's chain. Because per-row successors are
/// unique, each installed position wakes at most one write, and a chain of
/// `k` conflicting writes costs exactly `k` installs plus `k` parks, however
/// many workers race on it.
///
/// `try_install` callbacks must be atomic check-and-installs (the store's
/// `install_if_prev`): they succeed exactly when the write's per-row
/// predecessor is the row's latest version.
pub struct RowWaitList {
    shards: Vec<WaitShard>,
}

impl std::fmt::Debug for RowWaitList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RowWaitList")
            .field("shards", &self.shards.len())
            .field("parked", &self.parked())
            .finish()
    }
}

impl RowWaitList {
    /// Creates a wait list with `shards` independently locked shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "RowWaitList requires at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| WaitShard {
                    parked: Mutex::new(HashMap::new()),
                    installed: Condvar::new(),
                })
                .collect(),
        }
    }

    fn shard(&self, seq: SeqNo) -> &WaitShard {
        &self.shards[(seq.as_u64() as usize) % self.shards.len()]
    }

    /// Installs `record` — and, transitively, every parked write its
    /// installation unblocks — or parks it on its missing predecessor.
    /// Returns whether the record was parked (it will be installed later by
    /// the worker that installs its predecessor).
    ///
    /// `try_install` must be **non-blocking** (the faithful, timestamped
    /// cursor never gates installs): it runs under the predecessor's shard
    /// lock, which is what makes parking race-free against a concurrent
    /// install of the predecessor.
    pub fn install_or_park(
        &self,
        record: LogRecord,
        try_install: &impl Fn(&LogRecord) -> bool,
    ) -> bool {
        if try_install(&record) {
            self.drain_successors(record.seq, try_install);
            return false;
        }
        let shard = self.shard(record.prev_seq);
        let mut parked = shard.parked.lock();
        // Re-check under the shard lock: the predecessor may have been
        // installed between the failed attempt and the lock. Its installer
        // takes this same lock to look for us, so after this second failure
        // it is guaranteed to see the parked record.
        if try_install(&record) {
            drop(parked);
            self.drain_successors(record.seq, try_install);
            return false;
        }
        let seq = record.seq;
        let prior = parked.insert(record.prev_seq.as_u64(), record);
        // A hard assert, like drain_successors': silently dropping the
        // displaced record would stall the applied watermark forever — an
        // undebuggable hang instead of a panic naming the bad stamp.
        assert!(
            prior.is_none(),
            "a row's successor is unique, but {seq} collided with a parked write"
        );
        true
    }

    /// Installs `record`, blocking until its per-row predecessor is in place
    /// (C5's one-worker-per-transaction mode executes a transaction's writes
    /// in order on one worker, so it waits instead of handing the record
    /// off). Returns [`BlockingInstall::Aborted`] if `should_abort` fires
    /// first.
    ///
    /// Unlike [`install_or_park`](Self::install_or_park), the `try_install`
    /// callback here may itself block (the whole-database snapshot gate holds
    /// back writes past a cut in flight). The wait list therefore never holds
    /// a shard lock across an install attempt — a gate-blocked worker must
    /// not wedge the shard other workers need in order to finish the very
    /// prefix the gate is waiting on. The condvar timeout bounds the
    /// staleness of a wake-up that slips between an attempt and the wait.
    pub fn install_blocking(
        &self,
        record: &LogRecord,
        try_install: &impl Fn(&LogRecord) -> bool,
        should_abort: &impl Fn() -> bool,
    ) -> BlockingInstall {
        if try_install(record) {
            self.drain_successors(record.seq, try_install);
            return BlockingInstall::Installed;
        }
        let shard = self.shard(record.prev_seq);
        loop {
            if should_abort() {
                return BlockingInstall::Aborted;
            }
            {
                let mut parked = shard.parked.lock();
                shard
                    .installed
                    .wait_for(&mut parked, Duration::from_micros(200));
            }
            if try_install(record) {
                self.drain_successors(record.seq, try_install);
                return BlockingInstall::InstalledAfterWait;
            }
        }
    }

    /// After `installed` has been installed: wakes the write parked on it
    /// (if any), installs it, and repeats down the chain. Also notifies
    /// blocking waiters.
    fn drain_successors(&self, installed: SeqNo, try_install: &impl Fn(&LogRecord) -> bool) {
        let mut seq = installed;
        loop {
            let shard = self.shard(seq);
            let woken = shard.parked.lock().remove(&seq.as_u64());
            shard.installed.notify_all();
            let Some(record) = woken else { return };
            let ok = try_install(&record);
            assert!(
                ok,
                "woken write {} must install: its per-row predecessor {seq} was just installed",
                record.seq
            );
            seq = record.seq;
        }
    }

    /// Number of writes currently parked (diagnostic).
    pub fn parked(&self) -> usize {
        self.shards.iter().map(|s| s.parked.lock().len()).sum()
    }

    /// Wakes every blocking waiter (so shutdown polling runs immediately).
    pub fn wake_all(&self) {
        for shard in &self.shards {
            shard.installed.notify_all();
        }
    }
}

impl Default for RowWaitList {
    /// 64 shards: enough to keep workers on disjoint rows from contending.
    fn default() -> Self {
        Self::new(64)
    }
}

// ---------------------------------------------------------------------------
// Garbage-collection horizon.
// ---------------------------------------------------------------------------

/// Drives [`MvStore::gc`] from the expose stage: the horizon trails the
/// exposed cut by `trail` log positions, so recently created read views
/// (which pin the cut at creation time) keep seeing every version they can
/// name, while versions older than the trail are reclaimed.
///
/// Scans are rate-limited: the store is only walked once the horizon has
/// advanced by `max(1, trail / 4)` positions since the last collection.
#[derive(Debug)]
pub struct GcDriver {
    store: Arc<MvStore>,
    trail: u64,
    step: u64,
    last_horizon: AtomicU64,
    reclaimed: AtomicU64,
}

impl GcDriver {
    /// Creates a driver over `store` whose horizon trails the exposed cut by
    /// `trail` positions.
    pub fn new(store: Arc<MvStore>, trail: u64) -> Self {
        Self {
            store,
            trail,
            step: (trail / 4).max(1),
            last_horizon: AtomicU64::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// Advances the horizon towards `exposed - trail` and collects if it
    /// moved at least one step. Returns the number of versions reclaimed by
    /// this call. Intended to be called from a single thread (the expose
    /// stage).
    pub fn run(&self, exposed: SeqNo) -> u64 {
        let horizon = exposed.as_u64().saturating_sub(self.trail);
        let last = self.last_horizon.load(Ordering::Acquire);
        if horizon < last.saturating_add(self.step) {
            return 0;
        }
        self.last_horizon.store(horizon, Ordering::Release);
        let reclaimed = self.store.gc(Timestamp(horizon)) as u64;
        self.reclaimed.fetch_add(reclaimed, Ordering::Relaxed);
        reclaimed
    }

    /// Total versions reclaimed so far.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }

    /// The current GC horizon (no version older than this is guaranteed to
    /// survive; reads at or after it are unaffected).
    pub fn horizon(&self) -> SeqNo {
        SeqNo(self.last_horizon.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, RowWrite, TxnId, Value, WriteKind};
    use parking_lot::Mutex as PlMutex;
    use std::collections::HashSet;

    fn record(seq: u64, prev: u64, key: u64) -> LogRecord {
        LogRecord {
            txn: TxnId(seq),
            seq: SeqNo(seq),
            commit_ts: Timestamp(seq),
            commit_wall_nanos: 0,
            prev_seq: SeqNo(prev),
            write: RowWrite::update(RowRef::new(0, key), Value::from_u64(seq)),
            idx_in_txn: 0,
            txn_len: 1,
        }
    }

    /// A model store: a write installs iff its predecessor is installed (or
    /// it has none).
    #[derive(Default)]
    struct ModelStore {
        installed: PlMutex<HashSet<u64>>,
        order: PlMutex<Vec<u64>>,
    }

    impl ModelStore {
        fn try_install(&self, r: &LogRecord) -> bool {
            let mut installed = self.installed.lock();
            if r.prev_seq != SeqNo::ZERO && !installed.contains(&r.prev_seq.as_u64()) {
                return false;
            }
            installed.insert(r.seq.as_u64());
            self.order.lock().push(r.seq.as_u64());
            true
        }
    }

    #[test]
    fn out_of_order_chain_parks_and_cascades() {
        let store = ModelStore::default();
        let waits = RowWaitList::new(4);
        let install = |r: &LogRecord| store.try_install(r);

        // Chain on one row: 1 → 2 → 3, delivered in reverse.
        assert!(waits.install_or_park(record(3, 2, 7), &install));
        assert!(waits.install_or_park(record(2, 1, 7), &install));
        assert_eq!(waits.parked(), 2);

        // Installing the head wakes the whole chain, in order.
        assert!(!waits.install_or_park(record(1, 0, 7), &install));
        assert_eq!(waits.parked(), 0);
        assert_eq!(*store.order.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn independent_rows_never_park() {
        let store = ModelStore::default();
        let waits = RowWaitList::new(4);
        let install = |r: &LogRecord| store.try_install(r);
        for seq in 1..=16 {
            assert!(!waits.install_or_park(record(seq, 0, seq), &install));
        }
        assert_eq!(waits.parked(), 0);
        assert_eq!(store.order.lock().len(), 16);
    }

    #[test]
    fn blocking_install_waits_for_the_predecessor() {
        let store = Arc::new(ModelStore::default());
        let waits = Arc::new(RowWaitList::new(4));

        let waiter = {
            let store = Arc::clone(&store);
            let waits = Arc::clone(&waits);
            std::thread::spawn(move || {
                waits.install_blocking(&record(2, 1, 7), &|r| store.try_install(r), &|| false)
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        assert!(!waiter.is_finished(), "the successor must wait");

        assert!(!waits.install_or_park(record(1, 0, 7), &|r| store.try_install(r)));
        assert_eq!(waiter.join().unwrap(), BlockingInstall::InstalledAfterWait);
        assert_eq!(*store.order.lock(), vec![1, 2]);
    }

    #[test]
    fn blocking_install_aborts_on_request() {
        let store = ModelStore::default();
        let waits = RowWaitList::new(4);
        let outcome = waits.install_blocking(
            &record(2, 1, 7),
            &|r| store.try_install(r),
            &|| true, // abort immediately
        );
        assert_eq!(outcome, BlockingInstall::Aborted);
        assert!(store.order.lock().is_empty());
    }

    #[test]
    fn concurrent_workers_drain_a_contended_chain() {
        // Writes 1..=200 all on one row, shuffled across 4 threads: the wait
        // list must produce exactly the in-order install sequence.
        let store = Arc::new(ModelStore::default());
        let waits = Arc::new(RowWaitList::default());
        let total = 200u64;
        let threads = 4;
        let mut handles = Vec::new();
        for t in 0..threads {
            let store = Arc::clone(&store);
            let waits = Arc::clone(&waits);
            handles.push(std::thread::spawn(move || {
                let mut seq = t + 1;
                while seq <= total {
                    waits.install_or_park(record(seq, seq - 1, 7), &|r| store.try_install(r));
                    seq += threads;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(waits.parked(), 0);
        let order = store.order.lock();
        assert_eq!(*order, (1..=total).collect::<Vec<_>>());
    }

    #[test]
    fn gc_driver_trails_the_exposed_cut() {
        let store = Arc::new(MvStore::default());
        let row = RowRef::new(0, 1);
        for ts in 1..=100u64 {
            store.install(
                row,
                Timestamp(ts),
                WriteKind::Update,
                Some(Value::from_u64(ts)),
            );
        }
        let gc = GcDriver::new(Arc::clone(&store), 10);
        // Horizon 90: everything older than the newest version <= 90 goes.
        let reclaimed = gc.run(SeqNo(100));
        assert!(reclaimed > 0);
        assert_eq!(gc.reclaimed(), reclaimed);
        assert_eq!(gc.horizon(), SeqNo(90));
        // Reads at or after the horizon still see the right values.
        assert_eq!(
            store.read_at(row, Timestamp(90)).unwrap().as_u64(),
            Some(90)
        );
        assert_eq!(
            store.read_at(row, Timestamp(100)).unwrap().as_u64(),
            Some(100)
        );
        // No advance, no rescan.
        assert_eq!(gc.run(SeqNo(100)), 0);
    }

    #[test]
    fn gc_driver_rate_limits_rescans() {
        let store = Arc::new(MvStore::default());
        let gc = GcDriver::new(store, 100);
        // step = 25: an advance of the horizon below that is skipped.
        assert_eq!(gc.run(SeqNo(110)), 0); // horizon 10 < 0 + 25
        assert_eq!(gc.horizon(), SeqNo::ZERO);
        gc.run(SeqNo(150)); // horizon 50 >= 25: collected (nothing to free)
        assert_eq!(gc.horizon(), SeqNo(50));
    }
}
