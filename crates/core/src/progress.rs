//! Tracking how far a replica has applied and exposed the log.
//!
//! The snapshotter (Section 4.2) needs two facts continuously: the largest
//! sequence number `w` such that *every* write with sequence number `<= w`
//! has been applied (the contiguous applied prefix), and the largest
//! transaction boundary at or below `w` (so the exposed cut `n` always aligns
//! with a commit boundary and transactions appear atomically).
//!
//! The paper's C5-Cicada derives the first quantity from per-worker `c'`
//! counters (Section 7.2); this reproduction instead tracks the contiguous
//! prefix directly in a [`WatermarkTracker`], which every worker marks as it
//! installs a write. The tracker is shared by C5 and by all baseline
//! protocols so that "applied" and "exposed" mean exactly the same thing in
//! every experiment. The substitution is documented in `DESIGN.md` at the
//! repository root; it changes a per-worker counter into a small shared
//! structure but not the protocol's observable behaviour.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use c5_common::SeqNo;

/// Tracks the contiguous applied prefix of the log and the largest
/// transaction boundary inside it.
#[derive(Debug, Default)]
pub struct WatermarkTracker {
    /// Largest `w` such that all sequence numbers in `1..=w` are applied.
    applied: AtomicU64,
    /// Largest transaction-boundary sequence number `<=` applied.
    boundary: AtomicU64,
    inner: Mutex<Pending>,
}

#[derive(Debug, Default)]
struct Pending {
    /// Applied sequence numbers above the watermark (out-of-order arrivals).
    out_of_order: BTreeSet<u64>,
    /// Transaction-boundary sequence numbers above the boundary watermark.
    pending_boundaries: BTreeSet<u64>,
}

impl WatermarkTracker {
    /// Creates a tracker with nothing applied.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a tracker resuming at `cut`: every position at or below the
    /// cut counts as applied (a checkpoint covers them), and the boundary
    /// watermark starts at the cut (checkpoint cuts are transaction
    /// boundaries by construction). The first live mark is `cut + 1`.
    pub fn starting_at(cut: SeqNo) -> Self {
        let tracker = Self::default();
        tracker.applied.store(cut.as_u64(), Ordering::Release);
        tracker.boundary.store(cut.as_u64(), Ordering::Release);
        tracker
    }

    /// Marks `seq` as applied. `is_txn_boundary` is true when `seq` is the
    /// last write of its transaction.
    pub fn mark_applied(&self, seq: SeqNo, is_txn_boundary: bool) {
        self.mark_applied_batch(&[(seq, is_txn_boundary)]);
    }

    /// Marks a batch of applied positions under one lock acquisition and one
    /// publication of each watermark. Equivalent to calling
    /// [`WatermarkTracker::mark_applied`] for every element in order — the
    /// watermarks just become visible once, after the whole batch — so
    /// workers that buffer the marks of an already-installed item trade
    /// publication latency (bounded by one queue item) for an N-fold cut in
    /// lock and cache-line traffic on the apply hot path.
    pub fn mark_applied_batch(&self, marks: &[(SeqNo, bool)]) {
        if marks.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let mut applied = self.applied.load(Ordering::Relaxed);
        let mut advanced = false;
        for &(seq, is_txn_boundary) in marks {
            let seq = seq.as_u64();
            if is_txn_boundary {
                inner.pending_boundaries.insert(seq);
            }
            if seq == applied + 1 {
                applied = seq;
                // Absorb any directly-following out-of-order arrivals.
                while inner.out_of_order.remove(&(applied + 1)) {
                    applied += 1;
                }
                advanced = true;
            } else if seq > applied {
                inner.out_of_order.insert(seq);
            }
        }
        // Advance the boundary watermark to the largest boundary <= applied.
        let mut boundary = self.boundary.load(Ordering::Relaxed);
        while let Some(&b) = inner.pending_boundaries.iter().next() {
            if b <= applied {
                inner.pending_boundaries.remove(&b);
                boundary = boundary.max(b);
            } else {
                break;
            }
        }
        // Publish the boundary BEFORE the applied prefix. A reader that
        // pairs the two watermarks — the runtime's drain protocol reads
        // "applied caught up, now wait for the exposed cut to reach the
        // boundary" — must never observe an advanced prefix with a stale
        // boundary: when one call absorbs a long out-of-order run, the
        // boundary can jump many transactions in the same step, and the old
        // applied-first order let a drain sample that window, seal the
        // pipeline at the stale boundary, and finish with the final
        // transactions applied but never exposed. Release on `applied`
        // after Release on `boundary` means an Acquire load of `applied`
        // makes the matching boundary visible.
        self.boundary.store(boundary, Ordering::Release);
        if advanced {
            self.applied.store(applied, Ordering::Release);
        }
    }

    /// Largest sequence number up to which *all* writes have been applied.
    pub fn applied_watermark(&self) -> SeqNo {
        SeqNo(self.applied.load(Ordering::Acquire))
    }

    /// Largest transaction boundary at or below the applied watermark. This
    /// is the value the snapshotter may expose as `n` without ever exposing a
    /// torn transaction.
    pub fn boundary_watermark(&self) -> SeqNo {
        SeqNo(self.boundary.load(Ordering::Acquire))
    }

    /// Number of writes applied out of order and still waiting for a
    /// predecessor (diagnostic).
    pub fn out_of_order_backlog(&self) -> usize {
        self.inner.lock().out_of_order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_marks_advance_both_watermarks() {
        let t = WatermarkTracker::new();
        t.mark_applied(SeqNo(1), false);
        t.mark_applied(SeqNo(2), true);
        t.mark_applied(SeqNo(3), false);
        assert_eq!(t.applied_watermark(), SeqNo(3));
        assert_eq!(t.boundary_watermark(), SeqNo(2));
    }

    #[test]
    fn out_of_order_marks_wait_for_the_gap() {
        let t = WatermarkTracker::new();
        t.mark_applied(SeqNo(2), true);
        t.mark_applied(SeqNo(3), true);
        assert_eq!(t.applied_watermark(), SeqNo::ZERO);
        assert_eq!(t.boundary_watermark(), SeqNo::ZERO);
        assert_eq!(t.out_of_order_backlog(), 2);

        t.mark_applied(SeqNo(1), false);
        assert_eq!(t.applied_watermark(), SeqNo(3));
        assert_eq!(t.boundary_watermark(), SeqNo(3));
        assert_eq!(t.out_of_order_backlog(), 0);
    }

    #[test]
    fn boundary_never_exceeds_applied() {
        let t = WatermarkTracker::new();
        t.mark_applied(SeqNo(1), false);
        t.mark_applied(SeqNo(3), true); // boundary at 3, but 2 missing
        assert_eq!(t.applied_watermark(), SeqNo(1));
        assert_eq!(t.boundary_watermark(), SeqNo::ZERO);
        t.mark_applied(SeqNo(2), false);
        assert_eq!(t.applied_watermark(), SeqNo(3));
        assert_eq!(t.boundary_watermark(), SeqNo(3));
    }

    #[test]
    fn boundary_publication_is_never_behind_the_applied_prefix() {
        // Every position is a transaction boundary, so at any instant the
        // boundary watermark must read at least any previously read applied
        // watermark: publishing applied before boundary (the old order) let
        // a reader catch an advanced prefix with a stale boundary when one
        // mark absorbed a long out-of-order run — which made the pipeline's
        // drain protocol seal a replica short. Hammer the pairing from a
        // reader while two markers interleave in- and out-of-order arrivals.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let tracker = Arc::new(WatermarkTracker::new());
        let done = Arc::new(AtomicBool::new(false));
        let reader = {
            let tracker = Arc::clone(&tracker);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let applied = tracker.applied_watermark();
                    let boundary = tracker.boundary_watermark();
                    assert!(
                        boundary >= applied,
                        "read applied {applied} but boundary {boundary}: the \
                         boundary must be published first"
                    );
                }
            })
        };
        let total = 30_000u64;
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let tracker = Arc::clone(&tracker);
                scope.spawn(move || {
                    // Thread 0 marks odd positions, thread 1 even ones, so
                    // long out-of-order runs build up and get absorbed in
                    // single calls.
                    let mut seq = t + 1;
                    while seq <= total {
                        tracker.mark_applied(SeqNo(seq), true);
                        seq += 2;
                    }
                });
            }
        });
        done.store(true, Ordering::Release);
        reader.join().unwrap();
        assert_eq!(tracker.applied_watermark(), SeqNo(total));
        assert_eq!(tracker.boundary_watermark(), SeqNo(total));
    }

    #[test]
    fn batched_marks_match_per_record_marks() {
        // Any interleaving of batch boundaries over the same mark sequence
        // converges to the same watermarks as per-record marking.
        let marks: Vec<(SeqNo, bool)> = [3u64, 1, 2, 6, 5, 4, 7, 9, 8]
            .iter()
            .map(|&s| (SeqNo(s), s % 3 == 0))
            .collect();
        let per_record = WatermarkTracker::new();
        for &(seq, boundary) in &marks {
            per_record.mark_applied(seq, boundary);
        }
        for chunk in [1, 2, 4, marks.len()] {
            let batched = WatermarkTracker::new();
            for batch in marks.chunks(chunk) {
                batched.mark_applied_batch(batch);
            }
            assert_eq!(batched.applied_watermark(), per_record.applied_watermark());
            assert_eq!(
                batched.boundary_watermark(),
                per_record.boundary_watermark()
            );
            assert_eq!(batched.out_of_order_backlog(), 0);
        }
    }

    #[test]
    fn starting_at_resumes_the_prefix_at_the_cut() {
        let t = WatermarkTracker::starting_at(SeqNo(10));
        assert_eq!(t.applied_watermark(), SeqNo(10));
        assert_eq!(t.boundary_watermark(), SeqNo(10));
        // The first live mark continues the prefix...
        t.mark_applied(SeqNo(11), false);
        t.mark_applied(SeqNo(12), true);
        assert_eq!(t.applied_watermark(), SeqNo(12));
        assert_eq!(t.boundary_watermark(), SeqNo(12));
        // ...and gaps still hold it back.
        t.mark_applied(SeqNo(14), true);
        assert_eq!(t.applied_watermark(), SeqNo(12));
    }

    #[test]
    fn concurrent_marking_converges_to_the_full_prefix() {
        use std::sync::Arc;
        let t = Arc::new(WatermarkTracker::new());
        let total = 10_000u64;
        let threads = 8;
        let mut handles = Vec::new();
        for i in 0..threads {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                let mut seq = i + 1;
                while seq <= total {
                    t.mark_applied(SeqNo(seq), seq % 5 == 0);
                    seq += threads;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.applied_watermark(), SeqNo(total));
        assert_eq!(t.boundary_watermark(), SeqNo(total));
        assert_eq!(t.out_of_order_backlog(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Regardless of the order in which a permutation of 1..=n is marked,
        /// after marking a prefix of the permutation the applied watermark is
        /// exactly the largest contiguous prefix of marked numbers.
        #[test]
        fn watermark_equals_contiguous_prefix(n in 1u64..64, cut in 0usize..64) {
            let mut order: Vec<u64> = (1..=n).collect();
            // Deterministic shuffle driven by proptest's inputs.
            for i in (1..order.len()).rev() {
                let j = (cut.wrapping_mul(31).wrapping_add(i * 7)) % (i + 1);
                order.swap(i, j);
            }
            let cut = cut.min(order.len());
            let tracker = WatermarkTracker::new();
            for &seq in &order[..cut] {
                tracker.mark_applied(SeqNo(seq), true);
            }
            let marked: std::collections::HashSet<u64> = order[..cut].iter().copied().collect();
            let mut expect = 0;
            while marked.contains(&(expect + 1)) {
                expect += 1;
            }
            prop_assert_eq!(tracker.applied_watermark(), SeqNo(expect));
            prop_assert_eq!(tracker.boundary_watermark(), SeqNo(expect));
        }

        /// For any permutation of `mark_applied` calls with arbitrary
        /// transaction-boundary flags, after *every* step:
        /// * the applied watermark is exactly the largest contiguous prefix
        ///   of the sequence numbers marked so far, and
        /// * the boundary watermark is the largest boundary-flagged sequence
        ///   number inside that prefix — i.e. always a transaction boundary
        ///   at or below the applied watermark (or zero when none exists).
        #[test]
        fn boundary_is_largest_boundary_within_the_applied_prefix(
            n in 1u64..48,
            seed in proptest::prelude::any::<u64>(),
            boundary_bits in prop::collection::vec(proptest::prelude::any::<bool>(), 48..49),
        ) {
            // A deterministic Fisher–Yates shuffle driven by proptest's seed
            // input produces the interleaving.
            let mut order: Vec<u64> = (1..=n).collect();
            let mut state = seed | 1;
            for i in (1..order.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = ((state >> 33) as usize) % (i + 1);
                order.swap(i, j);
            }

            let tracker = WatermarkTracker::new();
            let mut marked = std::collections::HashSet::new();
            let mut prefix = 0u64;
            for &seq in &order {
                let is_boundary = boundary_bits[(seq - 1) as usize];
                tracker.mark_applied(SeqNo(seq), is_boundary);
                marked.insert(seq);
                while marked.contains(&(prefix + 1)) {
                    prefix += 1;
                }
                let expect_boundary = (1..=prefix)
                    .rev()
                    .find(|&s| boundary_bits[(s - 1) as usize])
                    .unwrap_or(0);
                prop_assert_eq!(tracker.applied_watermark(), SeqNo(prefix));
                prop_assert_eq!(tracker.boundary_watermark(), SeqNo(expect_boundary));
                prop_assert!(tracker.boundary_watermark() <= tracker.applied_watermark());
            }
            // The full permutation always converges to the complete prefix.
            prop_assert_eq!(tracker.applied_watermark(), SeqNo(n));
            prop_assert_eq!(tracker.out_of_order_backlog(), 0);
        }
    }
}
