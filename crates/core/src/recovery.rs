//! End-to-end crash recovery: checkpoint + durable log tail → running replica.
//!
//! The paper's backup is always running, so it never needs this; a real
//! deployment does, and the durable layers supply the two halves — `c5-storage`'s
//! persisted checkpoints ([`CheckpointInstaller::load`]) and `c5-log`'s
//! disk-backed archive ([`LogArchive::open`]). This module composes them into
//! the one operation a restarted process actually wants:
//!
//! 1. load the newest published checkpoint (torn-write-safe manifest);
//! 2. reopen the durable log archive, truncating any torn or corrupt tail
//!    back to a transaction boundary;
//! 3. replay the retained records above the checkpoint cut into a replica
//!    resumed from the checkpoint ([`C5Replica::resume_from_checkpoint`]).
//!
//! Both halves live under one state directory, in fixed subdirectories
//! ([`log_dir`] / [`checkpoint_dir`]), so the writing process and the
//! recovering process agree on layout by construction. If truncation has
//! outrun the checkpoint — the archive dropped records the checkpoint does
//! not cover, which can only happen if the manifest publication was lost —
//! recovery fails loudly with [`c5_common::Error::ArchiveTruncated`] instead
//! of silently replaying a log with a hole in it.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use c5_common::{DurabilityPolicy, Error, ReplicaConfig, SeqNo};
use c5_log::{LogArchive, Segment};
use c5_storage::CheckpointInstaller;

use crate::replica::{drive_segments, C5Mode, C5Replica};

/// The log-archive subdirectory of a durable state directory.
pub fn log_dir(state_dir: &Path) -> PathBuf {
    state_dir.join("log")
}

/// The checkpoint subdirectory of a durable state directory.
pub fn checkpoint_dir(state_dir: &Path) -> PathBuf {
    state_dir.join("checkpoint")
}

/// Why a recovery attempt failed.
#[derive(Debug)]
pub enum RecoveryError {
    /// The state directory, manifest, checkpoint file, or a segment file
    /// could not be read (or a damaged checkpoint failed validation).
    Io(io::Error),
    /// The archive was truncated past the checkpoint cut — the retained log
    /// no longer reaches back to the recovered state
    /// ([`Error::ArchiveTruncated`]).
    Archive(Error),
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery could not read durable state: {e}"),
            RecoveryError::Archive(e) => write!(f, "recovery cannot replay the log: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

/// A replica reconstructed from durable state, plus how it got there.
pub struct RecoveredReplica {
    /// The replica, caught up through the end of the recovered log.
    pub replica: Arc<C5Replica>,
    /// The reopened durable archive (still retaining the replayed tail, so
    /// a subsequent checkpoint can truncate it).
    pub archive: Arc<LogArchive>,
    /// The cut of the checkpoint recovery started from (`SeqNo::ZERO` when
    /// no checkpoint was ever published and recovery replayed from scratch).
    pub checkpoint_cut: SeqNo,
    /// Records replayed from the archive on top of the checkpoint.
    pub replayed_records: usize,
    /// The position the recovered replica is complete through.
    pub recovered_through: SeqNo,
    /// Whether the archive's tail was torn or corrupt and had to be
    /// truncated back to a transaction boundary.
    pub torn_tail: bool,
}

impl fmt::Debug for RecoveredReplica {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RecoveredReplica")
            .field("checkpoint_cut", &self.checkpoint_cut)
            .field("replayed_records", &self.replayed_records)
            .field("recovered_through", &self.recovered_through)
            .field("torn_tail", &self.torn_tail)
            .finish_non_exhaustive()
    }
}

/// Recovers a replica from the durable state under `state_dir`: newest
/// checkpoint, plus the archived log tail above its cut. See the module docs
/// for the exact steps and failure semantics. The archive is reopened with
/// `policy` governing post-recovery appends.
pub fn recover_replica(
    state_dir: &Path,
    mode: C5Mode,
    config: ReplicaConfig,
    policy: DurabilityPolicy,
) -> Result<RecoveredReplica, RecoveryError> {
    // Each recovery phase ends with a typed trace event into the config's
    // observability sink, so a recovered process can show where its
    // startup time went.
    let obs = Arc::clone(&config.obs);
    let phase_start = std::time::Instant::now();
    let trace_phase = |phase: &'static str, started: std::time::Instant| {
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        obs.trace
            .record(c5_obs::TraceEvent::Recovery { phase, elapsed_ns });
        obs.metrics
            .histogram(&format!("recovery_phase_ns{{phase=\"{phase}\"}}"))
            .record(elapsed_ns);
    };

    let checkpoint = CheckpointInstaller::load(checkpoint_dir(state_dir))?;
    trace_phase("load_checkpoint", phase_start);

    let phase_start = std::time::Instant::now();
    let opened = LogArchive::open(log_dir(state_dir), policy)?;
    let archive = Arc::new(opened.archive);
    trace_phase("open_archive", phase_start);

    let phase_start = std::time::Instant::now();
    let (replica, cut) = match &checkpoint {
        Some(checkpoint) => (
            C5Replica::resume_from_checkpoint(mode, checkpoint, config),
            checkpoint.cut(),
        ),
        None => (
            C5Replica::new(mode, Arc::new(Default::default()), config),
            SeqNo::ZERO,
        ),
    };
    trace_phase("install_checkpoint", phase_start);

    let phase_start = std::time::Instant::now();
    let tail = archive.replay_from(cut).map_err(RecoveryError::Archive)?;
    let replayed_records = tail.iter().map(Segment::len).sum();
    let recovered_through = tail
        .last()
        .map(Segment::covered_through)
        .unwrap_or(cut)
        .max(cut);
    drive_segments(replica.as_ref(), tail);
    trace_phase("replay_tail", phase_start);

    Ok(RecoveredReplica {
        replica,
        archive,
        checkpoint_cut: cut,
        replayed_records,
        recovered_through,
        torn_tail: opened.torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replica::ClonedConcurrencyControl;
    use c5_common::{RowRef, RowWrite, Timestamp, TxnId, Value};
    use c5_log::{segments_from_entries, TxnEntry};
    use c5_storage::{CheckpointWriter, MvStore};
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "c5-recovery-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_log() -> Vec<Segment> {
        let entries: Vec<TxnEntry> = (1..=6u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![
                        RowWrite::update(RowRef::new(0, t % 3), Value::from_u64(t)),
                        RowWrite::update(RowRef::new(0, 10 + t), Value::from_u64(t)),
                    ],
                )
            })
            .collect();
        segments_from_entries(&entries, 4)
    }

    /// Persist a population checkpoint plus the full log, then recover and
    /// compare against an in-memory replica fed the same stream.
    #[test]
    fn recovery_reconstructs_the_replica_from_disk() {
        let dir = scratch_dir("full");
        let segments = test_log();
        let config = ReplicaConfig::default().with_workers(2);

        // The "before the crash" process: populate, checkpoint, archive.
        let population = Arc::new(MvStore::default());
        for k in 0..3u64 {
            population.install(
                RowRef::new(0, k),
                Timestamp::ZERO,
                c5_common::WriteKind::Insert,
                Some(Value::from_u64(0)),
            );
        }
        let checkpoint = CheckpointWriter::capture(&population, SeqNo::ZERO);
        CheckpointWriter::save(checkpoint_dir(&dir), &checkpoint).expect("save checkpoint");
        let archive = LogArchive::durable(log_dir(&dir), DurabilityPolicy::EverySegment)
            .expect("create archive");
        for segment in &segments {
            archive.append(segment);
        }
        drop(archive); // no clean shutdown — recovery must not need one

        let recovered = recover_replica(
            &dir,
            C5Mode::Faithful,
            config.clone(),
            DurabilityPolicy::EverySegment,
        )
        .expect("recover");
        assert_eq!(recovered.checkpoint_cut, SeqNo::ZERO);
        assert_eq!(recovered.replayed_records, 12);
        assert_eq!(recovered.recovered_through, SeqNo(12));
        assert!(!recovered.torn_tail);

        // The recovered replica reads identically to an in-memory one fed
        // the same log.
        let reference = C5Replica::new(C5Mode::Faithful, population, config);
        drive_segments(reference.as_ref(), segments);
        let mut expect = reference.read_view().scan_all();
        let mut got = recovered.replica.read_view().scan_all();
        expect.sort_by_key(|(row, _)| *row);
        got.sort_by_key(|(row, _)| *row);
        assert_eq!(expect, got);

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn recovery_without_any_checkpoint_replays_from_scratch() {
        let dir = scratch_dir("cold");
        let segments = test_log();
        let archive = LogArchive::durable(log_dir(&dir), DurabilityPolicy::EverySegment)
            .expect("create archive");
        for segment in &segments {
            archive.append(segment);
        }
        drop(archive);

        let recovered = recover_replica(
            &dir,
            C5Mode::Faithful,
            ReplicaConfig::default().with_workers(2),
            DurabilityPolicy::EverySegment,
        )
        .expect("recover");
        assert_eq!(recovered.checkpoint_cut, SeqNo::ZERO);
        assert_eq!(recovered.replayed_records, 12);
        // Rows 10+t only ever see one write; spot-check one.
        let view = recovered.replica.read_view();
        assert_eq!(
            view.get(RowRef::new(0, 16)).and_then(|v| v.as_u64()),
            Some(6)
        );

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn truncation_past_the_checkpoint_fails_loudly() {
        let dir = scratch_dir("hole");
        let segments = test_log();
        // Checkpoint published at cut 0, but the archive was truncated
        // through 4 (as if a newer checkpoint's manifest write was lost).
        let store = Arc::new(MvStore::default());
        let checkpoint = CheckpointWriter::capture(&store, SeqNo::ZERO);
        CheckpointWriter::save(checkpoint_dir(&dir), &checkpoint).expect("save");
        let archive = LogArchive::durable(log_dir(&dir), DurabilityPolicy::EverySegment)
            .expect("create archive");
        for segment in &segments {
            archive.append(segment);
        }
        archive.truncate_through(SeqNo(4));
        drop(archive);

        let err = recover_replica(
            &dir,
            C5Mode::Faithful,
            ReplicaConfig::default().with_workers(2),
            DurabilityPolicy::EverySegment,
        )
        .expect_err("the log has a hole below the replay cut");
        assert!(matches!(
            err,
            RecoveryError::Archive(Error::ArchiveTruncated { .. })
        ));

        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
