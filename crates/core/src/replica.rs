//! The replica trait and the C5 replica.
//!
//! [`ClonedConcurrencyControl`] is the interface every backup protocol in
//! this workspace implements — C5 in both modes here, and the baselines in
//! `c5-baselines`. The experiment harness, the monotonic-prefix-consistency
//! checker, and the lag metrics are all written once against this trait, so
//! every protocol is measured identically.
//!
//! [`C5Replica`] is the paper's protocol, expressed as an ordering policy on
//! the shared [`crate::pipeline`] runtime:
//!
//! * the **schedule** stage stamps every record with the position of the
//!   previous write to its row ([`crate::scheduler`]), records transaction
//!   boundaries for the lag metrics, and dispatches work to the workers;
//! * the **apply** stage runs `workers` threads installing row writes. In
//!   [`C5Mode::Faithful`] workers receive whole segments round-robin and
//!   apply each record as soon as its per-row predecessor is in place; a
//!   record whose predecessor is missing parks on the
//!   [`crate::pipeline::RowWaitList`] and is installed by the
//!   worker that installs the predecessor (the event-driven form of
//!   Section 7.2's deferred-write queues). In [`C5Mode::OneWorkerPerTxn`]
//!   workers pull whole transactions from a shared queue in commit order and
//!   apply each transaction's writes in order, sleeping on the wait list
//!   until each write's predecessor lands (Section 5.1's
//!   backward-compatibility constraint);
//! * the **expose** stage advances the exposed cut ([`crate::snapshotter`])
//!   every `snapshot_interval`, records one replication-lag sample per
//!   transaction as it becomes visible, and drives the version-GC horizon
//!   trailing the cut.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use c5_common::{OpCost, ReplicaConfig, RowRef, SeqNo, TableId, Timestamp, Value};
use c5_log::{LogReceiver, LogRecord, Segment};
use c5_storage::{Checkpoint, CheckpointInstaller, CheckpointWriter, MvStore};

use crate::lag::LagTracker;
use crate::pipeline::{
    BlockingInstall, BoundaryLedger, GcDriver, PipelineOptions, PipelinePolicy, PipelineRuntime,
    PipelineSignals, QueuePlan, RowWaitList, WorkSink,
};
use crate::progress::WatermarkTracker;
use crate::scheduler::SchedulerState;
use crate::snapshotter::SnapshotCursor;

/// A read-only view of the backup's exposed state, pinned at creation time.
pub trait ReadView: Send {
    /// Reads a row (point query).
    fn get(&self, row: RowRef) -> Option<Value>;
    /// The log position this view reflects.
    fn as_of(&self) -> SeqNo;
    /// Key-sorted scan of one table.
    fn scan_table(&self, table: TableId) -> Vec<(RowRef, Value)>;
    /// Key-sorted scan of the whole database (used by the consistency
    /// checker).
    fn scan_all(&self) -> Vec<(RowRef, Value)>;
    /// Reads a batch of rows from the same pinned state. Every value comes
    /// from the one cut this view was pinned at, which is what makes a
    /// multi-key read-only transaction transactional.
    fn get_many(&self, rows: &[RowRef]) -> Vec<Option<Value>> {
        rows.iter().map(|&row| self.get(row)).collect()
    }
}

/// Counters describing a replica's progress, exposed uniformly by every
/// protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// Row writes applied to the backup's store.
    pub applied_writes: u64,
    /// Transactions whose final write has been applied.
    pub applied_txns: u64,
    /// Largest contiguous applied log position.
    pub applied_seq: SeqNo,
    /// Largest log position exposed to read-only transactions.
    pub exposed_seq: SeqNo,
    /// Number of writes that had to wait for their per-row predecessor
    /// before executing (each such write is counted once, however long it
    /// waited).
    pub deferred_writes: u64,
    /// Row versions reclaimed by the garbage-collection horizon trailing the
    /// exposed cut.
    pub reclaimed_versions: u64,
    /// Transactions whose writes spanned more than one keyspace shard (zero
    /// for unsharded replicas, and for sharded replicas fed pre-routed
    /// streams — there the sharded shipper counts).
    pub cross_shard_txns: u64,
}

/// The result of promoting a backup to primary: the sealed store and the cut
/// it was sealed at, plus how long the drain took (the failover cost the
/// paper's thesis bounds by replication lag — a backup that keeps up has
/// almost nothing left to drain when the primary dies).
#[derive(Debug)]
pub struct Promotion {
    /// The promoted protocol's report name.
    pub protocol: &'static str,
    /// The transaction-aligned cut the backup was sealed at: every write at
    /// or below it is applied and exposed, nothing above it exists in the
    /// store. The new primary resumes committing above this position.
    pub cut: SeqNo,
    /// Wall-clock time from the promotion request until the cut was sealed
    /// (draining in-flight applies, exposing the final boundary, stopping
    /// the pipeline threads).
    pub drain: Duration,
    /// The backup's store, now the new primary's store.
    pub store: Arc<MvStore>,
}

/// The interface shared by C5 and every baseline cloned concurrency control
/// protocol.
pub trait ClonedConcurrencyControl: Send + Sync {
    /// Short protocol name for reports (e.g. `"c5"`, `"kuafu"`).
    fn name(&self) -> &'static str;

    /// Feeds one log segment. May block for backpressure.
    fn apply_segment(&self, segment: Segment);

    /// Signals end-of-log, waits for every shipped write to be applied and
    /// exposed, and stops the protocol's threads. Idempotent.
    fn finish(&self);

    /// Promotes the backup to primary: stops ingesting, drains every
    /// in-flight apply to a clean transaction-aligned cut, seals the
    /// pipeline, and hands over the store. The returned drain time is the
    /// promotion latency — for a backup that keeps up it is bounded by the
    /// replication lag at the moment of failure, because the backlog *is*
    /// the lag. Calling `promote` after `finish` (or twice) returns the same
    /// cut with a near-zero drain.
    fn promote(&self) -> Promotion;

    /// Largest contiguous log position applied to the store.
    fn applied_seq(&self) -> SeqNo;

    /// Largest log position visible to read-only transactions.
    fn exposed_seq(&self) -> SeqNo;

    /// A read-only view of the exposed state.
    fn read_view(&self) -> Box<dyn ReadView>;

    /// Replication-lag samples collected so far.
    fn lag(&self) -> Arc<LagTracker>;

    /// Progress counters.
    fn metrics(&self) -> ReplicaMetrics;

    /// Blocks until the exposed cut reaches `seq` or the timeout expires;
    /// returns whether it did.
    fn wait_until_exposed(&self, seq: SeqNo, timeout: Duration) -> bool {
        c5_common::pacing::poll_until(timeout, || self.exposed_seq() >= seq)
    }

    /// Primary commit wall time (nanoseconds since the Unix epoch) of the
    /// newest transaction this replica has exposed, or `None` before the
    /// first exposure. `now - freshness_commit_nanos()` bounds the replica's
    /// staleness: everything the primary committed up to that instant is
    /// visible here. The read router maps bounded-staleness reads onto this.
    fn freshness_commit_nanos(&self) -> Option<u64> {
        self.lag().latest_covered_commit_nanos()
    }
}

/// Drives a replica from a log receiver until the log ends, then finishes it.
/// Returns the wall-clock time spent.
pub fn drive_from_receiver(
    replica: &dyn ClonedConcurrencyControl,
    receiver: LogReceiver,
) -> Duration {
    let start = Instant::now();
    while let Some(segment) = receiver.recv() {
        replica.apply_segment(segment);
    }
    replica.finish();
    start.elapsed()
}

/// Feeds a pre-materialized log to a replica and finishes it. Returns the
/// wall-clock time spent, which the offline experiments use as the backup's
/// replay time.
pub fn drive_segments(replica: &dyn ClonedConcurrencyControl, segments: Vec<Segment>) -> Duration {
    let start = Instant::now();
    for segment in segments {
        replica.apply_segment(segment);
    }
    replica.finish();
    start.elapsed()
}

/// Which of the paper's two implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum C5Mode {
    /// The faithful design (C5-Cicada, Section 7): row-granularity execution
    /// with segments distributed round-robin, deferred-write wait lists, and
    /// a timestamped snapshotter that never blocks workers.
    Faithful,
    /// The backward-compatible variant (C5-MyRocks, Section 5): every
    /// transaction's writes execute on a single worker, workers pick up
    /// transactions in commit order, and snapshots are whole-database cuts
    /// that briefly hold back writes past the cut.
    OneWorkerPerTxn,
}

impl C5Mode {
    /// Protocol name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            C5Mode::Faithful => "c5",
            C5Mode::OneWorkerPerTxn => "c5-myrocks",
        }
    }
}

/// Work items flowing from the schedule stage to the workers.
enum C5Item {
    /// A whole preprocessed segment (faithful mode). Owned: records move
    /// from here into the store or the wait list, never cloned.
    Segment(Segment),
    /// A run of consecutive *whole* transactions, in commit order
    /// (one-worker-per-transaction mode). The scheduler accumulates
    /// transactions up to `ReplicaConfig::dispatch_batch_records` records
    /// per item; a batch never splits a transaction and never spans a
    /// segment, so every transaction still executes entirely on the one
    /// worker that dequeues its batch.
    Txns(Vec<LogRecord>),
}

/// C5's ordering policy on the shared pipeline runtime.
struct C5Policy {
    mode: C5Mode,
    store: Arc<MvStore>,
    tracker: WatermarkTracker,
    cursor: SnapshotCursor,
    /// The per-row `prev_seq` stamping state; only the schedule stage locks
    /// it.
    sched: Mutex<SchedulerState>,
    /// Per-row dependency wait lists (Section 7.2's deferred-write queues in
    /// event-driven form).
    waits: RowWaitList,
    /// Version-GC horizon trailing the exposed cut.
    gc: GcDriver,
    /// Boundary/lag bookkeeping (shared with every other policy).
    ledger: BoundaryLedger,
    /// Last position of the last fully dispatched transaction.
    dispatched_boundary: AtomicU64,
    /// Target records per dispatched work item in one-worker-per-txn mode.
    dispatch_batch: usize,
    op_cost: OpCost,
    /// The configured observability sink, handed to the pipeline runtime
    /// for per-stage dwell metrics and trace events.
    obs: Arc<c5_obs::Obs>,
    applied_writes: AtomicU64,
    applied_txns: AtomicU64,
    deferred_writes: AtomicU64,
}

impl C5Policy {
    /// Installs one log record's write, enforcing the per-row order: the
    /// write applies only when the row's most recent version is the one named
    /// by `prev_seq`. Returns whether it applied.
    ///
    /// An applied record's watermark mark is *buffered* into `marks` instead
    /// of published immediately; the worker flushes the buffer in one
    /// [`WatermarkTracker::mark_applied_batch`] call when its current work
    /// item ends. Deferring publication by at most one item is safe in both
    /// modes: store-level install ordering (what other workers' installs and
    /// parked records wait on) is untouched, and the snapshotter only ever
    /// waits for marks of records whose items were dispatched *before* the
    /// cut was chosen — items that flush unconditionally on completion,
    /// because a dispatched item lies entirely at or below the dispatch
    /// boundary the cut reads, so none of its installs can block on the cut
    /// gate.
    fn try_install(&self, record: &LogRecord, marks: &RefCell<Vec<(SeqNo, bool)>>) -> bool {
        let applied = self.cursor.install_gated(record.seq, || {
            self.store.install_if_prev(
                record.write.row,
                Timestamp(record.prev_seq.as_u64()),
                Timestamp(record.seq.as_u64()),
                record.write.kind,
                record.write.value.clone(),
            )
        });
        if applied {
            self.op_cost.charge_backup();
            marks.borrow_mut().push((record.seq, record.is_txn_last()));
            self.applied_writes.fetch_add(1, Ordering::Relaxed);
            if record.is_txn_last() {
                self.applied_txns.fetch_add(1, Ordering::Relaxed);
            }
        }
        applied
    }

    /// Publishes a worker's buffered watermark marks.
    fn flush_marks(&self, marks: &RefCell<Vec<(SeqNo, bool)>>) {
        self.tracker.mark_applied_batch(&marks.borrow());
        marks.borrow_mut().clear();
    }
}

impl PipelinePolicy for C5Policy {
    type Item = C5Item;

    fn name(&self) -> &'static str {
        self.mode.name()
    }

    fn schedule(&self, mut segment: Segment, sink: &mut WorkSink<C5Item>) {
        self.sched.lock().process_segment(&mut segment);
        // Record transaction boundaries for lag accounting, in log order.
        self.ledger.note_segment(&segment);
        match self.mode {
            C5Mode::Faithful => {
                // Only the one-worker-per-txn snapshotter reads this counter
                // (the faithful cursor advances via boundary_watermark), but
                // keep it maintained with the same store-before-send ordering
                // so it stays a safe cut bound in both modes.
                if let Some(last) = segment.last_seq() {
                    self.dispatched_boundary
                        .store(last.as_u64(), Ordering::Release);
                }
                sink.send(C5Item::Segment(segment));
            }
            C5Mode::OneWorkerPerTxn => {
                // Split the segment into whole transactions and push runs of
                // them to the shared queue in commit order, batching
                // consecutive transactions into one item until it holds
                // `dispatch_batch` records (a single larger transaction still
                // travels alone; a batch never spans a segment). Batching
                // only changes how many transactions one dequeue hands a
                // worker — each transaction still executes entirely on that
                // worker — while cutting channel traffic by the batch factor.
                let mut batch: Vec<LogRecord> = Vec::new();
                let mut batch_boundary = SeqNo::ZERO;
                for record in segment.records {
                    let is_last = record.is_txn_last();
                    let seq = record.seq;
                    batch.push(record);
                    if is_last {
                        batch_boundary = seq;
                        if batch.len() >= self.dispatch_batch {
                            // Publish the boundary BEFORE the send: the
                            // moment a batch is in the queue a worker may
                            // install its writes, and the snapshotter's
                            // choose_n must never pick a cut below an
                            // already-installed write.
                            self.dispatched_boundary
                                .store(batch_boundary.as_u64(), Ordering::Release);
                            sink.send(C5Item::Txns(std::mem::take(&mut batch)));
                            if sink.workers_gone() {
                                return;
                            }
                        }
                    }
                }
                if let Some(last) = batch.last() {
                    debug_assert!(last.is_txn_last(), "segments never split transactions");
                    self.dispatched_boundary
                        .store(batch_boundary.as_u64(), Ordering::Release);
                    sink.send(C5Item::Txns(batch));
                }
            }
        }
    }

    fn apply(&self, _worker: usize, item: C5Item, signals: &PipelineSignals) {
        // Watermark marks accumulate here per work item and publish in one
        // batched call when the item completes (see `try_install` for why
        // the deferred publication is safe). The buffer also collects the
        // marks of *parked* records this worker installs on behalf of others
        // while cascading a wait-list shard — they flush with the item.
        let marks = RefCell::new(Vec::new());
        match item {
            C5Item::Segment(segment) => {
                // Faithful mode: install each record as soon as its per-row
                // predecessor is in place; otherwise the record moves into
                // the wait list and the worker that installs the predecessor
                // finishes the job. No retries, no clones.
                for record in segment.records {
                    if self
                        .waits
                        .install_or_park(record, &|r| self.try_install(r, &marks))
                    {
                        self.deferred_writes.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            C5Item::Txns(records) => {
                // One worker executes each whole transaction in the batch,
                // write by write, sleeping on each write's per-row
                // predecessor until another worker installs it (Section 5.1).
                for record in &records {
                    match self.waits.install_blocking(
                        record,
                        &|r| self.try_install(r, &marks),
                        &|| signals.shutdown_requested(),
                    ) {
                        BlockingInstall::Installed => {}
                        BlockingInstall::InstalledAfterWait => {
                            self.deferred_writes.fetch_add(1, Ordering::Relaxed);
                        }
                        BlockingInstall::Aborted => break,
                    }
                }
            }
        }
        self.flush_marks(&marks);
    }

    fn expose(&self, signals: &PipelineSignals) {
        match self.mode {
            C5Mode::Faithful => {
                let n = self.tracker.boundary_watermark();
                if n > self.cursor.exposed() {
                    self.cursor.advance(n);
                    self.ledger.drain_exposed(n);
                }
            }
            C5Mode::OneWorkerPerTxn => {
                let target = self.tracker.boundary_watermark();
                if target > self.cursor.exposed() {
                    let tracker = &self.tracker;
                    let n = self.cursor.cut(
                        // Choose n at the last fully dispatched transaction:
                        // nothing beyond it can be in the store, and
                        // everything up to it will be applied shortly.
                        || SeqNo(self.dispatched_boundary.load(Ordering::Acquire)),
                        |n| {
                            while tracker.applied_watermark() < n && !signals.shutdown_requested() {
                                std::thread::sleep(Duration::from_micros(50));
                            }
                        },
                    );
                    self.ledger.drain_exposed(n);
                }
            }
        }
    }

    fn collect_garbage(&self) {
        self.gc.run(self.cursor.exposed());
    }

    fn interrupt(&self) {
        self.waits.wake_all();
    }

    fn applied_seq(&self) -> SeqNo {
        self.tracker.applied_watermark()
    }

    fn exposure_target(&self) -> SeqNo {
        self.tracker.boundary_watermark()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.cursor.exposed()
    }

    fn shipped_seq(&self) -> SeqNo {
        self.ledger.shipped_seq()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        self.cursor.read_view()
    }

    fn lag(&self) -> Arc<LagTracker> {
        Arc::clone(self.ledger.lag())
    }

    fn metrics(&self) -> ReplicaMetrics {
        // Mid-run snapshots are read downstream-first — exposed before
        // applied, positions before counters — so the invariants between
        // the fields (exposed ≤ applied; every counted transaction's
        // writes already counted) hold in the returned struct even while
        // workers race ahead between the loads. Acquire pairs with the
        // workers' counter publications.
        let exposed_seq = self.exposed_seq();
        let applied_seq = self.applied_seq();
        let applied_txns = self.applied_txns.load(Ordering::Acquire);
        let applied_writes = self.applied_writes.load(Ordering::Acquire);
        ReplicaMetrics {
            applied_writes,
            applied_txns,
            applied_seq,
            exposed_seq,
            deferred_writes: self.deferred_writes.load(Ordering::Relaxed),
            reclaimed_versions: self.gc.reclaimed(),
            cross_shard_txns: 0,
        }
    }

    fn obs(&self) -> Arc<c5_obs::Obs> {
        Arc::clone(&self.obs)
    }

    fn store(&self) -> &Arc<MvStore> {
        &self.store
    }
}

/// The C5 replica.
pub struct C5Replica {
    mode: C5Mode,
    config: ReplicaConfig,
    runtime: PipelineRuntime<C5Policy>,
}

impl C5Replica {
    /// Creates and starts a C5 replica over `store` (which should already
    /// hold the initial database population, installed at `Timestamp::ZERO`).
    pub fn new(mode: C5Mode, store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        Self::start(mode, store, config, SeqNo::ZERO, std::iter::empty())
    }

    /// Creates and starts a **cold replica resuming from a checkpoint**: the
    /// checkpoint is installed into a fresh store and the replica is seeded
    /// to continue the log at `checkpoint.cut() + 1` — typically from
    /// [`c5_log::LogArchive::replay_from`] at the checkpoint's cut, then the
    /// live stream. This is the failover catch-up path: install, replay the
    /// retained tail, keep up.
    ///
    /// # Panics
    /// Panics if the checkpoint holds versions above its cut — the signature
    /// of a *vector* capture from a sharded replica, whose advanced shard
    /// components this replica cannot reconcile with a whole-log replay
    /// from the global cut (the records in `(cut, component]` would be
    /// re-delivered against chain heads already past them and wedge).
    pub fn resume_from_checkpoint(
        mode: C5Mode,
        checkpoint: &Checkpoint,
        config: ReplicaConfig,
    ) -> Arc<Self> {
        assert!(
            checkpoint.max_version() <= checkpoint.cut(),
            "checkpoint holds versions through {} but its cut is {}: a \
             sharded vector capture cannot bootstrap an unsharded replica",
            checkpoint.max_version(),
            checkpoint.cut()
        );
        let store = CheckpointInstaller::install(checkpoint);
        Self::start(
            mode,
            store,
            config,
            checkpoint.cut(),
            checkpoint.last_writes(),
        )
    }

    /// Creates and starts a replica whose log begins at `cut + 1` over a
    /// store already holding everything at or below `cut`. Every
    /// prefix-tracking structure must resume in lockstep, or catch-up wedges:
    /// the scheduler's per-row `prev_seq` map is seeded from `last_writes`
    /// (so the first post-checkpoint write to a row names the checkpointed
    /// chain head, not "no predecessor"), the watermark tracker and boundary
    /// ledger treat the cut as already applied and shipped, and the snapshot
    /// cursor starts exposed at the cut.
    fn start(
        mode: C5Mode,
        store: Arc<MvStore>,
        config: ReplicaConfig,
        cut: SeqNo,
        last_writes: impl IntoIterator<Item = (RowRef, SeqNo)>,
    ) -> Arc<Self> {
        config
            .validate()
            .expect("replica configuration must be valid");
        let cursor = match mode {
            C5Mode::Faithful => SnapshotCursor::timestamped_at(Arc::clone(&store), cut),
            C5Mode::OneWorkerPerTxn => SnapshotCursor::whole_database_at(Arc::clone(&store), cut),
        };
        let policy = Arc::new(C5Policy {
            mode,
            store: Arc::clone(&store),
            tracker: WatermarkTracker::starting_at(cut),
            cursor,
            sched: Mutex::new(SchedulerState::with_last_writes(last_writes)),
            waits: RowWaitList::default(),
            gc: GcDriver::new(store, config.gc_trail),
            ledger: BoundaryLedger::starting_at(cut),
            dispatched_boundary: AtomicU64::new(cut.as_u64()),
            dispatch_batch: config.dispatch_batch_records,
            op_cost: config.op_cost,
            obs: Arc::clone(&config.obs),
            applied_writes: AtomicU64::new(0),
            applied_txns: AtomicU64::new(0),
            deferred_writes: AtomicU64::new(0),
        });
        let queue = match mode {
            // Segments are assigned round-robin to per-worker queues
            // (Section 7.2).
            C5Mode::Faithful => QueuePlan::PerWorker { capacity: 256 },
            // Workers pick up whole transactions from a shared queue in
            // commit order (Section 5.1).
            C5Mode::OneWorkerPerTxn => QueuePlan::Shared { capacity: 1024 },
        };
        let options = PipelineOptions {
            workers: config.workers,
            queue,
            ingest_capacity: config.segment_channel_capacity,
            expose_interval: config.snapshot_interval,
            label: mode.name(),
        };
        Arc::new(Self {
            mode,
            config,
            runtime: PipelineRuntime::start(policy, options),
        })
    }

    /// The replica's configuration.
    pub fn config(&self) -> &ReplicaConfig {
        &self.config
    }

    /// Which of the paper's two implementations this replica runs.
    pub fn mode(&self) -> C5Mode {
        self.mode
    }

    /// The backup's store (for test assertions).
    pub fn store(&self) -> &Arc<MvStore> {
        &self.runtime.policy().store
    }

    /// Exports a checkpoint of the currently exposed state. The cut is
    /// pinned through a read view first, so it is transaction-aligned and
    /// stable while the export scans; applies may continue concurrently.
    ///
    /// # Panics
    /// Panics if the version-GC horizon overtook the cut while the export
    /// ran (possible only when `gc_trail` is smaller than the exposure the
    /// expose stage makes during one export scan): a horizon past the cut
    /// may have collected the very versions the export needed, so the
    /// checkpoint cannot be trusted. The horizon is monotone, so checking it
    /// *after* the scan proves the whole scan was safe.
    pub fn checkpoint(&self) -> Checkpoint {
        let view = self.read_view();
        let checkpoint = CheckpointWriter::capture(self.store(), view.as_of());
        let horizon = self.runtime.policy().gc.horizon();
        assert!(
            horizon <= checkpoint.cut(),
            "GC horizon {horizon} overtook the checkpoint cut {} during the \
             export — raise gc_trail so the trail covers the capture window",
            checkpoint.cut()
        );
        checkpoint
    }
}

crate::delegate_replica_to_pipeline!(C5Replica, runtime);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpc::MpcChecker;
    use c5_common::{RowWrite, TxnId};
    use c5_log::{segments_from_entries, TxnEntry};

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    /// Builds a log of `txns` transactions, each writing `writes_per_txn`
    /// unique rows plus one update to the shared hot row 0 (the adversarial
    /// shape).
    fn adversarial_log(txns: u64, writes_per_txn: u64, segment_records: usize) -> Vec<Segment> {
        let mut entries = Vec::new();
        for t in 0..txns {
            let mut writes = Vec::new();
            for i in 0..writes_per_txn {
                writes.push(RowWrite::insert(
                    row(1 + t * writes_per_txn + i),
                    Value::from_u64(i),
                ));
            }
            writes.push(RowWrite::update(row(0), Value::from_u64(t + 1)));
            entries.push(TxnEntry::new(TxnId(t + 1), Timestamp(t + 1), writes));
        }
        segments_from_entries(&entries, segment_records)
    }

    fn replica(mode: C5Mode, workers: usize) -> Arc<C5Replica> {
        let store = Arc::new(MvStore::default());
        store.install(
            row(0),
            Timestamp::ZERO,
            c5_common::WriteKind::Insert,
            Some(Value::from_u64(0)),
        );
        let config = ReplicaConfig::default()
            .with_workers(workers)
            .with_snapshot_interval(Duration::from_millis(1));
        C5Replica::new(mode, store, config)
    }

    fn run_mode(mode: C5Mode) {
        let replica = replica(mode, 4);
        let segments = adversarial_log(50, 4, 16);
        let total_writes: u64 = segments.iter().map(|s| s.len() as u64).sum();
        let last_seq = segments.last().unwrap().last_seq().unwrap();

        drive_segments(replica.as_ref(), segments);

        let metrics = replica.metrics();
        assert_eq!(metrics.applied_writes, total_writes);
        assert_eq!(metrics.applied_txns, 50);
        assert_eq!(metrics.applied_seq, last_seq);
        assert_eq!(metrics.exposed_seq, last_seq);

        // The hot row saw every update in order; its final value is the last
        // transaction's.
        let view = replica.read_view();
        assert_eq!(view.get(row(0)).unwrap().as_u64(), Some(50));
        assert_eq!(view.as_of(), last_seq);

        // One lag sample per transaction.
        assert_eq!(replica.lag().len(), 50);

        // Event-driven deferral leaves nothing parked once the log drains.
        assert_eq!(replica.runtime.policy().waits.parked(), 0);
    }

    #[test]
    fn faithful_mode_applies_and_exposes_everything() {
        run_mode(C5Mode::Faithful);
    }

    /// Batched dispatch is a scheduling change, not a semantic one: the same
    /// mixed log driven through per-transaction dispatch (`dispatch_batch 1`)
    /// and the default batched dispatch must expose byte-identical state,
    /// and both must match the serial ground truth.
    #[test]
    fn batched_dispatch_matches_per_record_dispatch() {
        let segments = adversarial_log(120, 3, 16);
        let population = vec![(row(0), Value::from_u64(0))];
        for mode in [C5Mode::Faithful, C5Mode::OneWorkerPerTxn] {
            let mut states = Vec::new();
            for batch in [1usize, 64] {
                let store = Arc::new(MvStore::default());
                store.install(
                    row(0),
                    Timestamp::ZERO,
                    c5_common::WriteKind::Insert,
                    Some(Value::from_u64(0)),
                );
                let config = ReplicaConfig::default()
                    .with_workers(4)
                    .with_snapshot_interval(Duration::from_millis(1))
                    .with_dispatch_batch(batch);
                let replica = C5Replica::new(mode, store, config);
                drive_segments(replica.as_ref(), segments.clone());

                let view = replica.read_view();
                let mut checker = MpcChecker::new(&population, &segments);
                checker
                    .verify_state(view.as_of(), view.scan_all())
                    .unwrap_or_else(|e| panic!("{mode:?} batch {batch}: {e:?}"));
                states.push((view.as_of(), view.scan_all()));
            }
            assert_eq!(
                states[0], states[1],
                "{mode:?}: batched dispatch must expose the same state as \
                 per-transaction dispatch"
            );
        }
    }

    #[test]
    fn one_worker_per_txn_mode_applies_and_exposes_everything() {
        run_mode(C5Mode::OneWorkerPerTxn);
    }

    #[test]
    fn finish_is_idempotent_and_drop_is_safe() {
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(5, 2, 8);
        drive_segments(replica.as_ref(), segments);
        replica.finish();
        replica.finish();
        drop(replica);
    }

    #[test]
    fn exposed_cut_is_monotonic_and_txn_aligned() {
        let store = Arc::new(MvStore::default());
        let config = ReplicaConfig::default()
            .with_workers(2)
            .with_snapshot_interval(Duration::from_micros(200));
        let replica = C5Replica::new(C5Mode::Faithful, store, config);

        let segments = adversarial_log(200, 2, 8);
        // Collect boundary positions: exposed cuts must always land on one.
        let mut boundary_set = std::collections::HashSet::new();
        boundary_set.insert(0u64);
        for seg in &segments {
            for r in &seg.records {
                if r.is_txn_last() {
                    boundary_set.insert(r.seq.as_u64());
                }
            }
        }

        let replica_clone = Arc::clone(&replica);
        let observer = std::thread::spawn(move || {
            let mut last = SeqNo::ZERO;
            let mut observations = Vec::new();
            for _ in 0..2000 {
                let e = replica_clone.exposed_seq();
                observations.push(e);
                assert!(e >= last, "exposed cut must never move backwards");
                last = e;
                std::thread::sleep(Duration::from_micros(50));
            }
            observations
        });

        drive_segments(replica.as_ref(), segments);
        let observations = observer.join().unwrap();
        for seq in observations {
            assert!(
                boundary_set.contains(&seq.as_u64()),
                "exposed cut {seq} is not a transaction boundary"
            );
        }
    }

    #[test]
    fn read_views_are_stable_snapshots() {
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(10, 2, 4);
        for seg in segments.clone() {
            replica.apply_segment(seg);
        }
        let view_before = replica.read_view();
        let as_of_before = view_before.as_of();
        replica.finish();
        // The view taken earlier still answers as of its own cut.
        assert_eq!(view_before.as_of(), as_of_before);
        // A fresh view sees the final state.
        assert_eq!(replica.read_view().get(row(0)).unwrap().as_u64(), Some(10));
    }

    #[test]
    fn lag_samples_measure_commit_to_visibility() {
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(20, 1, 8);
        drive_segments(replica.as_ref(), segments);
        let lag = replica.lag();
        let stats = lag.stats().expect("samples exist");
        assert_eq!(stats.count, 20);
        assert!(stats.min_ms >= 0.0);
        assert!(
            stats.max_ms < 60_000.0,
            "lag should be far below a minute in tests"
        );
    }

    #[test]
    fn gc_horizon_reclaims_versions_behind_the_exposed_cut() {
        // A log of updates to one hot row grows a long version chain; with a
        // zero trail the expose stage reclaims everything behind the cut.
        let store = Arc::new(MvStore::default());
        store.install(
            row(0),
            Timestamp::ZERO,
            c5_common::WriteKind::Insert,
            Some(Value::from_u64(0)),
        );
        let config = ReplicaConfig::default()
            .with_workers(2)
            .with_snapshot_interval(Duration::from_micros(500))
            .with_gc_trail(0);
        let replica = C5Replica::new(C5Mode::Faithful, Arc::clone(&store), config);

        let entries: Vec<TxnEntry> = (1..=500u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![RowWrite::update(row(0), Value::from_u64(t))],
                )
            })
            .collect();
        drive_segments(replica.as_ref(), segments_from_entries(&entries, 16));

        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 500);
        assert!(
            metrics.reclaimed_versions > 0,
            "the hot row's chain must have been collected"
        );
        // The chain is bounded: everything behind the final horizon is gone.
        assert!(
            store.stats().versions < 500,
            "version chains must not grow without bound (got {})",
            store.stats().versions
        );
        // The exposed state is untouched.
        assert_eq!(replica.read_view().get(row(0)).unwrap().as_u64(), Some(500));
    }

    #[test]
    fn deferred_writes_are_counted_once_per_wait() {
        // Force deferral deterministically: 2 workers, hot-row-only txns, so
        // round-robin segments race on the row chain.
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(100, 1, 4);
        drive_segments(replica.as_ref(), segments);
        let metrics = replica.metrics();
        // Every write applied exactly once regardless of how many parked.
        assert_eq!(metrics.applied_txns, 100);
        assert!(
            metrics.deferred_writes <= metrics.applied_writes,
            "a write defers at most once: {} > {}",
            metrics.deferred_writes,
            metrics.applied_writes
        );
    }
}
