//! The replica trait and the C5 replica.
//!
//! [`ClonedConcurrencyControl`] is the interface every backup protocol in
//! this workspace implements — C5 in both modes here, and the baselines in
//! `c5-baselines`. The experiment harness, the monotonic-prefix-consistency
//! checker, and the lag metrics are all written once against this trait, so
//! every protocol is measured identically.
//!
//! [`C5Replica`] is the paper's protocol. Internally it runs:
//!
//! * one **scheduler** thread consuming shipped segments, stamping every
//!   record with the position of the previous write to its row
//!   ([`crate::scheduler`]), recording transaction boundaries for the lag
//!   metrics, and dispatching work to the workers;
//! * `workers` **worker** threads applying row writes. In
//!   [`C5Mode::Faithful`] workers receive whole segments round-robin and
//!   apply each record as soon as its per-row predecessor is in place,
//!   deferring it otherwise (Section 7.2). In [`C5Mode::OneWorkerPerTxn`]
//!   workers pull whole transactions from a shared queue in commit order and
//!   apply each transaction's writes in order, waiting on each write's
//!   predecessor (Section 5.1's backward-compatibility constraint);
//! * one **snapshotter** thread advancing the exposed cut
//!   ([`crate::snapshotter`]) every `snapshot_interval` and recording one
//!   replication-lag sample per transaction as it becomes visible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

use c5_common::{OpCost, ReplicaConfig, RowRef, SeqNo, TableId, Timestamp, Value};
use c5_log::{now_nanos, LogReceiver, LogRecord, Segment};
use c5_storage::MvStore;

use crate::lag::LagTracker;
use crate::progress::WatermarkTracker;
use crate::scheduler::SchedulerState;
use crate::snapshotter::SnapshotCursor;

/// A read-only view of the backup's exposed state, pinned at creation time.
pub trait ReadView: Send {
    /// Reads a row (point query).
    fn get(&self, row: RowRef) -> Option<Value>;
    /// The log position this view reflects.
    fn as_of(&self) -> SeqNo;
    /// Unordered scan of one table.
    fn scan_table(&self, table: TableId) -> Vec<(RowRef, Value)>;
    /// Unordered scan of the whole database (used by the consistency
    /// checker).
    fn scan_all(&self) -> Vec<(RowRef, Value)>;
}

/// Counters describing a replica's progress, exposed uniformly by every
/// protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// Row writes applied to the backup's store.
    pub applied_writes: u64,
    /// Transactions whose final write has been applied.
    pub applied_txns: u64,
    /// Largest contiguous applied log position.
    pub applied_seq: SeqNo,
    /// Largest log position exposed to read-only transactions.
    pub exposed_seq: SeqNo,
    /// Number of times a write had to be deferred/retried because its
    /// per-row predecessor had not executed yet.
    pub deferred_retries: u64,
}

/// The interface shared by C5 and every baseline cloned concurrency control
/// protocol.
pub trait ClonedConcurrencyControl: Send + Sync {
    /// Short protocol name for reports (e.g. `"c5"`, `"kuafu"`).
    fn name(&self) -> &'static str;

    /// Feeds one log segment. May block for backpressure.
    fn apply_segment(&self, segment: Segment);

    /// Signals end-of-log, waits for every shipped write to be applied and
    /// exposed, and stops the protocol's threads. Idempotent.
    fn finish(&self);

    /// Largest contiguous log position applied to the store.
    fn applied_seq(&self) -> SeqNo;

    /// Largest log position visible to read-only transactions.
    fn exposed_seq(&self) -> SeqNo;

    /// A read-only view of the exposed state.
    fn read_view(&self) -> Box<dyn ReadView>;

    /// Replication-lag samples collected so far.
    fn lag(&self) -> Arc<LagTracker>;

    /// Progress counters.
    fn metrics(&self) -> ReplicaMetrics;

    /// Blocks until the exposed cut reaches `seq` or the timeout expires;
    /// returns whether it did.
    fn wait_until_exposed(&self, seq: SeqNo, timeout: Duration) -> bool {
        let start = Instant::now();
        while self.exposed_seq() < seq {
            if start.elapsed() > timeout {
                return false;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        true
    }
}

/// Drives a replica from a log receiver until the log ends, then finishes it.
/// Returns the wall-clock time spent.
pub fn drive_from_receiver(
    replica: &dyn ClonedConcurrencyControl,
    receiver: LogReceiver,
) -> Duration {
    let start = Instant::now();
    while let Some(segment) = receiver.recv() {
        replica.apply_segment(segment);
    }
    replica.finish();
    start.elapsed()
}

/// Feeds a pre-materialized log to a replica and finishes it. Returns the
/// wall-clock time spent, which the offline experiments use as the backup's
/// replay time.
pub fn drive_segments(replica: &dyn ClonedConcurrencyControl, segments: Vec<Segment>) -> Duration {
    let start = Instant::now();
    for segment in segments {
        replica.apply_segment(segment);
    }
    replica.finish();
    start.elapsed()
}

/// Which of the paper's two implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum C5Mode {
    /// The faithful design (C5-Cicada, Section 7): row-granularity execution
    /// with segments distributed round-robin, deferred-write queues, and a
    /// timestamped snapshotter that never blocks workers.
    Faithful,
    /// The backward-compatible variant (C5-MyRocks, Section 5): every
    /// transaction's writes execute on a single worker, workers pick up
    /// transactions in commit order, and snapshots are whole-database cuts
    /// that briefly hold back writes past the cut.
    OneWorkerPerTxn,
}

impl C5Mode {
    /// Protocol name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            C5Mode::Faithful => "c5",
            C5Mode::OneWorkerPerTxn => "c5-myrocks",
        }
    }
}

/// Work items flowing from the scheduler to the workers.
enum WorkItem {
    /// A whole preprocessed segment (faithful mode).
    Segment(Arc<Segment>),
    /// One transaction's records (one-worker-per-transaction mode).
    Txn(Vec<LogRecord>),
}

struct Shared {
    store: Arc<MvStore>,
    tracker: WatermarkTracker,
    lag: Arc<LagTracker>,
    cursor: SnapshotCursor,
    /// Transaction boundaries (last-write position, primary commit time) in
    /// log order, waiting to be matched against the exposed cut.
    boundaries: Mutex<std::collections::VecDeque<(SeqNo, u64)>>,
    /// Last position of the last fully dispatched transaction.
    dispatched_boundary: AtomicU64,
    /// Last position processed by the scheduler (end of log once
    /// `ingest_done`).
    final_seq: AtomicU64,
    ingest_done: AtomicBool,
    shutdown: AtomicBool,
    op_cost: OpCost,
    applied_writes: AtomicU64,
    applied_txns: AtomicU64,
    deferred_retries: AtomicU64,
}

impl Shared {
    /// Installs one log record's write, enforcing the per-row order: the
    /// write applies only when the row's most recent version is the one named
    /// by `prev_seq`. Returns whether it applied.
    fn try_install(&self, record: &LogRecord) -> bool {
        let applied = self.cursor.install_gated(record.seq, || {
            self.store.install_if_prev(
                record.write.row,
                Timestamp(record.prev_seq.as_u64()),
                Timestamp(record.seq.as_u64()),
                record.write.kind,
                record.write.value.clone(),
            )
        });
        if applied {
            self.op_cost.charge_backup();
            self.tracker.mark_applied(record.seq, record.is_txn_last());
            self.applied_writes.fetch_add(1, Ordering::Relaxed);
            if record.is_txn_last() {
                self.applied_txns.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.deferred_retries.fetch_add(1, Ordering::Relaxed);
        }
        applied
    }

    /// Records lag samples for every transaction boundary now covered by the
    /// exposed cut.
    fn drain_exposed_boundaries(&self, exposed: SeqNo) {
        let now = now_nanos();
        let mut boundaries = self.boundaries.lock();
        while let Some(&(seq, committed_at)) = boundaries.front() {
            if seq <= exposed {
                boundaries.pop_front();
                self.lag.record(seq, committed_at, now);
            } else {
                break;
            }
        }
    }
}

/// The C5 replica.
pub struct C5Replica {
    mode: C5Mode,
    config: ReplicaConfig,
    shared: Arc<Shared>,
    ingest_tx: Mutex<Option<Sender<Segment>>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    finished: AtomicBool,
}

impl C5Replica {
    /// Creates and starts a C5 replica over `store` (which should already
    /// hold the initial database population, installed at `Timestamp::ZERO`).
    pub fn new(mode: C5Mode, store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        config
            .validate()
            .expect("replica configuration must be valid");
        let cursor = match mode {
            C5Mode::Faithful => SnapshotCursor::timestamped(Arc::clone(&store)),
            C5Mode::OneWorkerPerTxn => SnapshotCursor::whole_database(Arc::clone(&store)),
        };
        let shared = Arc::new(Shared {
            store,
            tracker: WatermarkTracker::new(),
            lag: Arc::new(LagTracker::new()),
            cursor,
            boundaries: Mutex::new(std::collections::VecDeque::new()),
            dispatched_boundary: AtomicU64::new(0),
            final_seq: AtomicU64::new(0),
            ingest_done: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            op_cost: config.op_cost,
            applied_writes: AtomicU64::new(0),
            applied_txns: AtomicU64::new(0),
            deferred_retries: AtomicU64::new(0),
        });

        let (ingest_tx, ingest_rx) = bounded::<Segment>(config.segment_channel_capacity);
        let mut threads = Vec::new();

        // Worker channels. The faithful mode gives each worker its own queue
        // (segments are assigned round-robin, Section 7.2); the
        // one-worker-per-transaction mode uses a single shared queue from
        // which workers pick up whole transactions in commit order
        // (Section 5.1).
        let workers = config.workers;
        let mut worker_txs: Vec<Sender<WorkItem>> = Vec::new();
        match mode {
            C5Mode::Faithful => {
                for worker_id in 0..workers {
                    let (tx, rx) = bounded::<WorkItem>(256);
                    worker_txs.push(tx);
                    let shared_w = Arc::clone(&shared);
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("c5-worker-{worker_id}"))
                            .spawn(move || worker_loop(shared_w, rx))
                            .expect("spawn worker"),
                    );
                }
            }
            C5Mode::OneWorkerPerTxn => {
                let (tx, rx) = bounded::<WorkItem>(1024);
                worker_txs.push(tx);
                for worker_id in 0..workers {
                    let shared_w = Arc::clone(&shared);
                    let rx = rx.clone();
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("c5-worker-{worker_id}"))
                            .spawn(move || worker_loop(shared_w, rx))
                            .expect("spawn worker"),
                    );
                }
            }
        }

        // Scheduler thread.
        let shared_s = Arc::clone(&shared);
        let sched_mode = mode;
        threads.push(
            std::thread::Builder::new()
                .name("c5-scheduler".into())
                .spawn(move || scheduler_loop(shared_s, sched_mode, ingest_rx, worker_txs))
                .expect("spawn scheduler"),
        );

        // Snapshotter thread.
        let shared_n = Arc::clone(&shared);
        let interval = config.snapshot_interval;
        let snap_mode = mode;
        threads.push(
            std::thread::Builder::new()
                .name("c5-snapshotter".into())
                .spawn(move || snapshotter_loop(shared_n, snap_mode, interval))
                .expect("spawn snapshotter"),
        );

        Arc::new(Self {
            mode,
            config,
            shared,
            ingest_tx: Mutex::new(Some(ingest_tx)),
            threads: Mutex::new(threads),
            finished: AtomicBool::new(false),
        })
    }

    /// The replica's configuration.
    pub fn config(&self) -> &ReplicaConfig {
        &self.config
    }

    /// Which of the paper's two implementations this replica runs.
    pub fn mode(&self) -> C5Mode {
        self.mode
    }

    /// The backup's store (for test assertions).
    pub fn store(&self) -> &Arc<MvStore> {
        &self.shared.store
    }
}

impl ClonedConcurrencyControl for C5Replica {
    fn name(&self) -> &'static str {
        self.mode.name()
    }

    fn apply_segment(&self, segment: Segment) {
        let guard = self.ingest_tx.lock();
        if let Some(tx) = guard.as_ref() {
            // A send error means the scheduler exited (shutdown); drop the
            // segment in that case.
            let _ = tx.send(segment);
        }
    }

    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        // Close the ingest channel so the scheduler (and then the workers)
        // drain and exit.
        self.ingest_tx.lock().take();
        // Wait for ingestion to finish and every write to be applied.
        while !self.shared.ingest_done.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_micros(200));
        }
        let final_seq = SeqNo(self.shared.final_seq.load(Ordering::Acquire));
        while self.shared.tracker.applied_watermark() < final_seq {
            std::thread::sleep(Duration::from_micros(200));
        }
        // Let the snapshotter expose the final prefix, then stop it.
        while self.exposed_seq() < self.shared.tracker.boundary_watermark() {
            std::thread::sleep(Duration::from_micros(200));
        }
        self.shared.shutdown.store(true, Ordering::Release);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }

    fn applied_seq(&self) -> SeqNo {
        self.shared.tracker.applied_watermark()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.shared.cursor.exposed()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        self.shared.cursor.read_view()
    }

    fn lag(&self) -> Arc<LagTracker> {
        Arc::clone(&self.shared.lag)
    }

    fn metrics(&self) -> ReplicaMetrics {
        ReplicaMetrics {
            applied_writes: self.shared.applied_writes.load(Ordering::Relaxed),
            applied_txns: self.shared.applied_txns.load(Ordering::Relaxed),
            applied_seq: self.applied_seq(),
            exposed_seq: self.exposed_seq(),
            deferred_retries: self.shared.deferred_retries.load(Ordering::Relaxed),
        }
    }
}

impl Drop for C5Replica {
    fn drop(&mut self) {
        // Make sure background threads stop even if the caller forgot to call
        // finish(); without the full drain semantics, just signal shutdown.
        self.ingest_tx.lock().take();
        self.shared.shutdown.store(true, Ordering::Release);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// The scheduler loop: preprocesses segments and dispatches work.
fn scheduler_loop(
    shared: Arc<Shared>,
    mode: C5Mode,
    ingest_rx: Receiver<Segment>,
    worker_txs: Vec<Sender<WorkItem>>,
) {
    let mut state = SchedulerState::new();
    let mut next_worker = 0usize;
    let mut workers_gone = false;
    while let Ok(mut segment) = ingest_rx.recv() {
        if workers_gone {
            break;
        }
        state.process_segment(&mut segment);
        // Record transaction boundaries for lag accounting, in log order.
        {
            let mut boundaries = shared.boundaries.lock();
            for record in &segment.records {
                if record.is_txn_last() {
                    boundaries.push_back((record.seq, record.commit_wall_nanos));
                }
            }
        }
        if let Some(last) = segment.last_seq() {
            shared.final_seq.store(last.as_u64(), Ordering::Release);
        }
        match mode {
            C5Mode::Faithful => {
                let last = segment.last_seq();
                // Only the one-worker-per-txn snapshotter reads this counter
                // (the faithful cursor advances via boundary_watermark), but
                // keep it maintained with the same store-before-send ordering
                // so it stays a safe cut bound in both modes.
                if let Some(last) = last {
                    shared
                        .dispatched_boundary
                        .store(last.as_u64(), Ordering::Release);
                }
                let item = WorkItem::Segment(Arc::new(segment));
                if worker_txs[next_worker].send(item).is_err() {
                    workers_gone = true;
                }
                next_worker = (next_worker + 1) % worker_txs.len();
            }
            C5Mode::OneWorkerPerTxn => {
                // Split the segment into whole transactions and push them to
                // the shared queue (worker_txs[0]) in commit order.
                let mut current: Vec<LogRecord> = Vec::new();
                for record in segment.records.iter() {
                    let is_last = record.is_txn_last();
                    let seq = record.seq;
                    current.push(record.clone());
                    if is_last {
                        let txn = std::mem::take(&mut current);
                        // Publish the boundary BEFORE the send: the moment a
                        // transaction is in the queue a worker may install its
                        // writes, and the snapshotter's choose_n must never
                        // pick a cut below an already-installed write.
                        shared
                            .dispatched_boundary
                            .store(seq.as_u64(), Ordering::Release);
                        if worker_txs[0].send(WorkItem::Txn(txn)).is_err() {
                            workers_gone = true;
                            break;
                        }
                    }
                }
                debug_assert!(
                    workers_gone || current.is_empty(),
                    "segments never split transactions"
                );
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
    shared.ingest_done.store(true, Ordering::Release);
    // Dropping the senders signals end-of-work to the workers.
    drop(worker_txs);
}

/// The worker loop shared by both modes.
fn worker_loop(shared: Arc<Shared>, rx: Receiver<WorkItem>) {
    let mut deferred: std::collections::VecDeque<LogRecord> = std::collections::VecDeque::new();
    loop {
        match rx.recv_timeout(Duration::from_millis(1)) {
            Ok(WorkItem::Segment(segment)) => {
                for record in &segment.records {
                    if !shared.try_install(record) {
                        deferred.push_back(record.clone());
                    }
                }
                retry_deferred(&shared, &mut deferred);
            }
            Ok(WorkItem::Txn(records)) => {
                // One worker executes the whole transaction, write by write,
                // waiting for each write's per-row predecessor (Section 5.1).
                for record in &records {
                    let mut spins = 0u32;
                    while !shared.try_install(record) {
                        spins += 1;
                        if spins > 64 {
                            std::thread::sleep(Duration::from_micros(20));
                        } else {
                            std::hint::spin_loop();
                        }
                        if shared.shutdown.load(Ordering::Acquire) {
                            return;
                        }
                    }
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                retry_deferred(&shared, &mut deferred);
                if shared.shutdown.load(Ordering::Acquire) && deferred.is_empty() {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Drain any deferred writes, then exit.
                while !deferred.is_empty() {
                    retry_deferred(&shared, &mut deferred);
                    if deferred.is_empty() {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(20));
                }
                return;
            }
        }
    }
}

/// Retries deferred writes in FIFO order (Section 7.2: "each worker maintains
/// a local FIFO queue of deferred writes and periodically re-checks them").
fn retry_deferred(shared: &Shared, deferred: &mut std::collections::VecDeque<LogRecord>) {
    let mut remaining = deferred.len();
    while remaining > 0 {
        let record = deferred.pop_front().expect("len checked");
        remaining -= 1;
        if !shared.try_install(&record) {
            deferred.push_back(record);
        }
    }
}

/// The snapshotter loop.
fn snapshotter_loop(shared: Arc<Shared>, mode: C5Mode, interval: Duration) {
    // Tick frequently so shutdown is responsive, but only cut at `interval`.
    let tick = interval.min(Duration::from_millis(1));
    let mut last_cut = Instant::now();
    loop {
        let shutting_down = shared.shutdown.load(Ordering::Acquire);
        let due = last_cut.elapsed() >= interval || shutting_down;
        if due {
            match mode {
                C5Mode::Faithful => {
                    let n = shared.tracker.boundary_watermark();
                    if n > shared.cursor.exposed() {
                        shared.cursor.advance(n);
                        shared.drain_exposed_boundaries(n);
                    }
                }
                C5Mode::OneWorkerPerTxn => {
                    let target = shared.tracker.boundary_watermark();
                    if target > shared.cursor.exposed() {
                        let tracker = &shared.tracker;
                        let n = shared.cursor.cut(
                            // Choose n at the last fully dispatched transaction:
                            // nothing beyond it can be in the store, and
                            // everything up to it will be applied shortly.
                            || SeqNo(shared.dispatched_boundary.load(Ordering::Acquire)),
                            |n| {
                                while tracker.applied_watermark() < n
                                    && !shared.shutdown.load(Ordering::Acquire)
                                {
                                    std::thread::sleep(Duration::from_micros(50));
                                }
                            },
                        );
                        shared.drain_exposed_boundaries(n);
                    }
                }
            }
            last_cut = Instant::now();
        }
        if shutting_down {
            // One final advance happened above; exit.
            return;
        }
        std::thread::sleep(tick);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, TxnId};
    use c5_log::{segments_from_entries, TxnEntry};

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    /// Builds a log of `txns` transactions, each writing `writes_per_txn`
    /// unique rows plus one update to the shared hot row 0 (the adversarial
    /// shape).
    fn adversarial_log(txns: u64, writes_per_txn: u64, segment_records: usize) -> Vec<Segment> {
        let mut entries = Vec::new();
        for t in 0..txns {
            let mut writes = Vec::new();
            for i in 0..writes_per_txn {
                writes.push(RowWrite::insert(
                    row(1 + t * writes_per_txn + i),
                    Value::from_u64(i),
                ));
            }
            writes.push(RowWrite::update(row(0), Value::from_u64(t + 1)));
            entries.push(TxnEntry::new(TxnId(t + 1), Timestamp(t + 1), writes));
        }
        segments_from_entries(&entries, segment_records)
    }

    fn replica(mode: C5Mode, workers: usize) -> Arc<C5Replica> {
        let store = Arc::new(MvStore::default());
        store.install(
            row(0),
            Timestamp::ZERO,
            c5_common::WriteKind::Insert,
            Some(Value::from_u64(0)),
        );
        let config = ReplicaConfig::default()
            .with_workers(workers)
            .with_snapshot_interval(Duration::from_millis(1));
        C5Replica::new(mode, store, config)
    }

    fn run_mode(mode: C5Mode) {
        let replica = replica(mode, 4);
        let segments = adversarial_log(50, 4, 16);
        let total_writes: u64 = segments.iter().map(|s| s.len() as u64).sum();
        let last_seq = segments.last().unwrap().last_seq().unwrap();

        drive_segments(replica.as_ref(), segments);

        let metrics = replica.metrics();
        assert_eq!(metrics.applied_writes, total_writes);
        assert_eq!(metrics.applied_txns, 50);
        assert_eq!(metrics.applied_seq, last_seq);
        assert_eq!(metrics.exposed_seq, last_seq);

        // The hot row saw every update in order; its final value is the last
        // transaction's.
        let view = replica.read_view();
        assert_eq!(view.get(row(0)).unwrap().as_u64(), Some(50));
        assert_eq!(view.as_of(), last_seq);

        // One lag sample per transaction.
        assert_eq!(replica.lag().len(), 50);
    }

    #[test]
    fn faithful_mode_applies_and_exposes_everything() {
        run_mode(C5Mode::Faithful);
    }

    #[test]
    fn one_worker_per_txn_mode_applies_and_exposes_everything() {
        run_mode(C5Mode::OneWorkerPerTxn);
    }

    #[test]
    fn finish_is_idempotent_and_drop_is_safe() {
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(5, 2, 8);
        drive_segments(replica.as_ref(), segments);
        replica.finish();
        replica.finish();
        drop(replica);
    }

    #[test]
    fn exposed_cut_is_monotonic_and_txn_aligned() {
        let store = Arc::new(MvStore::default());
        let config = ReplicaConfig::default()
            .with_workers(2)
            .with_snapshot_interval(Duration::from_micros(200));
        let replica = C5Replica::new(C5Mode::Faithful, store, config);

        let segments = adversarial_log(200, 2, 8);
        // Collect boundary positions: exposed cuts must always land on one.
        let mut boundary_set = std::collections::HashSet::new();
        boundary_set.insert(0u64);
        for seg in &segments {
            for r in &seg.records {
                if r.is_txn_last() {
                    boundary_set.insert(r.seq.as_u64());
                }
            }
        }

        let replica_clone = Arc::clone(&replica);
        let observer = std::thread::spawn(move || {
            let mut last = SeqNo::ZERO;
            let mut observations = Vec::new();
            for _ in 0..2000 {
                let e = replica_clone.exposed_seq();
                observations.push(e);
                assert!(e >= last, "exposed cut must never move backwards");
                last = e;
                std::thread::sleep(Duration::from_micros(50));
            }
            observations
        });

        drive_segments(replica.as_ref(), segments);
        let observations = observer.join().unwrap();
        for seq in observations {
            assert!(
                boundary_set.contains(&seq.as_u64()),
                "exposed cut {seq} is not a transaction boundary"
            );
        }
    }

    #[test]
    fn read_views_are_stable_snapshots() {
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(10, 2, 4);
        for seg in segments.clone() {
            replica.apply_segment(seg);
        }
        let view_before = replica.read_view();
        let as_of_before = view_before.as_of();
        replica.finish();
        // The view taken earlier still answers as of its own cut.
        assert_eq!(view_before.as_of(), as_of_before);
        // A fresh view sees the final state.
        assert_eq!(replica.read_view().get(row(0)).unwrap().as_u64(), Some(10));
    }

    #[test]
    fn lag_samples_measure_commit_to_visibility() {
        let replica = replica(C5Mode::Faithful, 2);
        let segments = adversarial_log(20, 1, 8);
        drive_segments(replica.as_ref(), segments);
        let lag = replica.lag();
        let stats = lag.stats().expect("samples exist");
        assert_eq!(stats.count, 20);
        assert!(stats.min_ms >= 0.0);
        assert!(
            stats.max_ms < 60_000.0,
            "lag should be far below a minute in tests"
        );
    }
}
