//! The C5 scheduler.
//!
//! Section 4.1: as the scheduler processes writes it assigns each a sequence
//! number reflecting its position in the log and enqueues it in the
//! appropriate per-row FIFO queue, so that each row's writes execute in log
//! order. Section 7.2 describes the production realization this module
//! implements: rather than materializing queues, the scheduler *embeds* the
//! per-row FIFOs in the log by stamping every record with the position of the
//! previous write to the same row (`prev_seq` here, `prev_timestamp` in the
//! paper), maintained in a single map from row to last-write position. Once a
//! segment's records are all stamped, its `preprocessed` flag is set and the
//! segment is handed to the workers.
//!
//! The scheduler is deliberately single-threaded (one [`SchedulerState`]
//! instance processed by one thread); Section 6.2's offline experiment checks
//! that this single thread is still faster than the primary, and the
//! benchmark `sched_offline` reproduces that measurement over this module.

use std::collections::HashMap;

use c5_common::{RowRef, SeqNo};
use c5_log::{LogRecord, Segment};

/// Mutable scheduler state: the map from row to the position of its most
/// recent write (zero for rows never written in the log so far).
#[derive(Debug, Default)]
pub struct SchedulerState {
    last_write: HashMap<RowRef, SeqNo>,
    processed_records: u64,
    processed_segments: u64,
    processed_txns: u64,
}

/// Counters describing how much a scheduler has processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Log records stamped.
    pub records: u64,
    /// Segments preprocessed.
    pub segments: u64,
    /// Transactions whose final write has been processed.
    pub txns: u64,
    /// Number of distinct rows seen.
    pub distinct_rows: usize,
}

impl SchedulerState {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a scheduler resuming from a checkpoint, seeded with the
    /// per-row last-write positions the checkpoint captured. Without the
    /// seeds, the first post-checkpoint write to a row would be stamped
    /// "no predecessor" and `install_if_prev` against the checkpointed chain
    /// head would refuse it forever. Zero seeds (pre-log population rows) are
    /// skipped — absent already means zero.
    pub fn with_last_writes(seeds: impl IntoIterator<Item = (RowRef, SeqNo)>) -> Self {
        let mut state = Self::new();
        state
            .last_write
            .extend(seeds.into_iter().filter(|&(_, seq)| seq > SeqNo::ZERO));
        state
    }

    /// Stamps one record with the position of the previous write to its row
    /// and records it as the row's most recent write.
    pub fn process_record(&mut self, record: &mut LogRecord) {
        let prev = self
            .last_write
            .insert(record.write.row, record.seq)
            .unwrap_or(SeqNo::ZERO);
        record.prev_seq = prev;
        self.processed_records += 1;
        if record.is_txn_last() {
            self.processed_txns += 1;
        }
    }

    /// Preprocesses a whole segment: stamps every record and sets the
    /// header's `preprocessed` flag.
    pub fn process_segment(&mut self, segment: &mut Segment) {
        for record in &mut segment.records {
            self.process_record(record);
        }
        segment.header.preprocessed = true;
        self.processed_segments += 1;
    }

    /// Current counters.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            records: self.processed_records,
            segments: self.processed_segments,
            txns: self.processed_txns,
            distinct_rows: self.last_write.len(),
        }
    }

    /// The position of the most recent write to `row` seen so far (zero if
    /// none). Exposed for tests and diagnostics.
    pub fn last_write_to(&self, row: RowRef) -> SeqNo {
        self.last_write.get(&row).copied().unwrap_or(SeqNo::ZERO)
    }
}

/// Convenience wrapper: preprocesses a single segment with a fresh scheduler.
/// Only meaningful for single-segment tests; real replicas keep one
/// [`SchedulerState`] for the whole log so cross-segment row dependencies are
/// captured.
pub fn preprocess_segment(segment: &mut Segment) -> SchedulerStats {
    let mut state = SchedulerState::new();
    state.process_segment(segment);
    state.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, Timestamp, TxnId, Value};
    use c5_log::{explode_txn, TxnEntry};

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    fn make_segment(txns: &[Vec<u64>]) -> Segment {
        // Each inner vec lists the row keys written by one transaction.
        let mut next = SeqNo::ZERO;
        let mut records = Vec::new();
        for (i, keys) in txns.iter().enumerate() {
            let writes = keys
                .iter()
                .map(|&k| RowWrite::update(row(k), Value::from_u64(k)))
                .collect();
            let entry = TxnEntry::new(TxnId(i as u64 + 1), Timestamp(i as u64 + 1), writes);
            let (recs, n) = explode_txn(&entry, next);
            next = n;
            records.extend(recs);
        }
        Segment::new(0, records)
    }

    #[test]
    fn prev_seq_points_to_previous_write_of_same_row() {
        // txn1 writes rows 1,2 ; txn2 writes rows 2,3 ; txn3 writes row 1.
        let mut seg = make_segment(&[vec![1, 2], vec![2, 3], vec![1]]);
        let stats = preprocess_segment(&mut seg);

        assert!(seg.header.preprocessed);
        assert_eq!(stats.records, 5);
        assert_eq!(stats.txns, 3);
        assert_eq!(stats.distinct_rows, 3);

        let prevs: Vec<(u64, u64)> = seg
            .records
            .iter()
            .map(|r| (r.seq.as_u64(), r.prev_seq.as_u64()))
            .collect();
        // seq1: row1 first write -> prev 0
        // seq2: row2 first write -> prev 0
        // seq3: row2 -> prev 2
        // seq4: row3 first write -> prev 0
        // seq5: row1 -> prev 1
        assert_eq!(prevs, vec![(1, 0), (2, 0), (3, 2), (4, 0), (5, 1)]);
    }

    #[test]
    fn state_persists_across_segments() {
        let mut state = SchedulerState::new();
        let mut seg1 = make_segment(&[vec![7]]);
        state.process_segment(&mut seg1);
        // Second segment re-numbered to continue the log.
        let mut seg2 = make_segment(&[vec![7]]);
        for r in &mut seg2.records {
            r.seq = SeqNo(r.seq.as_u64() + 1);
        }
        state.process_segment(&mut seg2);

        assert_eq!(seg1.records[0].prev_seq, SeqNo::ZERO);
        assert_eq!(seg2.records[0].prev_seq, SeqNo(1));
        assert_eq!(state.last_write_to(row(7)), seg2.records[0].seq);
        assert_eq!(state.stats().segments, 2);
    }

    #[test]
    fn seeded_scheduler_stamps_the_checkpointed_predecessor() {
        // Resuming from a checkpoint whose head for row 7 is position 3:
        // the first post-checkpoint write must name it, not zero. Zero
        // seeds are dropped (absent already means "first write").
        let mut state =
            SchedulerState::with_last_writes([(row(7), SeqNo(3)), (row(8), SeqNo::ZERO)]);
        assert_eq!(state.last_write_to(row(7)), SeqNo(3));
        assert_eq!(state.stats().distinct_rows, 1);

        let mut seg = make_segment(&[vec![7], vec![8]]);
        for r in &mut seg.records {
            r.seq = SeqNo(r.seq.as_u64() + 3);
        }
        state.process_segment(&mut seg);
        assert_eq!(seg.records[0].prev_seq, SeqNo(3));
        assert_eq!(seg.records[1].prev_seq, SeqNo::ZERO);
    }

    #[test]
    fn repeated_writes_to_one_row_chain_linearly() {
        let mut seg = make_segment(&[vec![5], vec![5], vec![5], vec![5]]);
        preprocess_segment(&mut seg);
        let prevs: Vec<u64> = seg.records.iter().map(|r| r.prev_seq.as_u64()).collect();
        assert_eq!(prevs, vec![0, 1, 2, 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use c5_common::{RowWrite, Timestamp, TxnId, Value};
    use c5_log::{explode_txn, TxnEntry};
    use proptest::prelude::*;
    use std::collections::HashMap as StdHashMap;

    proptest! {
        /// For every record, `prev_seq` is exactly the sequence number of the
        /// nearest earlier record writing the same row (or zero), i.e. the
        /// embedded FIFOs are precisely the per-row log order of Section 4.1.
        #[test]
        fn embedded_fifos_match_per_row_log_order(
            keys in prop::collection::vec(prop::collection::vec(0u64..8, 1..5), 1..20)
        ) {
            let mut next = SeqNo::ZERO;
            let mut records = Vec::new();
            for (i, txn_keys) in keys.iter().enumerate() {
                // Dedup within a transaction (the write-set invariant).
                let mut seen = std::collections::HashSet::new();
                let writes: Vec<_> = txn_keys
                    .iter()
                    .filter(|k| seen.insert(**k))
                    .map(|&k| RowWrite::update(RowRef::new(0, k), Value::from_u64(k)))
                    .collect();
                let entry = TxnEntry::new(TxnId(i as u64 + 1), Timestamp(i as u64 + 1), writes);
                let (recs, n) = explode_txn(&entry, next);
                next = n;
                records.extend(recs);
            }
            let mut seg = Segment::new(0, records);
            preprocess_segment(&mut seg);

            let mut last: StdHashMap<RowRef, SeqNo> = StdHashMap::new();
            for r in &seg.records {
                let expected = last.get(&r.write.row).copied().unwrap_or(SeqNo::ZERO);
                prop_assert_eq!(r.prev_seq, expected);
                last.insert(r.write.row, r.seq);
            }
        }
    }
}
