//! Sharded replication: per-partition apply pipelines under a cross-shard
//! consistent-cut coordinator.
//!
//! The paper's backup applies one log with one pipeline. At production scale
//! the keyspace itself shards: a [`c5_common::ShardRouter`] assigns every row
//! a shard by key range, each shard runs its **own** instance of the shared
//! [`crate::pipeline`] runtime (scheduler, workers, wait lists, expose
//! thread) over its slice of the log, and a [`CutCoordinator`] reassembles
//! the paper's headline guarantee — monotonic prefix consistency — for
//! snapshots that span shards.
//!
//! ## The cut-vector protocol
//!
//! Every shard publishes a [`ShardProgress`] watermark: the largest global
//! log position `w_s` such that every record the shard owns at or below
//! `w_s` has been installed. Quiet shards advance through gaps because each
//! per-shard sub-segment carries the parent segment's coverage watermark
//! (`covers_through`), so "I own nothing up to 1000" is itself progress.
//!
//! The coordinator picks the **global cut** `B` = the largest transaction
//! boundary at or below `min_s w_s`. Because `B` is a boundary of the global
//! log and a transaction's writes occupy a contiguous run of positions,
//! every transaction falls entirely at or below `B` or entirely above it —
//! cross-shard transactions are pinned to one side of the cut by
//! construction, never split.
//!
//! From `B` the coordinator then derives the **maximal cut vector**
//! `(c_1..c_N)`: each shard's component is the *frontier* — one position
//! before the shard's earliest record above `B` (or the shard's coverage
//! watermark when it owns nothing above `B`). Reading shard `s` at `c_s`
//! observes exactly the same rows as reading it at `B`, because by
//! construction no shard-`s` version exists in `(B, c_s]`; the vector is the
//! proof object that each per-shard boundary is as far ahead as the global
//! prefix permits. Snapshot reads pin the whole vector at creation
//! ([`crate::snapshotter::ShardedReadView`]), and the version-GC horizon
//! trails the vector's minimum.
//!
//! The single-shard case degenerates exactly to the paper's protocol: one
//! pipeline, `w_1` is the applied watermark, `B` the boundary watermark, and
//! the vector has one component equal to the exposed cut.
//!
//! ## Hot-path disciplines
//!
//! The per-shard apply path follows the batched hand-off rules of
//! [`crate::pipeline`]: a work item is a whole sub-segment, and workers
//! buffer the item's applied-marks and flush them through
//! [`ShardProgress`]'s batched mark in one lock acquisition — one
//! publication of the shard watermark per sub-segment instead of one per
//! record. Deferred publication is trivially safe here because nothing in a
//! shard's pipeline waits on the shard watermark; only the cut coordinator
//! reads it, and a coordinator that observes the watermark one sub-segment
//! late merely takes its next cut one tick later. Segment *routing* (the
//! other per-record cost on this path) reuses scratch buffers threaded
//! through the persistent [`TxnShardTracker`]; see [`c5_log::ship`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use c5_common::{OpCost, ReplicaConfig, SeqNo, ShardRouter, Timestamp};
use c5_log::{route_segment_with, LogRecord, Segment, TxnShardTracker};
use c5_storage::{Checkpoint, CheckpointWriter, MvStore};

use crate::lag::LagTracker;
use crate::pipeline::{
    GcDriver, PipelineOptions, PipelinePolicy, PipelineRuntime, PipelineSignals, QueuePlan,
    RowWaitList, WorkSink,
};
use crate::replica::{ClonedConcurrencyControl, Promotion, ReadView, ReplicaMetrics};
use crate::scheduler::SchedulerState;
use crate::snapshotter::ShardedReadView;

// ---------------------------------------------------------------------------
// Per-shard progress.
// ---------------------------------------------------------------------------

/// One shard's view of its slice of the log, in *global* log positions.
///
/// The shard's scheduler notes every owned record (and the coverage
/// watermark) before dispatching it; workers mark records as they install.
/// Unlike [`crate::progress::WatermarkTracker`], the owned positions are not
/// contiguous — the watermark advances through gaps the coverage proves are
/// not the shard's to wait for.
#[derive(Debug, Default)]
pub struct ShardProgress {
    inner: Mutex<ProgressInner>,
    /// Cached `applied_through` for lock-free probes.
    applied: AtomicU64,
    /// Cached coverage watermark for lock-free probes.
    covered: AtomicU64,
    /// This shard's component of the exposed cut vector (`c_s`).
    exposed: AtomicU64,
}

#[derive(Debug, Default)]
struct ProgressInner {
    /// Owned positions noted but not yet installed.
    pending: BTreeSet<u64>,
    /// Every owned position above the last pruned global cut (installed or
    /// not) — the frontier query needs installed-but-unexposed positions too.
    owned: BTreeSet<u64>,
    /// The global position the shard's stream is complete through.
    covered: u64,
}

impl ProgressInner {
    fn applied_through(&self) -> u64 {
        match self.pending.iter().next() {
            Some(&first) => first - 1,
            None => self.covered,
        }
    }
}

impl ShardProgress {
    /// Creates empty progress.
    pub fn new() -> Self {
        Self::default()
    }

    /// Notes one sub-segment's records and coverage. Must be called by the
    /// shard's scheduler, in stream order, *before* the records are
    /// dispatched to workers (so no record can be marked applied before it
    /// is expected).
    fn note_segment(&self, segment: &Segment) {
        let mut inner = self.inner.lock();
        for record in &segment.records {
            let seq = record.seq.as_u64();
            inner.pending.insert(seq);
            inner.owned.insert(seq);
        }
        inner.covered = inner.covered.max(segment.covered_through().as_u64());
        self.covered.store(inner.covered, Ordering::Release);
        self.applied
            .store(inner.applied_through(), Ordering::Release);
    }

    /// Marks a batch of owned records as installed under one lock
    /// acquisition and one publication of the cached watermark. Equivalent
    /// to marking each record individually — the watermark just becomes
    /// visible once, after the batch — so a worker that buffers the marks of
    /// one work item trades publication latency (bounded by one item) for a
    /// batch-sized cut in lock traffic. Workers never wait on the shard
    /// watermark (only the coordinator's cut advance reads it), so deferred
    /// publication cannot deadlock the pipeline.
    fn mark_applied_batch(&self, seqs: &[SeqNo]) {
        if seqs.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        for seq in seqs {
            inner.pending.remove(&seq.as_u64());
        }
        self.applied
            .store(inner.applied_through(), Ordering::Release);
    }

    /// The largest global position `w` such that every record this shard
    /// owns at or below `w` has been installed.
    pub fn applied_through(&self) -> SeqNo {
        SeqNo(self.applied.load(Ordering::Acquire))
    }

    /// The global position the shard's stream is complete through.
    pub fn covered_through(&self) -> SeqNo {
        SeqNo(self.covered.load(Ordering::Acquire))
    }

    /// This shard's component of the exposed cut vector.
    pub fn exposed(&self) -> SeqNo {
        SeqNo(self.exposed.load(Ordering::Acquire))
    }

    /// The maximal per-shard boundary consistent with global cut `cut`: one
    /// position before the shard's earliest owned record above `cut`, or the
    /// coverage watermark when the shard owns nothing above it. Reading the
    /// shard anywhere in `[cut, frontier]` observes identical rows.
    fn frontier(&self, cut: u64) -> u64 {
        let inner = self.inner.lock();
        match inner.owned.range(cut + 1..).next() {
            Some(&next) => next - 1,
            None => inner.covered.max(cut),
        }
    }

    /// Advances the exposed component (monotonic) and forgets owned
    /// positions at or below the global cut (the frontier never looks below
    /// it again).
    fn expose_and_prune(&self, component: u64, cut: u64) {
        self.exposed.fetch_max(component, Ordering::AcqRel);
        let mut inner = self.inner.lock();
        inner.owned = inner.owned.split_off(&(cut + 1));
    }

    /// Number of owned positions noted and not yet installed (diagnostic).
    pub fn pending(&self) -> usize {
        self.inner.lock().pending.len()
    }
}

// ---------------------------------------------------------------------------
// The cross-shard consistent-cut coordinator.
// ---------------------------------------------------------------------------

/// Assembles a globally consistent, transaction-aligned exposed prefix from
/// per-shard progress (see the module docs for the protocol).
pub struct CutCoordinator {
    store: Arc<MvStore>,
    router: ShardRouter,
    shards: Vec<Arc<ShardProgress>>,
    /// Global replication-lag samples, one per transaction.
    lag: Arc<LagTracker>,
    /// Per-shard lag: a transaction's sample also lands on the shard owning
    /// its final write (where the transaction "commits" on the backup).
    shard_lag: Vec<Arc<LagTracker>>,
    /// The global cut `B` (cheap monotone probe; see `exposed_state` for
    /// the consistent cut + vector pair).
    cut: AtomicU64,
    /// The published `(cut, vector)` pair, swapped as one unit so readers
    /// can never observe components from two different cut generations —
    /// a torn pair would let a point read see a cross-shard transaction on
    /// one shard at the new cut while missing it on another still at the
    /// old one.
    exposed_state: Mutex<ExposedState>,
    /// The largest transaction boundary any shard has noted (the drain
    /// target once the log ends).
    final_boundary: AtomicU64,
    /// Transaction boundaries not yet covered by the cut:
    /// position → (primary commit wall time, owning shard).
    boundaries: Mutex<BTreeMap<u64, (u64, usize)>>,
    /// Version-GC horizon trailing the cut vector's minimum.
    gc: GcDriver,
    cuts_taken: AtomicU64,
}

/// The atomically published exposure: the global cut and the full vector
/// that realizes it.
#[derive(Debug)]
struct ExposedState {
    cut: u64,
    vector: Vec<u64>,
}

impl CutCoordinator {
    fn new(store: Arc<MvStore>, router: ShardRouter, gc_trail: u64) -> Self {
        let shards = (0..router.shards())
            .map(|_| Arc::new(ShardProgress::new()))
            .collect::<Vec<_>>();
        let shard_lag = (0..router.shards())
            .map(|_| Arc::new(LagTracker::new()))
            .collect();
        let gc = GcDriver::new(Arc::clone(&store), gc_trail);
        Self {
            store,
            router,
            shards,
            lag: Arc::new(LagTracker::new()),
            shard_lag,
            cut: AtomicU64::new(0),
            exposed_state: Mutex::new(ExposedState {
                cut: 0,
                vector: vec![0; router.shards()],
            }),
            final_boundary: AtomicU64::new(0),
            boundaries: Mutex::new(BTreeMap::new()),
            gc,
            cuts_taken: AtomicU64::new(0),
        }
    }

    /// The routing rule this coordinator's shards partition by.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// One shard's progress handle.
    pub fn progress(&self, shard: usize) -> &Arc<ShardProgress> {
        &self.shards[shard]
    }

    /// Registers a transaction boundary (called by the owning shard's
    /// scheduler; boundaries from different shards may arrive out of global
    /// order, the map re-orders them).
    fn note_boundary(&self, seq: SeqNo, commit_wall_nanos: u64, shard: usize) {
        self.boundaries
            .lock()
            .insert(seq.as_u64(), (commit_wall_nanos, shard));
        self.final_boundary
            .fetch_max(seq.as_u64(), Ordering::AcqRel);
    }

    /// Advances the cut: computes the new global cut `B` from the per-shard
    /// watermarks, drains one lag sample per newly covered transaction, and
    /// raises every shard's vector component to its frontier. Any shard's
    /// expose stage may call this; the boundary lock serializes cuts.
    /// Returns the (possibly unchanged) global cut.
    pub fn advance(&self) -> SeqNo {
        let mut boundaries = self.boundaries.lock();
        let floor = self.applied_floor().as_u64();
        let cut = boundaries
            .range(..=floor)
            .next_back()
            .map(|(&b, _)| b)
            // Already-covered boundaries were drained from the map, so an
            // empty range means "no new boundary": keep the current cut.
            .unwrap_or_else(|| self.cut.load(Ordering::Acquire));
        // One lag sample per transaction whose boundary the cut now covers,
        // recorded globally and on the transaction's owning shard.
        let newly_covered = {
            let above = boundaries.split_off(&(cut + 1));
            std::mem::replace(&mut *boundaries, above)
        };
        let now = c5_log::now_nanos();
        for (seq, (committed_at, shard)) in newly_covered {
            self.lag.record(SeqNo(seq), committed_at, now);
            self.shard_lag[shard].record(SeqNo(seq), committed_at, now);
        }
        // Compute the whole vector, then publish `(cut, vector)` as one
        // unit: readers must never combine components from two different
        // cut generations. (The boundary lock, held for the whole advance,
        // serializes concurrent cuts.) The per-shard `exposed` atomics are
        // raised too — they are monotone per-shard progress probes for the
        // drain protocol, not a consistent snapshot.
        let mut vector_min = u64::MAX;
        let mut vector = Vec::with_capacity(self.shards.len());
        for progress in &self.shards {
            let component = progress.frontier(cut).max(cut);
            progress.expose_and_prune(component, cut);
            let component = progress.exposed().as_u64();
            vector_min = vector_min.min(component);
            vector.push(component);
        }
        {
            let mut exposed = self.exposed_state.lock();
            if cut >= exposed.cut {
                *exposed = ExposedState { cut, vector };
            }
        }
        self.cut.fetch_max(cut, Ordering::AcqRel);
        self.gc.run(SeqNo(vector_min));
        self.cuts_taken.fetch_add(1, Ordering::Relaxed);
        SeqNo(cut)
    }

    /// The global cut `B`: the largest transaction boundary every shard has
    /// fully applied. This is what spanning snapshots observe.
    pub fn cut(&self) -> SeqNo {
        SeqNo(self.cut.load(Ordering::Acquire))
    }

    /// The current cut vector `(c_1..c_N)`, consistent with the cut it was
    /// published with (every component is at least the global cut).
    pub fn cut_vector(&self) -> Vec<SeqNo> {
        self.exposed_state
            .lock()
            .vector
            .iter()
            .map(|&c| SeqNo(c))
            .collect()
    }

    /// The largest global position every shard has applied through (the
    /// contiguous applied prefix of the global log).
    pub fn applied_floor(&self) -> SeqNo {
        self.shards
            .iter()
            .map(|p| p.applied_through())
            .min()
            .expect("a coordinator always has at least one shard")
    }

    /// The largest transaction boundary any shard has noted so far.
    pub fn final_boundary(&self) -> SeqNo {
        SeqNo(self.final_boundary.load(Ordering::Acquire))
    }

    /// Global replication-lag samples (one per transaction).
    pub fn lag(&self) -> &Arc<LagTracker> {
        &self.lag
    }

    /// Lag samples for transactions owned by `shard`.
    pub fn shard_lag(&self, shard: usize) -> &Arc<LagTracker> {
        &self.shard_lag[shard]
    }

    /// Number of cut advances performed (diagnostic).
    pub fn cuts_taken(&self) -> u64 {
        self.cuts_taken.load(Ordering::Relaxed)
    }

    /// Versions reclaimed by the vector-trailing GC horizon.
    pub fn reclaimed_versions(&self) -> u64 {
        self.gc.reclaimed()
    }

    /// The current version-GC horizon (checkpoint exports verify it never
    /// overtook their cut).
    pub fn gc_horizon(&self) -> SeqNo {
        self.gc.horizon()
    }

    /// A spanning read view pinned at the current cut vector. The cut and
    /// the vector are read under one lock, so the view can never mix
    /// components from different cut generations.
    pub fn read_view(&self) -> ShardedReadView {
        let (as_of, vector) = {
            let exposed = self.exposed_state.lock();
            (
                SeqNo(exposed.cut),
                exposed.vector.iter().map(|&c| SeqNo(c)).collect(),
            )
        };
        ShardedReadView::new(Arc::clone(&self.store), self.router, vector, as_of)
    }
}

impl std::fmt::Debug for CutCoordinator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CutCoordinator")
            .field("router", &self.router)
            .field("cut", &self.cut())
            .field("vector", &self.cut_vector())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The per-shard ordering policy and the sharded replica.
// ---------------------------------------------------------------------------

/// One shard's ordering policy: faithful C5 (per-row wait lists, timestamped
/// exposure) over the shard's slice of the log, with exposure delegated to
/// the coordinator.
struct ShardPolicy {
    shard: usize,
    store: Arc<MvStore>,
    coordinator: Arc<CutCoordinator>,
    progress: Arc<ShardProgress>,
    /// Per-shard `prev_seq` stamping state. Rows never change shards, so a
    /// row's whole chain is stamped by one scheduler — the stamps equal what
    /// a single global scheduler would produce.
    sched: Mutex<SchedulerState>,
    waits: RowWaitList,
    op_cost: OpCost,
    /// The configured observability sink, shared by every shard's pipeline.
    obs: Arc<c5_obs::Obs>,
    applied_writes: AtomicU64,
    applied_txns: AtomicU64,
    deferred_writes: AtomicU64,
}

impl ShardPolicy {
    /// Installs one record, buffering its progress mark into `marks`; the
    /// worker publishes the whole buffer through
    /// [`ShardProgress::mark_applied_batch`] when its current sub-segment
    /// ends (see that method for why deferring publication is safe).
    fn try_install(&self, record: &LogRecord, marks: &RefCell<Vec<SeqNo>>) -> bool {
        let applied = self.store.install_if_prev(
            record.write.row,
            Timestamp(record.prev_seq.as_u64()),
            Timestamp(record.seq.as_u64()),
            record.write.kind,
            record.write.value.clone(),
        );
        if applied {
            self.op_cost.charge_backup();
            marks.borrow_mut().push(record.seq);
            self.applied_writes.fetch_add(1, Ordering::Relaxed);
            if record.is_txn_last() {
                self.applied_txns.fetch_add(1, Ordering::Relaxed);
            }
        }
        applied
    }
}

impl PipelinePolicy for ShardPolicy {
    type Item = Segment;

    fn name(&self) -> &'static str {
        "c5-sharded"
    }

    fn schedule(&self, mut segment: Segment, sink: &mut WorkSink<Segment>) {
        self.sched.lock().process_segment(&mut segment);
        // Note records (and coverage) before dispatch, so no worker can
        // install a record the progress tracker has not yet expected; then
        // register owned transaction boundaries with the coordinator.
        self.progress.note_segment(&segment);
        for record in &segment.records {
            if record.is_txn_last() {
                self.coordinator
                    .note_boundary(record.seq, record.commit_wall_nanos, self.shard);
            }
        }
        // Empty sub-segments exist only to carry coverage; workers never see
        // them.
        if !segment.is_empty() {
            sink.send(segment);
        }
    }

    fn apply(&self, _worker: usize, segment: Segment, _signals: &PipelineSignals) {
        // Progress marks accumulate per sub-segment (including marks of
        // parked records this worker installs while cascading a wait-list
        // shard) and publish in one batched call at the end.
        let marks = RefCell::new(Vec::with_capacity(segment.len()));
        for record in segment.records {
            if self
                .waits
                .install_or_park(record, &|r| self.try_install(r, &marks))
            {
                self.deferred_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.progress.mark_applied_batch(&marks.borrow());
    }

    fn expose(&self, _signals: &PipelineSignals) {
        self.coordinator.advance();
    }

    fn interrupt(&self) {
        self.waits.wake_all();
    }

    fn applied_seq(&self) -> SeqNo {
        self.progress.applied_through()
    }

    fn exposure_target(&self) -> SeqNo {
        // Once the log ends, every shard must expose through the final
        // global boundary; each component is at least the global cut, which
        // converges there once every shard drains.
        self.coordinator.final_boundary()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.progress.exposed()
    }

    fn shipped_seq(&self) -> SeqNo {
        self.progress.covered_through()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        Box::new(self.coordinator.read_view())
    }

    fn lag(&self) -> Arc<LagTracker> {
        Arc::clone(self.coordinator.shard_lag(self.shard))
    }

    fn metrics(&self) -> ReplicaMetrics {
        // Downstream-first read order, as in `C5Policy::metrics`: exposed
        // before applied, positions before counters, so field invariants
        // hold in a mid-run snapshot.
        let exposed_seq = self.exposed_seq();
        let applied_seq = self.applied_seq();
        let applied_txns = self.applied_txns.load(Ordering::Acquire);
        let applied_writes = self.applied_writes.load(Ordering::Acquire);
        ReplicaMetrics {
            applied_writes,
            applied_txns,
            applied_seq,
            exposed_seq,
            deferred_writes: self.deferred_writes.load(Ordering::Relaxed),
            reclaimed_versions: 0, // reported once, by the coordinator
            cross_shard_txns: 0,
        }
    }

    fn obs(&self) -> Arc<c5_obs::Obs> {
        Arc::clone(&self.obs)
    }

    fn store(&self) -> &Arc<MvStore> {
        &self.store
    }
}

/// A horizontally sharded C5 replica: `config.shards` faithful apply
/// pipelines over one multi-version store, coordinated into a globally
/// consistent exposed prefix.
///
/// The replica accepts the whole log through
/// [`apply_segment`](ClonedConcurrencyControl::apply_segment) and routes
/// records itself, or pre-routed per-shard streams (from
/// [`c5_log::LogShipper::shard_routed`]) through
/// [`apply_shard_segment`](Self::apply_shard_segment).
pub struct ShardedC5Replica {
    config: ReplicaConfig,
    router: ShardRouter,
    store: Arc<MvStore>,
    coordinator: Arc<CutCoordinator>,
    runtimes: Vec<PipelineRuntime<ShardPolicy>>,
    routed_txns: AtomicU64,
    cross_shard_txns: AtomicU64,
    /// Shard masks of transactions straddling segment boundaries on the
    /// self-routing [`apply_segment`](ClonedConcurrencyControl::apply_segment)
    /// path, so each is counted once, by id.
    route_state: Mutex<TxnShardTracker>,
    finished: AtomicBool,
}

impl ShardedC5Replica {
    /// Creates and starts a sharded replica over `store` (which should
    /// already hold the initial population, installed at `Timestamp::ZERO`).
    /// Each of the `config.shards` pipelines runs `config.workers` workers.
    pub fn new(store: Arc<MvStore>, config: ReplicaConfig) -> Arc<Self> {
        config
            .validate()
            .expect("replica configuration must be valid");
        let router = config.shard_router();
        let coordinator = Arc::new(CutCoordinator::new(
            Arc::clone(&store),
            router,
            config.gc_trail,
        ));
        let runtimes = (0..router.shards())
            .map(|shard| {
                let policy = Arc::new(ShardPolicy {
                    shard,
                    store: Arc::clone(&store),
                    coordinator: Arc::clone(&coordinator),
                    progress: Arc::clone(coordinator.progress(shard)),
                    sched: Mutex::new(SchedulerState::new()),
                    waits: RowWaitList::default(),
                    op_cost: config.op_cost,
                    obs: Arc::clone(&config.obs),
                    applied_writes: AtomicU64::new(0),
                    applied_txns: AtomicU64::new(0),
                    deferred_writes: AtomicU64::new(0),
                });
                PipelineRuntime::start(
                    policy,
                    PipelineOptions {
                        workers: config.workers,
                        queue: QueuePlan::PerWorker { capacity: 256 },
                        ingest_capacity: config.segment_channel_capacity,
                        expose_interval: config.snapshot_interval,
                        label: "c5-sharded",
                    },
                )
            })
            .collect();
        Arc::new(Self {
            config,
            router,
            store,
            coordinator,
            runtimes,
            routed_txns: AtomicU64::new(0),
            cross_shard_txns: AtomicU64::new(0),
            route_state: Mutex::new(TxnShardTracker::default()),
            finished: AtomicBool::new(false),
        })
    }

    /// The replica's configuration.
    pub fn config(&self) -> &ReplicaConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The routing rule.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The cut coordinator (progress probes, the cut vector, per-shard lag).
    pub fn coordinator(&self) -> &Arc<CutCoordinator> {
        &self.coordinator
    }

    /// The current cut vector.
    pub fn cut_vector(&self) -> Vec<SeqNo> {
        self.coordinator.cut_vector()
    }

    /// Lag samples for transactions owned by `shard`.
    pub fn shard_lag(&self, shard: usize) -> Arc<LagTracker> {
        Arc::clone(self.coordinator.shard_lag(shard))
    }

    /// Transactions this replica routed whose writes spanned shards (only
    /// counted on the [`apply_segment`](ClonedConcurrencyControl::apply_segment)
    /// path; pre-routed streams are counted by their sharded shipper).
    pub fn cross_shard_txns(&self) -> u64 {
        self.cross_shard_txns.load(Ordering::Relaxed)
    }

    /// Feeds one pre-routed sub-segment to `shard` (the wire-level sharded
    /// deployment: each shard's stream arrives on its own channel from
    /// [`c5_log::LogShipper::shard_routed`]). Sub-segments must arrive in
    /// stream order per shard.
    pub fn apply_shard_segment(&self, shard: usize, segment: Segment) {
        self.runtimes[shard].apply_segment(segment);
    }

    /// Exports a checkpoint at the current cut vector: the spanning view
    /// pins `(cut, vector)` atomically, and each row is captured at its own
    /// shard's component — exactly the state the view exposes.
    ///
    /// # Panics
    /// Panics if the version-GC horizon overtook the global cut while the
    /// export ran (see
    /// [`C5Replica::checkpoint`](crate::replica::C5Replica::checkpoint) —
    /// every vector component is at least the global cut, so a horizon at or
    /// below the cut keeps every exported version safe).
    pub fn checkpoint(&self) -> Checkpoint {
        let view = self.coordinator.read_view();
        let checkpoint = CheckpointWriter::capture_vector(
            &self.store,
            &self.router,
            view.cut_vector(),
            view.as_of(),
        );
        let horizon = self.coordinator.gc_horizon();
        assert!(
            horizon <= checkpoint.cut(),
            "GC horizon {horizon} overtook the checkpoint cut {} during the \
             export — raise gc_trail so the trail covers the capture window",
            checkpoint.cut()
        );
        checkpoint
    }
}

impl ClonedConcurrencyControl for ShardedC5Replica {
    fn name(&self) -> &'static str {
        "c5-sharded"
    }

    fn apply_segment(&self, segment: Segment) {
        let routed = route_segment_with(segment, &self.router, &mut self.route_state.lock());
        self.routed_txns.fetch_add(routed.txns, Ordering::Relaxed);
        self.cross_shard_txns
            .fetch_add(routed.cross_shard_txns, Ordering::Relaxed);
        for (runtime, part) in self.runtimes.iter().zip(routed.parts) {
            runtime.apply_segment(part);
        }
    }

    fn finish(&self) {
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        // Shards must drain together: each one's final exposure waits on the
        // global cut, which only reaches the final boundary once *every*
        // shard has applied its slice.
        std::thread::scope(|scope| {
            for runtime in &self.runtimes {
                scope.spawn(|| runtime.finish());
            }
        });
    }

    fn promote(&self) -> Promotion {
        // The parallel drain seals every shard at one global cut (each
        // shard's final exposure waits on the coordinator's cut converging
        // to the final boundary), so the handover is exactly as clean as the
        // single-pipeline case: one transaction-aligned prefix, nothing
        // above it in the store.
        let start = std::time::Instant::now();
        self.finish();
        Promotion {
            protocol: self.name(),
            cut: self.coordinator.cut(),
            drain: start.elapsed(),
            store: Arc::clone(&self.store),
        }
    }

    fn applied_seq(&self) -> SeqNo {
        self.coordinator.applied_floor()
    }

    fn exposed_seq(&self) -> SeqNo {
        self.coordinator.cut()
    }

    fn read_view(&self) -> Box<dyn ReadView> {
        Box::new(self.coordinator.read_view())
    }

    fn lag(&self) -> Arc<LagTracker> {
        Arc::clone(self.coordinator.lag())
    }

    fn metrics(&self) -> ReplicaMetrics {
        let mut total = ReplicaMetrics {
            applied_seq: self.applied_seq(),
            exposed_seq: self.exposed_seq(),
            reclaimed_versions: self.coordinator.reclaimed_versions(),
            cross_shard_txns: self.cross_shard_txns.load(Ordering::Relaxed),
            ..ReplicaMetrics::default()
        };
        for runtime in &self.runtimes {
            let m = runtime.policy().metrics();
            total.applied_writes += m.applied_writes;
            total.applied_txns += m.applied_txns;
            total.deferred_writes += m.deferred_writes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpc::MpcChecker;
    use crate::replica::drive_segments;
    use c5_common::{RowRef, RowWrite, TxnId, Value, WriteKind};
    use c5_log::{segments_from_entries, TxnEntry};
    use std::time::Duration;

    const KEY_SPACE: u64 = 64;

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    fn config(shards: usize, workers: usize) -> ReplicaConfig {
        ReplicaConfig::default()
            .with_workers(workers)
            .with_shards(shards)
            .with_shard_key_space(KEY_SPACE)
            .with_snapshot_interval(Duration::from_micros(500))
    }

    /// A log whose transactions deliberately span shards: txn `t` updates
    /// key `t % 64` and key `(t + 32) % 64` (opposite halves of the key
    /// space) plus a unique insert, so under 2+ shards a large fraction of
    /// transactions is cross-shard.
    fn spanning_log(txns: u64) -> (Vec<(RowRef, Value)>, Vec<Segment>) {
        let population: Vec<(RowRef, Value)> = (0..KEY_SPACE)
            .map(|k| (row(k), Value::from_u64(0)))
            .collect();
        let mut entries = Vec::new();
        for t in 1..=txns {
            let writes = vec![
                RowWrite::update(row(t % KEY_SPACE), Value::from_u64(t)),
                RowWrite::update(
                    row((t + KEY_SPACE / 2) % KEY_SPACE),
                    Value::from_u64(t * 10),
                ),
                RowWrite::insert(RowRef::new(1, KEY_SPACE + t), Value::from_u64(t)),
            ];
            entries.push(TxnEntry::new(TxnId(t), Timestamp(t), writes));
        }
        (population, segments_from_entries(&entries, 16))
    }

    fn preloaded(population: &[(RowRef, Value)]) -> Arc<MvStore> {
        let store = Arc::new(MvStore::default());
        for (row, value) in population {
            store.install(
                *row,
                Timestamp::ZERO,
                WriteKind::Insert,
                Some(value.clone()),
            );
        }
        store
    }

    #[test]
    fn sharded_replica_converges_and_is_mpc_clean() {
        for shards in [1, 2, 4] {
            let (population, segments) = spanning_log(120);
            let replica = ShardedC5Replica::new(preloaded(&population), config(shards, 2));
            let mut checker = MpcChecker::new(&population, &segments);
            let last = segments.last().unwrap().last_seq().unwrap();

            drive_segments(replica.as_ref(), segments);

            let metrics = replica.metrics();
            assert_eq!(metrics.applied_txns, 120, "{shards} shards");
            assert_eq!(metrics.applied_seq, last);
            assert_eq!(metrics.exposed_seq, last);
            if shards > 1 {
                assert!(
                    metrics.cross_shard_txns * 10 >= metrics.applied_txns,
                    "the spanning log must be >=10% cross-shard (got {}/{})",
                    metrics.cross_shard_txns,
                    metrics.applied_txns
                );
            }
            let view = replica.read_view();
            checker.verify_state(view.as_of(), view.scan_all()).unwrap();
            assert_eq!(replica.lag().len(), 120);
        }
    }

    #[test]
    fn cut_vector_components_never_trail_the_global_cut() {
        let (population, segments) = spanning_log(200);
        let replica = ShardedC5Replica::new(preloaded(&population), config(4, 2));
        let sampler = {
            let replica = Arc::clone(&replica);
            std::thread::spawn(move || {
                let mut samples = Vec::new();
                for _ in 0..300 {
                    let cut = replica.exposed_seq();
                    let vector = replica.cut_vector();
                    samples.push((cut, vector));
                    std::thread::sleep(Duration::from_micros(100));
                }
                samples
            })
        };
        drive_segments(replica.as_ref(), segments);
        for (cut, vector) in sampler.join().unwrap() {
            assert_eq!(vector.len(), 4);
            for component in vector {
                assert!(
                    component >= cut,
                    "vector component {component} below the global cut {cut}"
                );
            }
        }
    }

    #[test]
    fn per_shard_lag_partitions_the_global_samples() {
        let (population, segments) = spanning_log(90);
        let replica = ShardedC5Replica::new(preloaded(&population), config(4, 2));
        drive_segments(replica.as_ref(), segments);
        let per_shard: usize = (0..replica.shards())
            .map(|s| replica.shard_lag(s).len())
            .sum();
        assert_eq!(replica.lag().len(), 90);
        assert_eq!(per_shard, 90, "each txn lands on exactly one owning shard");
    }

    #[test]
    fn pre_routed_streams_converge_like_whole_segments() {
        use c5_log::LogShipper;
        let (population, segments) = spanning_log(80);
        let replica = ShardedC5Replica::new(preloaded(&population), config(4, 2));
        let (shipper, receivers) = LogShipper::shard_routed(*replica.router(), 8);

        std::thread::scope(|scope| {
            for (shard, receiver) in receivers.into_iter().enumerate() {
                let replica = Arc::clone(&replica);
                scope.spawn(move || {
                    while let Some(segment) = receiver.recv() {
                        replica.apply_shard_segment(shard, segment);
                    }
                });
            }
            for segment in segments.clone() {
                shipper.ship(segment);
            }
            let stats = shipper.routing_stats().unwrap();
            assert_eq!(stats.txns, 80);
            assert!(stats.cross_shard_share() >= 0.1);
            shipper.close();
        });
        replica.finish();

        let mut checker = MpcChecker::new(&population, &segments);
        let view = replica.read_view();
        assert_eq!(view.as_of(), checker.final_seq());
        checker.verify_state(view.as_of(), view.scan_all()).unwrap();
    }

    #[test]
    fn gc_horizon_trails_the_vector_minimum() {
        // Hot rows in two different shards; with a zero trail the vector
        // minimum (= the global cut) drives collection of both chains.
        let population = vec![(row(0), Value::from_u64(0)), (row(40), Value::from_u64(0))];
        let store = preloaded(&population);
        let replica = ShardedC5Replica::new(
            Arc::clone(&store),
            config(2, 2)
                .with_gc_trail(0)
                .with_snapshot_interval(Duration::from_micros(200)),
        );
        let entries: Vec<TxnEntry> = (1..=400u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![
                        RowWrite::update(row(0), Value::from_u64(t)),
                        RowWrite::update(row(40), Value::from_u64(t)),
                    ],
                )
            })
            .collect();
        drive_segments(replica.as_ref(), segments_from_entries(&entries, 16));
        let metrics = replica.metrics();
        assert_eq!(metrics.applied_txns, 400);
        assert!(metrics.reclaimed_versions > 0);
        assert!(
            store.stats().versions < 800,
            "hot chains must not grow without bound (got {})",
            store.stats().versions
        );
        let view = replica.read_view();
        assert_eq!(view.get(row(0)).unwrap().as_u64(), Some(400));
        assert_eq!(view.get(row(40)).unwrap().as_u64(), Some(400));
    }

    #[test]
    fn finish_is_idempotent_and_drop_is_safe() {
        let (population, segments) = spanning_log(10);
        let replica = ShardedC5Replica::new(preloaded(&population), config(4, 1));
        drive_segments(replica.as_ref(), segments);
        replica.finish();
        replica.finish();
        drop(replica);
    }

    #[test]
    fn quiet_shards_do_not_stall_the_cut() {
        // Every write lands in shard 0's range; shards 1..3 see only
        // coverage, yet the cut must still reach the end of the log.
        let population = vec![(row(0), Value::from_u64(0))];
        let replica = ShardedC5Replica::new(preloaded(&population), config(4, 1));
        let entries: Vec<TxnEntry> = (1..=50u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![RowWrite::update(row(t % 16), Value::from_u64(t))],
                )
            })
            .collect();
        let segments = segments_from_entries(&entries, 8);
        let last = segments.last().unwrap().last_seq().unwrap();
        drive_segments(replica.as_ref(), segments);
        assert_eq!(replica.exposed_seq(), last);
        // The quiet shards' vector components sit at the coverage frontier.
        for component in replica.cut_vector() {
            assert!(component >= last);
        }
    }
}
