//! The C5 snapshotter: progressing, prefix-complete snapshots for read-only
//! transactions.
//!
//! Section 4.2 describes the snapshotter in terms of three logical snapshots
//! (current, next, future) delimited by two counters `c` and `n`: the current
//! snapshot serves read-only transactions and reflects all writes up to `c`;
//! once every write up to `n` (always a transaction boundary) has executed,
//! current and next are merged, `c` advances to `n`, and the future snapshot
//! becomes the next one.
//!
//! As Section 7.2 observes, a multi-version store in which workers install
//! versions at explicit positions *is* those three snapshots: reading at
//! timestamp `c` is the current snapshot, writes between `c` and `n` are the
//! next, and writes beyond `n` the future. [`SnapshotCursor::Timestamped`]
//! implements that faithful form — advancing `c` is a single atomic store and
//! never blocks workers.
//!
//! Section 5.2's backward-compatible form ([`SnapshotCursor::WholeDatabase`])
//! has to live with a storage engine that can only snapshot "the current
//! state": advancing requires choosing a cut `n` at or beyond everything
//! installed so far, briefly holding back writes past `n`, waiting for the
//! prefix up to `n` to finish, and materializing a whole-database snapshot.
//! The gate that holds workers back is a reader-writer lock: workers hold it
//! shared for the instant it takes to install one write, the snapshotter
//! takes it exclusively only to move the cut.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use c5_common::{RowRef, SeqNo, ShardRouter, TableId, Timestamp, Value};
use c5_storage::{DbSnapshot, MvStore};

use crate::replica::ReadView;

/// The exposed-state cursor: what read-only transactions may observe.
pub enum SnapshotCursor {
    /// Faithful (C5-Cicada) form: the exposed prefix is a timestamp into the
    /// multi-version store.
    Timestamped {
        /// The backup's store.
        store: Arc<MvStore>,
        /// The exposed cut `c` (a log position).
        exposed: AtomicU64,
    },
    /// Backward-compatible (C5-MyRocks) form: the exposed prefix is a
    /// materialized whole-database snapshot, refreshed at each cut.
    WholeDatabase {
        /// The backup's store.
        store: Arc<MvStore>,
        /// The exposed cut `c`.
        exposed: AtomicU64,
        /// Gate holding back writes with positions greater than the cut
        /// while a snapshot is being taken. `u64::MAX` means open.
        gate: RwLock<u64>,
        /// The snapshot currently serving read-only transactions.
        current: RwLock<DbSnapshot>,
    },
}

impl std::fmt::Debug for SnapshotCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotCursor::Timestamped { .. } => f
                .debug_struct("SnapshotCursor::Timestamped")
                .field("exposed", &self.exposed())
                .finish(),
            SnapshotCursor::WholeDatabase { .. } => f
                .debug_struct("SnapshotCursor::WholeDatabase")
                .field("exposed", &self.exposed())
                .finish(),
        }
    }
}

impl SnapshotCursor {
    /// Creates the faithful, timestamped cursor.
    pub fn timestamped(store: Arc<MvStore>) -> Self {
        Self::timestamped_at(store, SeqNo::ZERO)
    }

    /// Creates the faithful cursor resuming at `cut` (a checkpoint's cut:
    /// the store already holds, and may expose, everything at or below it).
    pub fn timestamped_at(store: Arc<MvStore>, cut: SeqNo) -> Self {
        SnapshotCursor::Timestamped {
            store,
            exposed: AtomicU64::new(cut.as_u64()),
        }
    }

    /// Creates the whole-database cursor. The initial current snapshot
    /// captures the store's preloaded state.
    pub fn whole_database(store: Arc<MvStore>) -> Self {
        Self::whole_database_at(store, SeqNo::ZERO)
    }

    /// Creates the whole-database cursor resuming at `cut`; the initial
    /// snapshot captures the store's current (checkpoint-installed) state.
    pub fn whole_database_at(store: Arc<MvStore>, cut: SeqNo) -> Self {
        let current = DbSnapshot::of_current(&store);
        SnapshotCursor::WholeDatabase {
            store,
            exposed: AtomicU64::new(cut.as_u64()),
            gate: RwLock::new(u64::MAX),
            current: RwLock::new(current),
        }
    }

    /// The exposed cut `c`.
    pub fn exposed(&self) -> SeqNo {
        match self {
            SnapshotCursor::Timestamped { exposed, .. }
            | SnapshotCursor::WholeDatabase { exposed, .. } => {
                SeqNo(exposed.load(Ordering::Acquire))
            }
        }
    }

    /// A read view pinned at the current snapshot. Successive views observe
    /// monotonically advancing cuts (monotonic prefix consistency's second
    /// half); an individual view never changes after creation.
    pub fn read_view(&self) -> Box<dyn ReadView> {
        match self {
            SnapshotCursor::Timestamped { store, exposed } => Box::new(TimestampedView {
                store: Arc::clone(store),
                as_of: SeqNo(exposed.load(Ordering::Acquire)),
            }),
            SnapshotCursor::WholeDatabase {
                current, exposed, ..
            } => Box::new(WholeDbView {
                snapshot: current.read().clone(),
                as_of: SeqNo(exposed.load(Ordering::Acquire)),
            }),
        }
    }

    /// Advances the exposed cut to `n` (faithful form only; the
    /// whole-database form advances through [`SnapshotCursor::cut`]).
    ///
    /// The cut is monotonic by construction: an `n` below the current cut is
    /// ignored, so concurrent advancers can never move the exposed prefix
    /// backwards.
    ///
    /// # Panics
    /// Panics if called on a whole-database cursor.
    pub fn advance(&self, n: SeqNo) {
        match self {
            SnapshotCursor::Timestamped { exposed, .. } => {
                exposed.fetch_max(n.as_u64(), Ordering::Release);
            }
            SnapshotCursor::WholeDatabase { .. } => {
                panic!("whole-database cursors advance through cut()")
            }
        }
    }

    /// Executes one write installation under the gate (whole-database form).
    /// The closure runs while the gate is held shared, so a concurrent cut
    /// cannot slice the database between this write and the cut's chosen
    /// boundary. For the timestamped form the closure simply runs — the
    /// faithful design never blocks workers.
    pub fn install_gated<R>(&self, seq: SeqNo, install: impl FnOnce() -> R) -> R {
        match self {
            SnapshotCursor::Timestamped { .. } => install(),
            SnapshotCursor::WholeDatabase { gate, .. } => loop {
                let g = gate.read();
                if seq.as_u64() <= *g {
                    let out = install();
                    drop(g);
                    return out;
                }
                drop(g);
                // The snapshotter holds writes past the cut back only for the
                // duration of a snapshot; yield briefly and retry.
                std::thread::sleep(std::time::Duration::from_micros(20));
            },
        }
    }

    /// Performs a whole-database cut (Section 5.2).
    ///
    /// `choose_n` is called while the gate is held exclusively (no install is
    /// in flight) and must return a transaction-aligned position at or beyond
    /// every write dispatched so far; `wait_applied` must block until every
    /// write up to the returned position has been installed.
    ///
    /// Returns the new exposed cut.
    pub fn cut(&self, choose_n: impl FnOnce() -> SeqNo, wait_applied: impl FnOnce(SeqNo)) -> SeqNo {
        match self {
            SnapshotCursor::Timestamped { .. } => {
                panic!("timestamped cursors advance through advance()")
            }
            SnapshotCursor::WholeDatabase {
                store,
                exposed,
                gate,
                current,
            } => {
                // 1. Close the gate at n. Holding the write lock guarantees no
                //    install is in flight while n is chosen, so nothing beyond
                //    n can already be in the store.
                let n = {
                    let mut g = gate.write();
                    let n = choose_n();
                    *g = n.as_u64();
                    n
                };
                // 2. Wait for the prefix up to n to be fully applied. Writes
                //    with positions <= n keep flowing; writes beyond n wait.
                wait_applied(n);
                // 3. Take the snapshot of the current state; by construction
                //    it contains exactly the writes up to n.
                let snapshot = DbSnapshot::of_current(store);
                *current.write() = snapshot;
                exposed.store(n.as_u64(), Ordering::Release);
                // 4. Reopen the gate so blocked workers proceed.
                *gate.write() = u64::MAX;
                n
            }
        }
    }
}

/// Read view over the multi-version store at a fixed cut (faithful form).
struct TimestampedView {
    store: Arc<MvStore>,
    as_of: SeqNo,
}

impl ReadView for TimestampedView {
    fn get(&self, row: RowRef) -> Option<Value> {
        self.store.read_at(row, Timestamp(self.as_of.as_u64()))
    }

    fn as_of(&self) -> SeqNo {
        self.as_of
    }

    fn scan_table(&self, table: TableId) -> Vec<(RowRef, Value)> {
        self.store
            .scan_table_at(table, Timestamp(self.as_of.as_u64()))
    }

    fn scan_all(&self) -> Vec<(RowRef, Value)> {
        self.store.scan_all_at(Timestamp(self.as_of.as_u64()))
    }
}

/// A spanning read view over a sharded replica, pinned at a full cut vector
/// (see [`crate::shard`]).
///
/// Point reads *and* scans serve each row at its *own shard's* vector
/// component `c_s` (scans via [`MvStore::scan_table_at_for`], so cross-shard
/// scans are pinned at the same vector as point reads). Reading at the
/// vector is guaranteed to agree with reading at the global cut `B` — the
/// coordinator chooses each component as the shard's frontier, one position
/// before the shard's earliest record above `B`, so no shard-owned version
/// exists in `(B, c_s]` — and the vector (exposed via
/// [`cut_vector`](Self::cut_vector)) is what tests assert that guarantee on.
pub struct ShardedReadView {
    store: Arc<MvStore>,
    router: ShardRouter,
    vector: Vec<SeqNo>,
    as_of: SeqNo,
}

impl ShardedReadView {
    /// Pins a view at `vector` (one component per shard) with global cut
    /// `as_of`.
    pub fn new(store: Arc<MvStore>, router: ShardRouter, vector: Vec<SeqNo>, as_of: SeqNo) -> Self {
        debug_assert_eq!(vector.len(), router.shards());
        Self {
            store,
            router,
            vector,
            as_of,
        }
    }

    /// The per-shard cut vector this view is pinned at.
    pub fn cut_vector(&self) -> &[SeqNo] {
        &self.vector
    }

    /// The cut a given row is served at: its shard's vector component.
    fn row_cut(&self, row: RowRef) -> Timestamp {
        Timestamp(self.vector[self.router.route(row)].as_u64())
    }
}

impl ReadView for ShardedReadView {
    fn get(&self, row: RowRef) -> Option<Value> {
        self.store.read_at(row, self.row_cut(row))
    }

    fn as_of(&self) -> SeqNo {
        self.as_of
    }

    fn scan_table(&self, table: TableId) -> Vec<(RowRef, Value)> {
        self.store.scan_table_at_for(table, |row| self.row_cut(row))
    }

    fn scan_all(&self) -> Vec<(RowRef, Value)> {
        self.store.scan_all_at_for(|row| self.row_cut(row))
    }
}

/// Read view over a materialized whole-database snapshot (MyRocks form).
struct WholeDbView {
    snapshot: DbSnapshot,
    as_of: SeqNo,
}

impl ReadView for WholeDbView {
    fn get(&self, row: RowRef) -> Option<Value> {
        self.snapshot.read(row)
    }

    fn as_of(&self) -> SeqNo {
        self.as_of
    }

    fn scan_table(&self, table: TableId) -> Vec<(RowRef, Value)> {
        self.snapshot.scan_table(table)
    }

    fn scan_all(&self) -> Vec<(RowRef, Value)> {
        self.snapshot.scan_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::WriteKind;

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    fn install(store: &MvStore, seq: u64, key: u64, value: u64) {
        store.install(
            row(key),
            Timestamp(seq),
            WriteKind::Update,
            Some(Value::from_u64(value)),
        );
    }

    #[test]
    fn timestamped_views_only_see_the_exposed_prefix() {
        let store = Arc::new(MvStore::default());
        let cursor = SnapshotCursor::timestamped(Arc::clone(&store));
        install(&store, 1, 1, 10);
        install(&store, 2, 2, 20);

        // Nothing exposed yet.
        assert_eq!(cursor.read_view().get(row(1)), None);

        cursor.advance(SeqNo(1));
        let view = cursor.read_view();
        assert_eq!(view.get(row(1)).unwrap().as_u64(), Some(10));
        assert_eq!(view.get(row(2)), None);
        assert_eq!(view.as_of(), SeqNo(1));

        // A previously created view does not move when the cut advances.
        cursor.advance(SeqNo(2));
        assert_eq!(view.get(row(2)), None);
        assert_eq!(cursor.read_view().get(row(2)).unwrap().as_u64(), Some(20));
    }

    #[test]
    fn timestamped_cut_never_regresses() {
        let store = Arc::new(MvStore::default());
        let cursor = SnapshotCursor::timestamped(store);
        cursor.advance(SeqNo(5));
        cursor.advance(SeqNo(3));
        assert_eq!(
            cursor.exposed(),
            SeqNo(5),
            "a lower advance must be ignored"
        );
        cursor.advance(SeqNo(8));
        assert_eq!(cursor.exposed(), SeqNo(8));
    }

    #[test]
    fn whole_database_cut_exposes_exactly_the_prefix() {
        let store = Arc::new(MvStore::default());
        let cursor = SnapshotCursor::whole_database(Arc::clone(&store));

        // Install writes 1..=3 through the gate (all allowed: gate open).
        for seq in 1..=3u64 {
            cursor.install_gated(SeqNo(seq), || install(&store, seq, seq, seq * 10));
        }
        let n = cursor.cut(|| SeqNo(3), |_n| { /* already applied */ });
        assert_eq!(n, SeqNo(3));
        assert_eq!(cursor.exposed(), SeqNo(3));

        let view = cursor.read_view();
        assert_eq!(view.get(row(3)).unwrap().as_u64(), Some(30));

        // Writes installed after the cut are invisible until the next cut.
        cursor.install_gated(SeqNo(4), || install(&store, 4, 4, 40));
        assert_eq!(cursor.read_view().get(row(4)), None);
        cursor.cut(|| SeqNo(4), |_n| {});
        assert_eq!(cursor.read_view().get(row(4)).unwrap().as_u64(), Some(40));
    }

    #[test]
    fn gate_blocks_writes_past_the_cut_until_reopened() {
        let store = Arc::new(MvStore::default());
        let cursor = Arc::new(SnapshotCursor::whole_database(Arc::clone(&store)));
        cursor.install_gated(SeqNo(1), || install(&store, 1, 1, 1));

        // Run the cut on another thread; have it wait long enough that the
        // gated install below observably blocks.
        let cursor2 = Arc::clone(&cursor);
        let cut_handle = std::thread::spawn(move || {
            cursor2.cut(
                || SeqNo(1),
                |_n| std::thread::sleep(std::time::Duration::from_millis(80)),
            )
        });
        // Give the cut a moment to close the gate.
        std::thread::sleep(std::time::Duration::from_millis(20));

        let store2 = Arc::clone(&store);
        let cursor3 = Arc::clone(&cursor);
        let start = std::time::Instant::now();
        let install_handle = std::thread::spawn(move || {
            cursor3.install_gated(SeqNo(2), || install(&store2, 2, 2, 2));
            start.elapsed()
        });

        assert_eq!(cut_handle.join().unwrap(), SeqNo(1));
        let blocked_for = install_handle.join().unwrap();
        assert!(
            blocked_for >= std::time::Duration::from_millis(30),
            "the write past the cut should have been held back, waited {blocked_for:?}"
        );
        // The post-cut snapshot excludes the blocked write.
        assert_eq!(cursor.read_view().get(row(2)), None);
    }

    #[test]
    fn sharded_view_scans_pin_each_row_at_its_shard_component() {
        // Two shards over keys [0, 16): shard 0 owns 0..8, shard 1 owns
        // 8..16. Shard 1's component is ahead of shard 0's; scans must serve
        // each row at its own component, exactly like point reads.
        let store = Arc::new(MvStore::default());
        let router = ShardRouter::new(2, 16);
        install(&store, 1, 1, 10); // shard 0
        install(&store, 2, 9, 90); // shard 1
        install(&store, 5, 9, 95); // shard 1, above shard 0's component

        let view = ShardedReadView::new(
            Arc::clone(&store),
            router,
            vec![SeqNo(2), SeqNo(5)],
            SeqNo(2),
        );
        assert_eq!(view.cut_vector(), &[SeqNo(2), SeqNo(5)]);

        // Point reads and scans agree row for row.
        assert_eq!(view.get(row(1)).unwrap().as_u64(), Some(10));
        assert_eq!(view.get(row(9)).unwrap().as_u64(), Some(95));
        let scan = view.scan_table(TableId(0));
        assert_eq!(
            scan,
            vec![(row(1), Value::from_u64(10)), (row(9), Value::from_u64(95)),],
            "scan must be key-sorted and vector-pinned"
        );
        assert_eq!(view.scan_all(), scan);

        // A batched multi-key read observes the same pinned state.
        let batch = view.get_many(&[row(9), row(1), row(3)]);
        assert_eq!(batch[0].as_ref().unwrap().as_u64(), Some(95));
        assert_eq!(batch[1].as_ref().unwrap().as_u64(), Some(10));
        assert!(batch[2].is_none());
    }

    #[test]
    fn whole_database_initial_snapshot_contains_preloaded_state() {
        let store = Arc::new(MvStore::default());
        store.install(
            row(7),
            Timestamp::ZERO,
            WriteKind::Insert,
            Some(Value::from_u64(7)),
        );
        let cursor = SnapshotCursor::whole_database(Arc::clone(&store));
        assert_eq!(cursor.read_view().get(row(7)).unwrap().as_u64(), Some(7));
        assert_eq!(cursor.exposed(), SeqNo::ZERO);
    }
}
