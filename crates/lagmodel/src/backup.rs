//! The model backup: `m` cores running one of the cloned concurrency control
//! protocols from the paper's taxonomy.

use std::collections::HashMap;

use crate::primary::PrimaryOutcome;
use crate::workload::ModelParams;

/// The protocol the model backup runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackupProtocol {
    /// One thread applies the log in order (MySQL 5.6's default).
    SingleThreaded,
    /// Transaction granularity (KuaFu / MySQL 8 writeset replication):
    /// transactions with intersecting write sets apply in commit order; each
    /// transaction's writes run sequentially on one worker.
    TxnGranularity,
    /// Page granularity (redo shipping): writes to the same page serialize.
    PageGranularity {
        /// Number of rows per page.
        rows_per_page: u64,
    },
    /// Row granularity (C5): only writes to the same row serialize.
    RowGranularity,
}

impl BackupProtocol {
    /// Name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            BackupProtocol::SingleThreaded => "single-threaded",
            BackupProtocol::TxnGranularity => "txn-granularity",
            BackupProtocol::PageGranularity { .. } => "page-granularity",
            BackupProtocol::RowGranularity => "row-granularity",
        }
    }
}

/// The backup's execution outcome, indexed in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackupOutcome {
    /// When each transaction's last write finished applying (`f_b` before
    /// accounting for prefix exposure).
    pub finish: Vec<u64>,
    /// When each transaction became visible to reads: the running maximum of
    /// `finish` over the log prefix, since reads only ever observe
    /// prefix-complete states.
    pub exposed: Vec<u64>,
}

impl BackupOutcome {
    /// The backup's makespan (when the last write finished).
    pub fn makespan(&self) -> u64 {
        self.finish.iter().copied().max().unwrap_or(0)
    }

    /// Applied transactions per unit time.
    pub fn throughput(&self) -> f64 {
        if self.finish.is_empty() || self.makespan() == 0 {
            0.0
        } else {
            self.finish.len() as f64 / self.makespan() as f64
        }
    }
}

/// Simulates the backup applying the primary's log under `protocol`.
///
/// A transaction's writes become available to the backup when the primary
/// commits it (the paper assumes instantaneous log delivery). Work is
/// dispatched in log order onto the earliest-available of the `m` cores,
/// subject to the protocol's ordering constraints.
pub fn simulate_backup(
    params: &ModelParams,
    primary: &PrimaryOutcome,
    protocol: BackupProtocol,
) -> BackupOutcome {
    assert!(params.cores > 0, "the backup needs at least one core");
    let d = params.backup_op_cost;
    let mut core_free = vec![0u64; params.cores];
    let mut finish = Vec::with_capacity(primary.log.len());

    match protocol {
        BackupProtocol::SingleThreaded => {
            let mut now = 0u64;
            for txn in &primary.log {
                now = now.max(txn.finish);
                now += d * txn.keys.len() as u64;
                finish.push(now);
            }
        }
        BackupProtocol::TxnGranularity => {
            // last_writer[key] = index (into `finish`) of the last transaction
            // that wrote the key.
            let mut last_writer: HashMap<u64, usize> = HashMap::new();
            for (i, txn) in primary.log.iter().enumerate() {
                // Wait for every conflicting predecessor to finish entirely.
                let mut deps_done = 0u64;
                for key in &txn.keys {
                    if let Some(&j) = last_writer.get(key) {
                        deps_done = deps_done.max(finish[j]);
                    }
                }
                let core = earliest_core(&mut core_free);
                let start = core_free[core].max(txn.finish).max(deps_done);
                let end = start + d * txn.keys.len() as u64;
                core_free[core] = end;
                finish.push(end);
                for key in &txn.keys {
                    last_writer.insert(*key, i);
                }
            }
        }
        BackupProtocol::PageGranularity { rows_per_page } => {
            finish = fine_grained(params, primary, d, &mut core_free, |key| {
                key / rows_per_page.max(1)
            });
        }
        BackupProtocol::RowGranularity => {
            finish = fine_grained(params, primary, d, &mut core_free, |key| key);
        }
    }

    let mut exposed = Vec::with_capacity(finish.len());
    let mut running_max = 0u64;
    for &f in &finish {
        running_max = running_max.max(f);
        exposed.push(running_max);
    }
    BackupOutcome { finish, exposed }
}

/// Shared machinery for the write-at-a-time protocols (page and row
/// granularity): each write is an independent task whose only ordering
/// constraint is the previous write to the same conflict group.
fn fine_grained(
    _params: &ModelParams,
    primary: &PrimaryOutcome,
    d: u64,
    core_free: &mut [u64],
    group_of: impl Fn(u64) -> u64,
) -> Vec<u64> {
    let mut group_free: HashMap<u64, u64> = HashMap::new();
    let mut finish = Vec::with_capacity(primary.log.len());
    for txn in &primary.log {
        let mut txn_done = 0u64;
        for &key in &txn.keys {
            let group = group_of(key);
            let core = earliest_core(core_free);
            let dep = group_free.get(&group).copied().unwrap_or(0);
            let start = core_free[core].max(txn.finish).max(dep);
            let end = start + d;
            core_free[core] = end;
            group_free.insert(group, end);
            txn_done = txn_done.max(end);
        }
        finish.push(txn_done);
    }
    finish
}

fn earliest_core(core_free: &mut [u64]) -> usize {
    core_free
        .iter()
        .enumerate()
        .min_by_key(|(_, &t)| t)
        .map(|(i, _)| i)
        .expect("at least one core")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary::simulate_primary_2pl;
    use crate::workload::{ModelParams, ModelWorkload};
    use crate::LagSeries;

    fn params() -> ModelParams {
        ModelParams::paper_like(20)
    }

    #[test]
    fn theorem1_txn_granularity_lag_grows_linearly() {
        // The proof's construction: with n*d > e, the transaction-granularity
        // backup's lag grows by (n*d - e) per transaction.
        let p = params();
        let n = 4u64;
        let w = ModelWorkload::theorem1(200, n, p.primary_op_cost);
        let primary = simulate_primary_2pl(&p, &w);
        let backup = simulate_backup(&p, &primary, BackupProtocol::TxnGranularity);
        let lag = LagSeries::new(&primary, &backup);

        let expected_slope = (n * p.backup_op_cost - p.primary_op_cost) as f64;
        assert!(
            (lag.slope() - expected_slope).abs() < 0.5,
            "lag must grow by nd - e per transaction (got slope {}, expected {expected_slope})",
            lag.slope()
        );
        assert!(lag.last() > lag.lags[0]);
    }

    #[test]
    fn theorem1_row_granularity_lag_stays_bounded() {
        let p = params();
        let w = ModelWorkload::theorem1(200, 4, p.primary_op_cost);
        let primary = simulate_primary_2pl(&p, &w);
        let backup = simulate_backup(&p, &primary, BackupProtocol::RowGranularity);
        let lag = LagSeries::new(&primary, &backup);
        assert!(
            lag.slope().abs() < 0.1,
            "row granularity must not accumulate lag (slope {})",
            lag.slope()
        );
        // Bounded by a small constant multiple of the per-transaction work.
        assert!(lag.max() <= 8 * p.backup_op_cost * 4);
    }

    #[test]
    fn page_granularity_lags_where_row_granularity_does_not() {
        let p = params();
        let w = ModelWorkload::page_adversarial(200, 4, 64, p.primary_op_cost);
        let primary = simulate_primary_2pl(&p, &w);
        let page = simulate_backup(
            &p,
            &primary,
            BackupProtocol::PageGranularity { rows_per_page: 64 },
        );
        let row = simulate_backup(&p, &primary, BackupProtocol::RowGranularity);
        let page_lag = LagSeries::new(&primary, &page);
        let row_lag = LagSeries::new(&primary, &row);
        assert!(page_lag.slope() > 1.0, "page granularity must fall behind");
        assert!(row_lag.slope().abs() < 0.1, "row granularity must keep up");
        assert!(page_lag.last() > 10 * row_lag.last().max(1));
    }

    #[test]
    fn single_threaded_is_never_faster_than_txn_granularity() {
        let p = params();
        let w = ModelWorkload::uniform(100, 4, p.primary_op_cost);
        let primary = simulate_primary_2pl(&p, &w);
        let single = simulate_backup(&p, &primary, BackupProtocol::SingleThreaded);
        let txn = simulate_backup(&p, &primary, BackupProtocol::TxnGranularity);
        assert!(single.makespan() >= txn.makespan());
        assert!(single.throughput() <= txn.throughput() + 1e-9);
    }

    #[test]
    fn uniform_workload_all_parallel_protocols_keep_up() {
        let p = params();
        let w = ModelWorkload::uniform(200, 4, p.primary_op_cost);
        let primary = simulate_primary_2pl(&p, &w);
        for protocol in [
            BackupProtocol::TxnGranularity,
            BackupProtocol::PageGranularity { rows_per_page: 1 },
            BackupProtocol::RowGranularity,
        ] {
            let backup = simulate_backup(&p, &primary, protocol);
            let lag = LagSeries::new(&primary, &backup);
            assert!(
                lag.slope().abs() < 0.1,
                "{} must keep up on a conflict-free workload",
                protocol.name()
            );
        }
    }

    #[test]
    fn exposure_is_monotonic() {
        let p = params();
        let w = ModelWorkload::theorem1(50, 3, p.primary_op_cost);
        let primary = simulate_primary_2pl(&p, &w);
        for protocol in [
            BackupProtocol::SingleThreaded,
            BackupProtocol::TxnGranularity,
            BackupProtocol::RowGranularity,
        ] {
            let backup = simulate_backup(&p, &primary, protocol);
            assert!(backup.exposed.windows(2).all(|w| w[0] <= w[1]));
            assert_eq!(backup.exposed.len(), backup.finish.len());
        }
    }
}
