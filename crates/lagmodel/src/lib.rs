//! A deterministic model of Section 3's primary-backup system.
//!
//! The paper's impossibility results (Theorem 1 for transaction granularity,
//! Section 3.1.1 for page granularity) and the keep-up result for row
//! granularity (Section 4.1.1, Theorem 2) are statements about an abstract
//! machine: a primary with `m` cores executing each operation in `e` time
//! units under two-phase locking, and a backup with `m` cores executing each
//! operation in `d <= e` time units under some cloned concurrency control
//! protocol. This crate implements that machine as a deterministic
//! discrete-event model so the theorems can be *demonstrated numerically*:
//! feed in the adversarial workload from the proof of Theorem 1 and watch the
//! transaction-granularity backup's lag grow linearly without bound while the
//! row-granularity backup's lag stays flat.
//!
//! The model is exact about the things the proofs depend on (core counts,
//! per-operation costs, lock serialization on conflicting keys, log order)
//! and deliberately simple about everything else; the full-system behaviour
//! is measured by the real implementations in `c5-core`/`c5-baselines`, not
//! here.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backup;
pub mod primary;
pub mod workload;

pub use backup::{simulate_backup, BackupOutcome, BackupProtocol};
pub use primary::{simulate_primary_2pl, LoggedTxn, PrimaryOutcome};
pub use workload::{ModelParams, ModelTxn, ModelWorkload};

/// Replication lag of every transaction, in model time units, in log order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagSeries {
    /// Lag per transaction (exposed time on the backup minus finish time on
    /// the primary), in log order.
    pub lags: Vec<u64>,
}

impl LagSeries {
    /// Computes the lag series from a primary and a backup outcome.
    pub fn new(primary: &PrimaryOutcome, backup: &BackupOutcome) -> Self {
        assert_eq!(primary.log.len(), backup.exposed.len());
        let lags = primary
            .log
            .iter()
            .zip(&backup.exposed)
            .map(|(txn, &exposed)| exposed.saturating_sub(txn.finish))
            .collect();
        Self { lags }
    }

    /// Maximum lag over the run.
    pub fn max(&self) -> u64 {
        self.lags.iter().copied().max().unwrap_or(0)
    }

    /// Lag of the final transaction (the quantity Theorem 1's proof drives to
    /// infinity).
    pub fn last(&self) -> u64 {
        self.lags.last().copied().unwrap_or(0)
    }

    /// Least-squares slope of lag versus transaction index, in time units per
    /// transaction. A positive slope that persists as the workload grows is
    /// the signature of unbounded lag; a near-zero slope means the backup
    /// keeps up.
    pub fn slope(&self) -> f64 {
        let n = self.lags.len();
        if n < 2 {
            return 0.0;
        }
        let n_f = n as f64;
        let mean_x = (n_f - 1.0) / 2.0;
        let mean_y = self.lags.iter().map(|&l| l as f64).sum::<f64>() / n_f;
        let mut cov = 0.0;
        let mut var = 0.0;
        for (i, &l) in self.lags.iter().enumerate() {
            let dx = i as f64 - mean_x;
            cov += dx * (l as f64 - mean_y);
            var += dx * dx;
        }
        if var == 0.0 {
            0.0
        } else {
            cov / var
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_series_statistics() {
        let primary = PrimaryOutcome {
            log: vec![
                LoggedTxn {
                    id: 1,
                    finish: 10,
                    keys: vec![1],
                },
                LoggedTxn {
                    id: 2,
                    finish: 20,
                    keys: vec![2],
                },
                LoggedTxn {
                    id: 3,
                    finish: 30,
                    keys: vec![3],
                },
            ],
        };
        let backup = BackupOutcome {
            finish: vec![15, 35, 60],
            exposed: vec![15, 35, 60],
        };
        let series = LagSeries::new(&primary, &backup);
        assert_eq!(series.lags, vec![5, 15, 30]);
        assert_eq!(series.max(), 30);
        assert_eq!(series.last(), 30);
        assert!(series.slope() > 0.0);
    }

    #[test]
    fn flat_series_has_zero_slope() {
        let series = LagSeries { lags: vec![7; 100] };
        assert!(series.slope().abs() < 1e-9);
        assert_eq!(series.max(), 7);
    }
}
