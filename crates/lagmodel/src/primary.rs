//! The model primary: `m` cores, two-phase locking, stored procedures.
//!
//! Each transaction runs on one core (the paper's Figure 2: a transaction's
//! own operations are sequential; parallelism comes from concurrent
//! transactions). An operation on a key whose lock is held waits until the
//! holder commits — writes under strict two-phase locking hold their locks to
//! the end of the transaction, and conflicting requests are granted in
//! arrival order.

use crate::workload::{ModelParams, ModelWorkload};

/// A committed transaction as it appears in the primary's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedTxn {
    /// The transaction's id.
    pub id: u64,
    /// When the primary finished it (`f_p`).
    pub finish: u64,
    /// Keys written, in operation order.
    pub keys: Vec<u64>,
}

/// The primary's execution outcome: the log, ordered by commit time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimaryOutcome {
    /// Committed transactions in commit (log) order.
    pub log: Vec<LoggedTxn>,
}

impl PrimaryOutcome {
    /// The finish time of the last transaction (the primary's makespan).
    pub fn makespan(&self) -> u64 {
        self.log.iter().map(|t| t.finish).max().unwrap_or(0)
    }

    /// Committed transactions per unit time.
    pub fn throughput(&self) -> f64 {
        if self.log.is_empty() || self.makespan() == 0 {
            0.0
        } else {
            self.log.len() as f64 / self.makespan() as f64
        }
    }
}

/// Simulates the two-phase-locking primary.
///
/// Transactions are admitted in arrival order. Each is placed on the core
/// that frees earliest; its operations execute sequentially at cost `e`; an
/// operation on a locked key waits until the lock frees, and the lock is then
/// held until the transaction finishes (strict 2PL).
pub fn simulate_primary_2pl(params: &ModelParams, workload: &ModelWorkload) -> PrimaryOutcome {
    assert!(params.cores > 0, "the primary needs at least one core");
    let e = params.primary_op_cost;
    let mut core_free = vec![0u64; params.cores];
    let mut lock_free: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut log: Vec<LoggedTxn> = Vec::with_capacity(workload.txns.len());

    for txn in &workload.txns {
        // Earliest-free core.
        let (core_idx, &free_at) = core_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one core");
        let mut now = free_at.max(txn.arrival);

        // First pass: execute operations, waiting for locks in arrival order.
        // We record, per key, when the operation *finished executing*; the
        // lock itself is released at transaction finish (second pass below).
        let mut op_finish_times = Vec::with_capacity(txn.keys.len());
        for &key in &txn.keys {
            let lock_available = lock_free.get(&key).copied().unwrap_or(0);
            let start = now.max(lock_available);
            now = start + e;
            op_finish_times.push(now);
        }
        let finish = now;
        // Strict 2PL: every written key stays locked until `finish`.
        for &key in &txn.keys {
            let entry = lock_free.entry(key).or_insert(0);
            *entry = (*entry).max(finish);
        }
        core_free[core_idx] = finish;
        log.push(LoggedTxn {
            id: txn.id,
            finish,
            keys: txn.keys.clone(),
        });
    }

    // The log reflects commit order.
    log.sort_by_key(|t| (t.finish, t.id));
    PrimaryOutcome { log }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ModelWorkload;

    fn params(cores: usize) -> ModelParams {
        ModelParams {
            cores,
            primary_op_cost: 10,
            backup_op_cost: 9,
        }
    }

    #[test]
    fn non_conflicting_transactions_run_in_parallel() {
        // Four single-write transactions, four cores, all arriving at time 0:
        // every one finishes at e.
        let w = ModelWorkload::uniform(4, 1, 0);
        let outcome = simulate_primary_2pl(&params(4), &w);
        assert!(outcome.log.iter().all(|t| t.finish == 10));
        assert_eq!(outcome.makespan(), 10);
    }

    #[test]
    fn conflicting_writes_serialize_on_the_lock() {
        // Two transactions, both writing key 0, arriving together with two
        // cores available: the second waits for the first's lock.
        let w = ModelWorkload::theorem1(2, 1, 0);
        let outcome = simulate_primary_2pl(&params(2), &w);
        assert_eq!(outcome.log[0].finish, 10);
        assert_eq!(outcome.log[1].finish, 20);
    }

    #[test]
    fn theorem1_workload_finishes_every_e_after_rampup() {
        // The proof's key fact: f_p(T_i) = (n + i) * e — after the pipeline
        // fills, the primary commits one transaction every e time units.
        let n = 4u64;
        let e = 10u64;
        let w = ModelWorkload::theorem1(32, n, e);
        let outcome = simulate_primary_2pl(&params(20), &w);
        for (i, txn) in outcome.log.iter().enumerate() {
            assert_eq!(
                txn.finish,
                (n + i as u64) * e,
                "transaction {i} must finish at (n + i) * e"
            );
        }
    }

    #[test]
    fn fewer_cores_than_load_queue_transactions() {
        // One core: everything serializes regardless of conflicts.
        let w = ModelWorkload::uniform(3, 2, 0);
        let outcome = simulate_primary_2pl(&params(1), &w);
        let finishes: Vec<u64> = outcome.log.iter().map(|t| t.finish).collect();
        assert_eq!(finishes, vec![20, 40, 60]);
    }

    #[test]
    fn throughput_is_txns_over_makespan() {
        let w = ModelWorkload::uniform(10, 1, 0);
        let outcome = simulate_primary_2pl(&params(10), &w);
        assert!(outcome.throughput() > 0.0);
    }
}
