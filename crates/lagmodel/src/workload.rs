//! Model parameters and workload constructions.

/// Parameters of the abstract machine (Section 3.1's system model).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelParams {
    /// Number of cores on each of the primary and the backup (`m`).
    pub cores: usize,
    /// Time to execute one operation on the primary (`e`).
    pub primary_op_cost: u64,
    /// Time to execute one operation on the backup (`d`, with `0 < d <= e`).
    pub backup_op_cost: u64,
}

impl ModelParams {
    /// Parameters matching the proof's assumptions: the backup is slightly
    /// faster per operation and the core count comfortably exceeds `e/d`.
    pub fn paper_like(cores: usize) -> Self {
        Self {
            cores,
            primary_op_cost: 10,
            backup_op_cost: 9,
        }
    }

    /// Checks the proof's side conditions (`m > e/d`, `d <= e`).
    pub fn satisfies_theorem_assumptions(&self) -> bool {
        self.backup_op_cost > 0
            && self.backup_op_cost <= self.primary_op_cost
            && (self.cores as u64) > self.primary_op_cost / self.backup_op_cost
    }
}

/// One transaction in the model: an arrival time and an ordered list of
/// written keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelTxn {
    /// Transaction identifier (also its arrival order).
    pub id: u64,
    /// Arrival time at the primary.
    pub arrival: u64,
    /// Keys written, in operation order.
    pub keys: Vec<u64>,
}

/// A workload: transactions ordered by arrival time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelWorkload {
    /// The transactions, sorted by arrival.
    pub txns: Vec<ModelTxn>,
}

impl ModelWorkload {
    /// The workload from the proof of Theorem 1: every transaction performs
    /// `writes_per_txn - 1` writes to unique keys followed by one write to
    /// the shared hot key `0`; a new transaction arrives every
    /// `interarrival` time units starting at 0.
    pub fn theorem1(count: u64, writes_per_txn: u64, interarrival: u64) -> Self {
        assert!(writes_per_txn >= 1);
        let mut txns = Vec::with_capacity(count as usize);
        let mut next_key = 1u64;
        for id in 0..count {
            let mut keys = Vec::with_capacity(writes_per_txn as usize);
            for _ in 0..writes_per_txn - 1 {
                keys.push(next_key);
                next_key += 1;
            }
            keys.push(0); // the hot key
            txns.push(ModelTxn {
                id,
                arrival: id * interarrival,
                keys,
            });
        }
        Self { txns }
    }

    /// The workload from the page-granularity argument (Section 3.1.1):
    /// each transaction performs `writes_per_txn - 1` writes to globally
    /// unique rows (which live on their own pages) followed by one write to a
    /// row on the shared hot page — keys `0..rows_per_page` all map to page 0.
    /// Consecutive transactions therefore write *different rows* of the same
    /// page: the row-locking primary runs them in parallel, a page-granularity
    /// backup serializes every one of them.
    pub fn page_adversarial(
        count: u64,
        writes_per_txn: u64,
        rows_per_page: u64,
        interarrival: u64,
    ) -> Self {
        assert!(writes_per_txn >= 1 && rows_per_page >= 1);
        let mut txns = Vec::with_capacity(count as usize);
        // Unique keys start past the hot page so they never share it.
        let mut next_key = rows_per_page;
        for id in 0..count {
            let mut keys = Vec::with_capacity(writes_per_txn as usize);
            for _ in 0..writes_per_txn - 1 {
                keys.push(next_key);
                next_key += 1;
            }
            keys.push(id % rows_per_page); // a row on the hot page
            txns.push(ModelTxn {
                id,
                arrival: id * interarrival,
                keys,
            });
        }
        Self { txns }
    }

    /// A fully uniform workload (no conflicts at any granularity finer than
    /// the whole database): every write targets a globally unique key.
    pub fn uniform(count: u64, writes_per_txn: u64, interarrival: u64) -> Self {
        let mut txns = Vec::with_capacity(count as usize);
        let mut next_key = 0u64;
        for id in 0..count {
            let keys = (0..writes_per_txn)
                .map(|_| {
                    next_key += 1;
                    next_key
                })
                .collect();
            txns.push(ModelTxn {
                id,
                arrival: id * interarrival,
                keys,
            });
        }
        Self { txns }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.txns.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.txns.is_empty()
    }

    /// Total number of writes.
    pub fn total_writes(&self) -> u64 {
        self.txns.iter().map(|t| t.keys.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_workload_shape() {
        let w = ModelWorkload::theorem1(10, 4, 10);
        assert_eq!(w.len(), 10);
        assert_eq!(w.total_writes(), 40);
        for txn in &w.txns {
            assert_eq!(*txn.keys.last().unwrap(), 0, "last write hits the hot key");
            // The first three keys are unique across the workload.
            assert_eq!(txn.keys.len(), 4);
        }
        let unique: std::collections::HashSet<u64> = w
            .txns
            .iter()
            .flat_map(|t| t.keys[..3].iter().copied())
            .collect();
        assert_eq!(unique.len(), 30);
    }

    #[test]
    fn page_adversarial_last_writes_share_a_page_but_not_a_row() {
        let rows_per_page = 8;
        let w = ModelWorkload::page_adversarial(8, 3, rows_per_page, 10);
        // Every transaction's last write lands on page 0 ...
        for txn in &w.txns {
            let last = *txn.keys.last().unwrap();
            assert!(last < rows_per_page);
        }
        // ... and within the first `rows_per_page` transactions the rows are
        // all distinct (the primary's row locks never conflict).
        let last_rows: std::collections::HashSet<u64> = w
            .txns
            .iter()
            .take(rows_per_page as usize)
            .map(|t| *t.keys.last().unwrap())
            .collect();
        assert_eq!(last_rows.len(), rows_per_page as usize);
        // The non-hot writes never touch the hot page.
        for txn in &w.txns {
            for &k in &txn.keys[..txn.keys.len() - 1] {
                assert!(k >= rows_per_page);
            }
        }
    }

    #[test]
    fn paper_params_satisfy_assumptions() {
        assert!(ModelParams::paper_like(20).satisfies_theorem_assumptions());
        let bad = ModelParams {
            cores: 1,
            primary_op_cost: 10,
            backup_op_cost: 9,
        };
        assert!(!bad.satisfies_theorem_assumptions());
    }
}
