//! Log retention for failover: keep shipped segments until a checkpoint
//! covers them, and replay the tail to cold replicas.
//!
//! The paper assumes the backup is always running, so the live channel is the
//! whole story. Failover needs two more things from the log: **retention** —
//! segments must outlive the channel so a replica started after the fact can
//! still read them — and **truncation** — once a checkpoint captures the
//! state at a cut, everything at or below the cut is dead weight and can be
//! dropped. [`LogArchive`] provides both: a [`crate::ship::LogShipper`]
//! configured with [`crate::ship::LogShipper::with_archive`] records every
//! shipped segment here, [`LogArchive::truncate_through`] drops whole
//! segments a checkpoint has covered, and [`LogArchive::replay_from`] hands a
//! cold replica exactly the records above its checkpoint cut — trimming the
//! one segment the cut may land inside, so the replayed stream still starts
//! at a transaction boundary and stays contiguous with the checkpoint.
//!
//! Two retention modes share this protocol:
//!
//! * **in-memory** ([`LogArchive::new`]) — "durable" means "outlives the
//!   shipping channel". This is all the in-process failover experiments need.
//! * **disk-backed** ([`LogArchive::durable`] / [`LogArchive::open`]) — every
//!   retained segment is additionally persisted as one [`crate::wal`]-encoded
//!   file, fsynced per [`DurabilityPolicy`], and truncation is recorded in a
//!   manifest written with the write-temp-then-rename discipline. After a
//!   crash, [`LogArchive::open`] rebuilds the archive from the surviving
//!   files, truncating — never panicking — at the first torn or corrupt
//!   frame, and re-aligning the recovered tail to a transaction boundary.

use std::collections::VecDeque;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use c5_common::frame::{read_frames, write_frame, PayloadReader, PayloadWriter};
use c5_common::{DurabilityPolicy, Error, Result, SeqNo};

use crate::segment::Segment;
use crate::wal::{decode_segment, encode_segment};

/// The manifest file recording the archive's truncation point.
const META_FILE: &str = "archive.meta";
/// Scratch name the manifest is written to before the atomic rename.
const META_TMP: &str = "archive.meta.tmp";

fn segment_file_name(first: SeqNo) -> String {
    // Zero-padded so lexicographic directory order is log order.
    format!("seg-{:020}.c5w", first.as_u64())
}

fn is_segment_file(name: &str) -> bool {
    name.starts_with("seg-") && name.ends_with(".c5w")
}

fn sorted_segment_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_str().is_some_and(is_segment_file) {
            files.push(entry.path());
        }
    }
    files.sort();
    Ok(files)
}

/// Best-effort directory fsync, so renames and unlinks are themselves
/// durable on filesystems that need it.
fn sync_dir(dir: &Path) {
    let _ = fs::File::open(dir).and_then(|f| f.sync_all());
}

fn write_meta(dir: &Path, truncated_through: SeqNo) -> io::Result<()> {
    let mut payload = PayloadWriter::new();
    payload.u64(truncated_through.as_u64());
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &payload.finish());

    let tmp = dir.join(META_TMP);
    let mut file = fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    fs::rename(&tmp, dir.join(META_FILE))?;
    sync_dir(dir);
    Ok(())
}

/// Reads the truncation manifest; a missing or damaged manifest degrades to
/// "nothing recorded" (the opener re-infers the floor from the files).
fn read_meta(dir: &Path) -> SeqNo {
    let Ok(bytes) = fs::read(dir.join(META_FILE)) else {
        return SeqNo::ZERO;
    };
    let scan = read_frames(&bytes);
    let Some(payload) = scan.frames.first() else {
        return SeqNo::ZERO;
    };
    PayloadReader::new(payload)
        .u64()
        .map(SeqNo)
        .unwrap_or(SeqNo::ZERO)
}

/// The disk half of a durable archive.
#[derive(Debug)]
struct DiskBacking {
    dir: PathBuf,
    policy: DurabilityPolicy,
    /// One file path per retained segment, aligned with
    /// `ArchiveInner::segments`.
    files: VecDeque<PathBuf>,
    /// Files written since the last fsync batch
    /// ([`DurabilityPolicy::EveryNSegments`] coalesces syncs).
    unsynced: Vec<PathBuf>,
}

impl DiskBacking {
    fn persist_segment(&mut self, segment: &Segment, first: SeqNo) -> io::Result<()> {
        let path = self.dir.join(segment_file_name(first));
        let mut file = fs::File::create(&path)?;
        file.write_all(&encode_segment(segment))?;
        self.unsynced.push(path.clone());
        if self.policy.should_sync(self.unsynced.len() as u32) {
            for pending in self.unsynced.drain(..) {
                fs::File::open(&pending)?.sync_all()?;
            }
            sync_dir(&self.dir);
        }
        self.files.push_back(path);
        Ok(())
    }
}

/// What [`LogArchive::open`] found on disk.
#[derive(Debug)]
pub struct DurableRecovery {
    /// The recovered archive, ready for appends, truncation, and replay.
    pub archive: LogArchive,
    /// Segments recovered intact (after tail trimming).
    pub recovered_segments: usize,
    /// Records recovered across those segments.
    pub recovered_records: usize,
    /// Whether any damage was found — a torn tail, a corrupt frame, or a
    /// gap — and the log was truncated at it.
    pub torn_tail: bool,
}

/// Retained log segments with truncation at a checkpoint cut and tail replay
/// for cold replicas. All methods are thread-safe; the shipper appends while
/// checkpointers truncate and cold replicas replay.
#[derive(Debug, Default)]
pub struct LogArchive {
    inner: Mutex<ArchiveInner>,
}

#[derive(Debug, Default)]
struct ArchiveInner {
    /// Retained segments, in log order.
    segments: VecDeque<Segment>,
    /// Largest position dropped by truncation; records at or below it are
    /// gone and cannot be replayed.
    truncated_through: SeqNo,
    /// Largest position appended so far (record or coverage watermark).
    last_seq: SeqNo,
    /// Present when the archive is disk-backed.
    disk: Option<DiskBacking>,
}

impl LogArchive {
    /// Creates an empty in-memory archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an archive for a log resuming at `cut` — a promoted primary's
    /// continuation log, whose first segment starts at `cut + 1`. Everything
    /// at or below the cut is covered by the promotion checkpoint, so the
    /// archive treats it as already truncated.
    pub fn starting_at(cut: SeqNo) -> Self {
        let archive = Self::default();
        archive.inner.lock().truncated_through = cut;
        archive
    }

    /// Creates a fresh disk-backed archive in `dir` (created if absent).
    /// Every appended segment is persisted as one segment file and fsynced
    /// according to `policy`; truncation is recorded in a manifest. Fails if
    /// `dir` already holds segment files — recover those with
    /// [`LogArchive::open`] instead of silently shadowing them.
    pub fn durable(dir: impl AsRef<Path>, policy: DurabilityPolicy) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if !sorted_segment_files(&dir)?.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} already holds archived segments; open() them instead",
                    dir.display()
                ),
            ));
        }
        write_meta(&dir, SeqNo::ZERO)?;
        let archive = Self::default();
        archive.inner.lock().disk = Some(DiskBacking {
            dir,
            policy,
            files: VecDeque::new(),
            unsynced: Vec::new(),
        });
        Ok(archive)
    }

    /// Recovers a disk-backed archive from `dir` after a crash or restart.
    ///
    /// Recovery walks the segment files in log order and keeps the longest
    /// valid prefix: a torn tail (a `kill -9` mid-write), a corrupt frame, or
    /// a sequence gap truncates the recovered log at that point — trimmed
    /// back to a transaction boundary — and deletes the unusable remainder
    /// from disk so a second open sees a clean archive. A missing or damaged
    /// manifest degrades to re-inferring the truncation floor from the first
    /// surviving file. This path never panics on damaged input.
    pub fn open(dir: impl AsRef<Path>, policy: DurabilityPolicy) -> io::Result<DurableRecovery> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let _ = fs::remove_file(dir.join(META_TMP));
        let meta = read_meta(&dir);

        let on_disk = sorted_segment_files(&dir)?;
        let mut segments: VecDeque<Segment> = VecDeque::new();
        let mut files: VecDeque<PathBuf> = VecDeque::new();
        let mut torn_tail = false;
        let mut truncated_through = meta;
        // The position the log is contiguous through so far.
        let mut covered: Option<SeqNo> = None;
        let mut stop_at = on_disk.len();

        for (idx, path) in on_disk.iter().enumerate() {
            let bytes = fs::read(path)?;
            let (decoded, clean) = decode_segment(&bytes).into_segment();
            let Some(segment) = decoded.filter(|s| !s.is_empty()) else {
                torn_tail = true;
                stop_at = idx;
                break;
            };
            let first = segment.first_seq().expect("recovered segment is non-empty");
            match covered {
                None => {
                    // Records below the first surviving file are gone no
                    // matter what the manifest says (a crash between file
                    // deletion and the manifest write leaves the manifest
                    // behind the truth).
                    truncated_through =
                        truncated_through.max(SeqNo(first.as_u64().saturating_sub(1)));
                }
                Some(covered) if first.as_u64() != covered.as_u64() + 1 => {
                    // A gap mid-log: nothing past it can be replayed safely.
                    torn_tail = true;
                    stop_at = idx;
                    break;
                }
                Some(_) => {}
            }
            if !clean {
                // Keep the trimmed prefix and rewrite the file so the
                // damage does not have to be re-truncated on the next open.
                torn_tail = true;
                stop_at = idx + 1;
                let tmp = dir.join(META_TMP);
                let mut file = fs::File::create(&tmp)?;
                file.write_all(&encode_segment(&segment))?;
                file.sync_all()?;
                fs::rename(&tmp, path)?;
                sync_dir(&dir);
                covered = Some(segment.covered_through());
                files.push_back(path.clone());
                segments.push_back(segment);
                break;
            }
            covered = Some(segment.covered_through());
            files.push_back(path.clone());
            segments.push_back(segment);
        }

        for path in &on_disk[stop_at.min(on_disk.len())..] {
            if !files.iter().any(|kept| kept == path) {
                let _ = fs::remove_file(path);
            }
        }
        if stop_at < on_disk.len() {
            sync_dir(&dir);
        }

        let recovered_segments = segments.len();
        let recovered_records = segments.iter().map(Segment::len).sum();
        let last_seq = covered.unwrap_or(SeqNo::ZERO).max(truncated_through);

        let archive = Self::default();
        {
            let mut inner = archive.inner.lock();
            inner.segments = segments;
            inner.truncated_through = truncated_through;
            inner.last_seq = last_seq;
            inner.disk = Some(DiskBacking {
                dir,
                policy,
                files,
                unsynced: Vec::new(),
            });
        }
        Ok(DurableRecovery {
            archive,
            recovered_segments,
            recovered_records,
            torn_tail,
        })
    }

    /// Retains a copy of one shipped segment.
    ///
    /// An **empty** segment carries no replayable records and is not
    /// retained, but its coverage claim still advances the archive's
    /// watermark: shard-routed shipping legitimately produces coverage-only
    /// sub-segments (`covers_through` beyond an empty record slice) for
    /// shards a parent segment skipped, and the next non-empty segment for
    /// that shard starts *after* the covered gap. Skipping the empty segment
    /// without advancing would make that next append look discontiguous.
    /// (Disk-backed archives do not persist coverage-only advances; after a
    /// reopen the watermark regresses to what the retained records show.)
    ///
    /// # Panics
    /// Panics if a non-empty segment does not directly follow the archive's
    /// watermark — an archive with a gap would silently replay a corrupt
    /// log, so a misordered producer fails loudly here (mirroring the
    /// replica-side `BoundaryLedger` contiguity assert) — and on an I/O
    /// failure of the disk backing, for the same reason: continuing past a
    /// failed persist would desynchronize the in-memory and on-disk logs.
    pub fn append(&self, segment: &Segment) {
        let mut inner = self.inner.lock();
        let Some(first) = segment.first_seq() else {
            inner.last_seq = inner.last_seq.max(segment.covered_through());
            return;
        };
        let expected = inner.last_seq.max(inner.truncated_through);
        assert_eq!(
            first.as_u64(),
            expected.as_u64() + 1,
            "archived segments must arrive in log order: got a segment \
             starting at {first} when the archive holds through {expected}"
        );
        inner.last_seq = segment.covered_through();
        if let Some(disk) = inner.disk.as_mut() {
            if let Err(e) = disk.persist_segment(segment, first) {
                panic!(
                    "durable archive failed to persist the segment starting at {first} \
                     under {}: {e}",
                    disk.dir.display()
                );
            }
        }
        inner.segments.push_back(segment.clone());
    }

    /// Drops every retained segment that lies entirely at or below `cut`
    /// (a checkpoint at `cut` has made them redundant). A segment straddling
    /// the cut is kept whole — [`replay_from`](Self::replay_from) trims it.
    /// A disk-backed archive also deletes the segments' files and records
    /// the new truncation point in the manifest (write-temp-then-rename).
    /// Returns the number of segments dropped.
    ///
    /// # Panics
    /// Panics if a disk-backed archive cannot rewrite its manifest; a stale
    /// manifest would let a later recovery replay records a checkpoint
    /// already superseded.
    pub fn truncate_through(&self, cut: SeqNo) -> usize {
        let mut inner = self.inner.lock();
        let mut dropped = 0;
        while let Some(front) = inner.segments.front() {
            match front.last_seq() {
                Some(last) if last <= cut => {
                    inner.truncated_through = inner.truncated_through.max(last);
                    inner.segments.pop_front();
                    if let Some(disk) = inner.disk.as_mut() {
                        if let Some(path) = disk.files.pop_front() {
                            disk.unsynced.retain(|p| p != &path);
                            let _ = fs::remove_file(&path);
                        }
                    }
                    dropped += 1;
                }
                _ => break,
            }
        }
        if dropped > 0 {
            if let Some(disk) = inner.disk.as_ref() {
                if let Err(e) = write_meta(&disk.dir, inner.truncated_through) {
                    panic!(
                        "durable archive failed to record truncation through {} \
                         under {}: {e}",
                        inner.truncated_through,
                        disk.dir.display()
                    );
                }
            }
        }
        dropped
    }

    /// The records above `from`, packed into segments a replica can consume
    /// directly after installing a checkpoint at `from`: the first returned
    /// segment starts at `from + 1`, and a retained segment the cut lands
    /// inside is trimmed to its suffix. Fails with
    /// [`Error::ArchiveTruncated`] when truncation has already dropped
    /// records above `from` — the caller's checkpoint is too old for this
    /// archive and must be replaced by one at or above the truncation point;
    /// silently starting cold would replay a log with a hole in it.
    ///
    /// # Panics
    /// Panics if `from` splits a transaction: checkpoint cuts are transaction
    /// boundaries by construction, and replaying from a torn cut would apply
    /// half a transaction twice.
    pub fn replay_from(&self, from: SeqNo) -> Result<Vec<Segment>> {
        let inner = self.inner.lock();
        if from < inner.truncated_through {
            return Err(Error::ArchiveTruncated {
                from,
                truncated_through: inner.truncated_through,
            });
        }
        let mut out = Vec::new();
        for segment in &inner.segments {
            match segment.last_seq() {
                Some(last) if last > from => {}
                _ => continue,
            }
            let first = segment.first_seq().expect("non-empty segment");
            if first > from {
                out.push(segment.clone());
            } else {
                // The cut lands inside this segment: replay its suffix. The
                // suffix starts right after a transaction's last write
                // because cuts are transaction boundaries.
                let records: Vec<_> = segment
                    .records
                    .iter()
                    .filter(|r| r.seq > from)
                    .cloned()
                    .collect();
                if let Some(first) = records.first() {
                    assert!(
                        first.is_txn_first(),
                        "replay cut {from} splits a transaction"
                    );
                }
                out.push(Segment::sub_segment(
                    segment.header.id,
                    records,
                    segment.covered_through(),
                ));
            }
        }
        Ok(out)
    }

    /// Forces every pending segment file to disk regardless of the policy's
    /// batching (a no-op for in-memory archives). Call before handing the
    /// directory to another process.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        if let Some(disk) = inner.disk.as_mut() {
            for pending in disk.unsynced.drain(..) {
                fs::File::open(&pending)?.sync_all()?;
            }
            sync_dir(&disk.dir);
        }
        Ok(())
    }

    /// Number of segments currently retained.
    pub fn retained_segments(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Number of records currently retained.
    pub fn retained_records(&self) -> usize {
        self.inner.lock().segments.iter().map(Segment::len).sum()
    }

    /// Largest position appended so far — exactly what has gone over the
    /// wire when the archive is attached to a shipper, which makes it the
    /// survivable log end after a primary crash (the crashed primary's
    /// buffered-but-unshipped tail is not in here).
    pub fn last_seq(&self) -> SeqNo {
        self.inner.lock().last_seq
    }

    /// Largest position dropped by truncation (replays must start at or
    /// above it).
    pub fn truncated_through(&self) -> SeqNo {
        self.inner.lock().truncated_through
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::segments_from_entries;
    use crate::record::TxnEntry;
    use c5_common::{RowRef, RowWrite, Timestamp, TxnId, Value};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Six transactions of two writes each, packed 4 records (= 2 txns) per
    /// segment: boundaries at 2, 4, 6, 8, 10, 12; segment ends at 4, 8, 12.
    fn test_log() -> Vec<Segment> {
        let entries: Vec<TxnEntry> = (1..=6u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![
                        RowWrite::update(RowRef::new(0, t), Value::from_u64(t)),
                        RowWrite::update(RowRef::new(0, 100 + t), Value::from_u64(t)),
                    ],
                )
            })
            .collect();
        segments_from_entries(&entries, 4)
    }

    fn archive_with_log() -> (LogArchive, Vec<Segment>) {
        let segments = test_log();
        let archive = LogArchive::new();
        for segment in &segments {
            archive.append(segment);
        }
        (archive, segments)
    }

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory (no tempfile crate in this workspace).
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "c5-archive-{tag}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_retains_and_tracks_the_log_end() {
        let (archive, segments) = archive_with_log();
        assert_eq!(archive.retained_segments(), segments.len());
        assert_eq!(archive.retained_records(), 12);
        assert_eq!(archive.last_seq(), SeqNo(12));
        assert_eq!(archive.truncated_through(), SeqNo::ZERO);
    }

    #[test]
    #[should_panic(expected = "log order")]
    fn append_rejects_gaps() {
        let (archive, segments) = archive_with_log();
        // Re-appending the first segment is out of order.
        archive.append(&segments[0]);
    }

    #[test]
    fn replay_from_zero_returns_the_whole_log() {
        let (archive, segments) = archive_with_log();
        let replay = archive.replay_from(SeqNo::ZERO).unwrap();
        assert_eq!(replay.len(), segments.len());
        let seqs: Vec<u64> = crate::logger::flatten(&replay)
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn replay_from_a_mid_segment_boundary_trims_the_straddling_segment() {
        let (archive, _) = archive_with_log();
        // Cut 6 is a transaction boundary inside the second segment (5..=8).
        let replay = archive.replay_from(SeqNo(6)).unwrap();
        let records = crate::logger::flatten(&replay);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq.as_u64()).collect();
        assert_eq!(seqs, (7..=12).collect::<Vec<_>>());
        assert!(records[0].is_txn_first());
        // The trimmed segment still covers its parent's span.
        assert_eq!(replay[0].covered_through(), SeqNo(8));
    }

    #[test]
    #[should_panic(expected = "splits a transaction")]
    fn replay_from_a_torn_cut_fails_loudly() {
        let (archive, _) = archive_with_log();
        // Seq 5 is mid-transaction (txn 3 writes 5 and 6).
        let _ = archive.replay_from(SeqNo(5));
    }

    #[test]
    fn truncation_drops_covered_segments_and_bounds_replay() {
        let (archive, _) = archive_with_log();
        // A checkpoint at 6 covers segment 0 entirely; segment 1 straddles
        // and is kept whole.
        assert_eq!(archive.truncate_through(SeqNo(6)), 1);
        assert_eq!(archive.retained_segments(), 2);
        assert_eq!(archive.truncated_through(), SeqNo(4));

        // Replays at or above the truncation point still work...
        let replay = archive.replay_from(SeqNo(6)).unwrap();
        let seqs: Vec<u64> = crate::logger::flatten(&replay)
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (7..=12).collect::<Vec<_>>());
        assert_eq!(archive.replay_from(SeqNo(4)).unwrap().len(), 2);
        // ...but a replay below it reports the gap as a typed error a
        // recovery driver can act on, instead of a corrupt log.
        match archive.replay_from(SeqNo(2)) {
            Err(Error::ArchiveTruncated {
                from,
                truncated_through,
            }) => {
                assert_eq!(from, SeqNo(2));
                assert_eq!(truncated_through, SeqNo(4));
            }
            other => panic!("expected ArchiveTruncated, got {other:?}"),
        }

        // Truncating everything leaves appends still contiguous.
        archive.truncate_through(SeqNo(12));
        assert_eq!(archive.retained_segments(), 0);
        assert_eq!(archive.replay_from(SeqNo(12)).unwrap().len(), 0);
    }

    #[test]
    fn starting_at_accepts_a_continuation_log() {
        // A promoted primary's log resumes at cut + 1; its archive must
        // accept that as the first segment and replay from the cut.
        let entry = TxnEntry::new(
            TxnId(1),
            Timestamp(11),
            vec![RowWrite::update(RowRef::new(0, 1), Value::from_u64(1))],
        );
        let (records, _) = crate::record::explode_txn(&entry, SeqNo(10));
        let archive = LogArchive::starting_at(SeqNo(10));
        archive.append(&Segment::new(0, records));
        let replay = archive.replay_from(SeqNo(10)).unwrap();
        assert_eq!(crate::logger::flatten(&replay)[0].seq, SeqNo(11));
        assert!(matches!(
            archive.replay_from(SeqNo(9)),
            Err(Error::ArchiveTruncated { .. })
        ));
    }

    #[test]
    fn empty_segments_are_not_retained() {
        let archive = LogArchive::new();
        archive.append(&Segment::new(0, vec![]));
        assert_eq!(archive.retained_segments(), 0);
        assert_eq!(archive.last_seq(), SeqNo::ZERO);
    }

    /// Regression test: a quiet shard's stream is a coverage-only empty
    /// sub-segment followed by a non-empty one starting after the covered
    /// gap. The empty segment must advance the watermark (without being
    /// retained) or the follow-up append trips the contiguity assert.
    #[test]
    fn empty_segments_advance_coverage_for_the_next_append() {
        let segments = test_log();
        let archive = LogArchive::new();
        archive.append(&segments[0]); // seqs 1..=4

        // The shard saw nothing of the parent covering 5..=8.
        archive.append(&Segment::sub_segment(1, vec![], SeqNo(8)));
        assert_eq!(archive.retained_segments(), 1);
        assert_eq!(archive.last_seq(), SeqNo(8));

        // Its next records start at 9 — contiguous with the coverage, not
        // with the last retained record.
        archive.append(&segments[2]);
        assert_eq!(archive.retained_segments(), 2);
        assert_eq!(archive.last_seq(), SeqNo(12));

        // A stale or duplicate coverage claim never regresses the watermark.
        archive.append(&Segment::sub_segment(3, vec![], SeqNo(6)));
        assert_eq!(archive.last_seq(), SeqNo(12));

        let replay = archive.replay_from(SeqNo(4)).unwrap();
        let seqs: Vec<u64> = crate::logger::flatten(&replay)
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (9..=12).collect::<Vec<_>>());
    }

    #[test]
    fn durable_archive_round_trips_across_a_reopen() {
        let dir = scratch_dir("roundtrip");
        let segments = test_log();
        {
            let archive =
                LogArchive::durable(&dir, DurabilityPolicy::EverySegment).expect("create");
            for segment in &segments {
                archive.append(segment);
            }
            assert_eq!(archive.retained_records(), 12);
        } // drop = crash (no clean shutdown step exists)

        let recovery = LogArchive::open(&dir, DurabilityPolicy::EverySegment).expect("open");
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.recovered_segments, 3);
        assert_eq!(recovery.recovered_records, 12);
        let archive = recovery.archive;
        assert_eq!(archive.last_seq(), SeqNo(12));
        let seqs: Vec<u64> = crate::logger::flatten(&archive.replay_from(SeqNo::ZERO).unwrap())
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (1..=12).collect::<Vec<_>>());

        // Appends continue where the recovered log ends.
        let entry = TxnEntry::new(
            TxnId(7),
            Timestamp(7),
            vec![RowWrite::update(RowRef::new(0, 7), Value::from_u64(7))],
        );
        let (records, _) = crate::record::explode_txn(&entry, SeqNo(12));
        archive.append(&Segment::new(3, records));
        assert_eq!(archive.last_seq(), SeqNo(13));

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn durable_truncation_survives_a_reopen() {
        let dir = scratch_dir("truncate");
        let segments = test_log();
        {
            let archive =
                LogArchive::durable(&dir, DurabilityPolicy::EveryNSegments(2)).expect("create");
            for segment in &segments {
                archive.append(segment);
            }
            archive.sync().expect("flush the unsynced batch");
            assert_eq!(archive.truncate_through(SeqNo(6)), 1);
        }

        let recovery = LogArchive::open(&dir, DurabilityPolicy::EverySegment).expect("open");
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.recovered_segments, 2);
        let archive = recovery.archive;
        assert_eq!(archive.truncated_through(), SeqNo(4));
        assert!(matches!(
            archive.replay_from(SeqNo(2)),
            Err(Error::ArchiveTruncated { .. })
        ));
        let seqs: Vec<u64> = crate::logger::flatten(&archive.replay_from(SeqNo(6)).unwrap())
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (7..=12).collect::<Vec<_>>());

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn torn_tail_is_truncated_to_a_transaction_boundary_and_never_panics() {
        let dir = scratch_dir("torn");
        let segments = test_log();
        {
            let archive =
                LogArchive::durable(&dir, DurabilityPolicy::EverySegment).expect("create");
            for segment in &segments {
                archive.append(segment);
            }
        }
        // Tear the last file mid-record, as a kill -9 mid-write would.
        let last = sorted_segment_files(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&last).unwrap();
        fs::write(&last, &bytes[..bytes.len() - 30]).unwrap();

        let recovery = LogArchive::open(&dir, DurabilityPolicy::EverySegment).expect("open");
        assert!(recovery.torn_tail);
        let archive = recovery.archive;
        let records = crate::logger::flatten(&archive.replay_from(SeqNo::ZERO).unwrap());
        assert!(records.len() < 12);
        assert!(records.last().unwrap().is_txn_last(), "txn-aligned tail");
        let recovered_through = records.last().unwrap().seq;

        // The damaged file was rewritten clean: a second open finds no
        // damage and the same records.
        drop(archive);
        let again = LogArchive::open(&dir, DurabilityPolicy::EverySegment).expect("reopen");
        assert!(!again.torn_tail);
        assert_eq!(again.archive.last_seq(), recovered_through);

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_middle_file_truncates_the_recovered_log_there() {
        let dir = scratch_dir("corrupt");
        let segments = test_log();
        {
            let archive =
                LogArchive::durable(&dir, DurabilityPolicy::EverySegment).expect("create");
            for segment in &segments {
                archive.append(segment);
            }
        }
        // Flip one payload byte in the middle file (index 1 of 3).
        let files = sorted_segment_files(&dir).unwrap();
        let mut bytes = fs::read(&files[1]).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x20;
        fs::write(&files[1], &bytes).unwrap();

        let recovery = LogArchive::open(&dir, DurabilityPolicy::EverySegment).expect("open");
        assert!(recovery.torn_tail);
        let archive = recovery.archive;
        let records = crate::logger::flatten(&archive.replay_from(SeqNo::ZERO).unwrap());
        // Everything after the damage — including the intact third file —
        // is discarded: a log with a hole cannot be replayed.
        assert!(records.last().map(|r| r.seq.as_u64()).unwrap_or(0) <= 8);
        assert!(records.last().map(|r| r.is_txn_last()).unwrap_or(true));
        assert!(sorted_segment_files(&dir).unwrap().len() <= 2);

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn opening_an_empty_directory_yields_a_fresh_archive() {
        let dir = scratch_dir("fresh");
        let recovery = LogArchive::open(&dir, DurabilityPolicy::Never).expect("open");
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.recovered_segments, 0);
        let archive = recovery.archive;
        assert_eq!(archive.last_seq(), SeqNo::ZERO);
        for segment in &test_log() {
            archive.append(segment);
        }
        assert_eq!(archive.retained_records(), 12);

        fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn durable_refuses_a_directory_that_already_holds_segments() {
        let dir = scratch_dir("refuse");
        {
            let archive =
                LogArchive::durable(&dir, DurabilityPolicy::EverySegment).expect("create");
            archive.append(&test_log()[0]);
        }
        let err = LogArchive::durable(&dir, DurabilityPolicy::EverySegment)
            .expect_err("must refuse to shadow an existing archive");
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);

        fs::remove_dir_all(&dir).expect("cleanup");
    }
}
