//! Log retention for failover: keep shipped segments until a checkpoint
//! covers them, and replay the tail to cold replicas.
//!
//! The paper assumes the backup is always running, so the live channel is the
//! whole story. Failover needs two more things from the log: **retention** —
//! segments must outlive the channel so a replica started after the fact can
//! still read them — and **truncation** — once a checkpoint captures the
//! state at a cut, everything at or below the cut is dead weight and can be
//! dropped. [`LogArchive`] provides both: a [`crate::ship::LogShipper`]
//! configured with [`crate::ship::LogShipper::with_archive`] records every
//! shipped segment here, [`LogArchive::truncate_through`] drops whole
//! segments a checkpoint has covered, and [`LogArchive::replay_from`] hands a
//! cold replica exactly the records above its checkpoint cut — trimming the
//! one segment the cut may land inside, so the replayed stream still starts
//! at a transaction boundary and stays contiguous with the checkpoint.
//!
//! The reproduction is in-memory end to end, so "durable" here means
//! "outlives the shipping channel", not "survives the process"; the protocol
//! (retain → checkpoint → truncate → replay from the cut) is the same one a
//! disk-backed segment store would run.

use std::collections::VecDeque;

use parking_lot::Mutex;

use c5_common::SeqNo;

use crate::segment::Segment;

/// Retained log segments with truncation at a checkpoint cut and tail replay
/// for cold replicas. All methods are thread-safe; the shipper appends while
/// checkpointers truncate and cold replicas replay.
#[derive(Debug, Default)]
pub struct LogArchive {
    inner: Mutex<ArchiveInner>,
}

#[derive(Debug, Default)]
struct ArchiveInner {
    /// Retained segments, in log order.
    segments: VecDeque<Segment>,
    /// Largest position dropped by truncation; records at or below it are
    /// gone and cannot be replayed.
    truncated_through: SeqNo,
    /// Largest position appended so far.
    last_seq: SeqNo,
}

impl LogArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an archive for a log resuming at `cut` — a promoted primary's
    /// continuation log, whose first segment starts at `cut + 1`. Everything
    /// at or below the cut is covered by the promotion checkpoint, so the
    /// archive treats it as already truncated.
    pub fn starting_at(cut: SeqNo) -> Self {
        let archive = Self::default();
        archive.inner.lock().truncated_through = cut;
        archive
    }

    /// Retains a copy of one shipped segment. Empty segments carry no
    /// replayable records and are not retained.
    ///
    /// # Panics
    /// Panics if the segment does not directly follow the last one appended —
    /// an archive with a gap would silently replay a corrupt log, so a
    /// misordered producer fails loudly here (mirroring the replica-side
    /// `BoundaryLedger` contiguity assert).
    pub fn append(&self, segment: &Segment) {
        let Some(first) = segment.first_seq() else {
            return;
        };
        let mut inner = self.inner.lock();
        let expected = inner.last_seq.max(inner.truncated_through);
        assert_eq!(
            first.as_u64(),
            expected.as_u64() + 1,
            "archived segments must arrive in log order: got a segment \
             starting at {first} when the archive holds through {expected}"
        );
        inner.last_seq = segment.last_seq().expect("non-empty segment");
        inner.segments.push_back(segment.clone());
    }

    /// Drops every retained segment that lies entirely at or below `cut`
    /// (a checkpoint at `cut` has made them redundant). A segment straddling
    /// the cut is kept whole — [`replay_from`](Self::replay_from) trims it.
    /// Returns the number of segments dropped.
    pub fn truncate_through(&self, cut: SeqNo) -> usize {
        let mut inner = self.inner.lock();
        let mut dropped = 0;
        while let Some(front) = inner.segments.front() {
            match front.last_seq() {
                Some(last) if last <= cut => {
                    inner.truncated_through = inner.truncated_through.max(last);
                    inner.segments.pop_front();
                    dropped += 1;
                }
                _ => break,
            }
        }
        dropped
    }

    /// The records above `from`, packed into segments a replica can consume
    /// directly after installing a checkpoint at `from`: the first returned
    /// segment starts at `from + 1`, and a retained segment the cut lands
    /// inside is trimmed to its suffix. Returns `None` when truncation has
    /// already dropped records above `from` (the caller's checkpoint is too
    /// old for this archive — it must bootstrap from a newer checkpoint).
    ///
    /// # Panics
    /// Panics if `from` splits a transaction: checkpoint cuts are transaction
    /// boundaries by construction, and replaying from a torn cut would apply
    /// half a transaction twice.
    pub fn replay_from(&self, from: SeqNo) -> Option<Vec<Segment>> {
        let inner = self.inner.lock();
        if from < inner.truncated_through {
            return None;
        }
        let mut out = Vec::new();
        for segment in &inner.segments {
            match segment.last_seq() {
                Some(last) if last > from => {}
                _ => continue,
            }
            let first = segment.first_seq().expect("non-empty segment");
            if first > from {
                out.push(segment.clone());
            } else {
                // The cut lands inside this segment: replay its suffix. The
                // suffix starts right after a transaction's last write
                // because cuts are transaction boundaries.
                let records: Vec<_> = segment
                    .records
                    .iter()
                    .filter(|r| r.seq > from)
                    .cloned()
                    .collect();
                if let Some(first) = records.first() {
                    assert!(
                        first.is_txn_first(),
                        "replay cut {from} splits a transaction"
                    );
                }
                out.push(Segment::sub_segment(
                    segment.header.id,
                    records,
                    segment.covered_through(),
                ));
            }
        }
        Some(out)
    }

    /// Number of segments currently retained.
    pub fn retained_segments(&self) -> usize {
        self.inner.lock().segments.len()
    }

    /// Number of records currently retained.
    pub fn retained_records(&self) -> usize {
        self.inner.lock().segments.iter().map(Segment::len).sum()
    }

    /// Largest position appended so far — exactly what has gone over the
    /// wire when the archive is attached to a shipper, which makes it the
    /// survivable log end after a primary crash (the crashed primary's
    /// buffered-but-unshipped tail is not in here).
    pub fn last_seq(&self) -> SeqNo {
        self.inner.lock().last_seq
    }

    /// Largest position dropped by truncation (replays must start at or
    /// above it).
    pub fn truncated_through(&self) -> SeqNo {
        self.inner.lock().truncated_through
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::segments_from_entries;
    use crate::record::TxnEntry;
    use c5_common::{RowRef, RowWrite, Timestamp, TxnId, Value};

    /// Six transactions of two writes each, packed 4 records (= 2 txns) per
    /// segment: boundaries at 2, 4, 6, 8, 10, 12; segment ends at 4, 8, 12.
    fn archive_with_log() -> (LogArchive, Vec<Segment>) {
        let entries: Vec<TxnEntry> = (1..=6u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(t),
                    vec![
                        RowWrite::update(RowRef::new(0, t), Value::from_u64(t)),
                        RowWrite::update(RowRef::new(0, 100 + t), Value::from_u64(t)),
                    ],
                )
            })
            .collect();
        let segments = segments_from_entries(&entries, 4);
        let archive = LogArchive::new();
        for segment in &segments {
            archive.append(segment);
        }
        (archive, segments)
    }

    #[test]
    fn append_retains_and_tracks_the_log_end() {
        let (archive, segments) = archive_with_log();
        assert_eq!(archive.retained_segments(), segments.len());
        assert_eq!(archive.retained_records(), 12);
        assert_eq!(archive.last_seq(), SeqNo(12));
        assert_eq!(archive.truncated_through(), SeqNo::ZERO);
    }

    #[test]
    #[should_panic(expected = "log order")]
    fn append_rejects_gaps() {
        let (archive, segments) = archive_with_log();
        // Re-appending the first segment is out of order.
        archive.append(&segments[0]);
    }

    #[test]
    fn replay_from_zero_returns_the_whole_log() {
        let (archive, segments) = archive_with_log();
        let replay = archive.replay_from(SeqNo::ZERO).unwrap();
        assert_eq!(replay.len(), segments.len());
        let seqs: Vec<u64> = crate::logger::flatten(&replay)
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (1..=12).collect::<Vec<_>>());
    }

    #[test]
    fn replay_from_a_mid_segment_boundary_trims_the_straddling_segment() {
        let (archive, _) = archive_with_log();
        // Cut 6 is a transaction boundary inside the second segment (5..=8).
        let replay = archive.replay_from(SeqNo(6)).unwrap();
        let records = crate::logger::flatten(&replay);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq.as_u64()).collect();
        assert_eq!(seqs, (7..=12).collect::<Vec<_>>());
        assert!(records[0].is_txn_first());
        // The trimmed segment still covers its parent's span.
        assert_eq!(replay[0].covered_through(), SeqNo(8));
    }

    #[test]
    #[should_panic(expected = "splits a transaction")]
    fn replay_from_a_torn_cut_fails_loudly() {
        let (archive, _) = archive_with_log();
        // Seq 5 is mid-transaction (txn 3 writes 5 and 6).
        let _ = archive.replay_from(SeqNo(5));
    }

    #[test]
    fn truncation_drops_covered_segments_and_bounds_replay() {
        let (archive, _) = archive_with_log();
        // A checkpoint at 6 covers segment 0 entirely; segment 1 straddles
        // and is kept whole.
        assert_eq!(archive.truncate_through(SeqNo(6)), 1);
        assert_eq!(archive.retained_segments(), 2);
        assert_eq!(archive.truncated_through(), SeqNo(4));

        // Replays at or above the truncation point still work...
        let replay = archive.replay_from(SeqNo(6)).unwrap();
        let seqs: Vec<u64> = crate::logger::flatten(&replay)
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        assert_eq!(seqs, (7..=12).collect::<Vec<_>>());
        assert_eq!(archive.replay_from(SeqNo(4)).unwrap().len(), 2);
        // ...but a replay below it reports the gap instead of a corrupt log.
        assert!(archive.replay_from(SeqNo(2)).is_none());

        // Truncating everything leaves appends still contiguous.
        archive.truncate_through(SeqNo(12));
        assert_eq!(archive.retained_segments(), 0);
        assert_eq!(archive.replay_from(SeqNo(12)).unwrap().len(), 0);
    }

    #[test]
    fn starting_at_accepts_a_continuation_log() {
        // A promoted primary's log resumes at cut + 1; its archive must
        // accept that as the first segment and replay from the cut.
        let entry = TxnEntry::new(
            TxnId(1),
            Timestamp(11),
            vec![RowWrite::update(RowRef::new(0, 1), Value::from_u64(1))],
        );
        let (records, _) = crate::record::explode_txn(&entry, SeqNo(10));
        let archive = LogArchive::starting_at(SeqNo(10));
        archive.append(&Segment::new(0, records));
        let replay = archive.replay_from(SeqNo(10)).unwrap();
        assert_eq!(crate::logger::flatten(&replay)[0].seq, SeqNo(11));
        assert!(archive.replay_from(SeqNo(9)).is_none());
    }

    #[test]
    fn empty_segments_are_not_retained() {
        let archive = LogArchive::new();
        archive.append(&Segment::new(0, vec![]));
        assert_eq!(archive.retained_segments(), 0);
        assert_eq!(archive.last_seq(), SeqNo::ZERO);
    }
}
