//! The replication log.
//!
//! Section 2.2: after a read-write transaction commits, the primary appends
//! its writes to a log that reflects a total order determined by the
//! transaction commit order and the order of each transaction's operations.
//! The log carries, per transaction, the written rows and metadata to
//! demarcate its writes from those of other transactions. The backup's cloned
//! concurrency control protocol consumes this log.
//!
//! Section 7.1 adds the details of the Cicada prototype logger this crate
//! also reproduces: the log is divided into fixed-size segments, each with a
//! header holding a `preprocessed` flag, transactions never span segment
//! boundaries, and each record carries an initially-unused `prev_timestamp`
//! field that C5's scheduler later fills with the position of the previous
//! write to the same row.
//!
//! Two production modes are provided:
//!
//! * [`logger::StreamingLogger`] — a live, totally ordered log used by the
//!   two-phase-locking primary (the MyRocks role). Commit order is the append
//!   order; completed segments are pushed to a [`ship::LogShipper`].
//! * [`logger::ThreadLog`] + [`logger::coalesce`] — per-thread logs used by
//!   the MVTSO primary (the Cicada role), coalesced into a single log sorted
//!   by commit timestamp before replication starts, exactly as the paper's
//!   prototype does.
//!
//! One representation detail worth calling out: on the backup, all protocols
//! in this reproduction use the *log position* ([`c5_common::SeqNo`]) of a
//! write as the version timestamp they install into the backup's store. The
//! paper's C5-Cicada uses the primary's write timestamps for the same
//! purpose; both choices identify "the previous write to this row in the
//! log", which is the only property the scheduler and snapshotter rely on.
//! Using log positions keeps the backup machinery identical across the 2PL
//! and MVTSO primaries.

//! For failover, the log additionally supports **retention and replay**
//! ([`archive::LogArchive`]): a shipper with an attached archive records
//! every segment that goes on the wire, a checkpoint truncates the archive
//! at its cut, and a cold replica bootstraps by installing the checkpoint
//! and replaying the retained tail from the cut. The archive can be
//! disk-backed ([`archive::LogArchive::durable`]): segments are persisted in
//! the checksummed on-disk format of [`wal`] and fsynced per
//! [`c5_common::DurabilityPolicy`], and [`archive::LogArchive::open`]
//! recovers the retained log across a real process restart, truncating a
//! torn or corrupt tail back to a transaction boundary instead of panicking.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod archive;
pub mod logger;
pub mod record;
pub mod segment;
pub mod ship;
pub mod wal;

pub use archive::{DurableRecovery, LogArchive};
pub use logger::{coalesce, flatten, segments_from_entries, StreamingLogger, ThreadLog};
pub use record::{explode_txn, now_nanos, LogRecord, TxnEntry};
pub use segment::{Segment, SegmentHeader};
pub use ship::{
    route_segment, route_segment_with, LogReceiver, LogShipper, RoutedSegments, RoutingStats,
    Subscription, SubscriptionId, TxnShardTracker,
};
