//! Loggers: a live streaming logger (MyRocks role) and per-thread logs with
//! offline coalescing (Cicada role).

use parking_lot::Mutex;

use c5_common::{SeqNo, Timestamp, TxnId};

use crate::record::{explode_txn, LogRecord, TxnEntry};
use crate::segment::{Segment, SegmentBuilder};
use crate::ship::LogShipper;

/// Live, totally ordered logger used by the two-phase-locking primary.
///
/// The primary's executor threads call [`StreamingLogger::append`] while
/// holding their write locks (or immediately after validation), so the append
/// order *is* the commit order — exactly the property the backup's protocols
/// rely on. Completed segments are pushed to the attached [`LogShipper`].
pub struct StreamingLogger {
    inner: Mutex<StreamingInner>,
    shipper: LogShipper,
}

struct StreamingInner {
    builder: SegmentBuilder,
    next_seq: SeqNo,
    next_commit_ts: Timestamp,
    appended_txns: u64,
}

impl StreamingLogger {
    /// Creates a logger that packs `segment_records` records per segment and
    /// ships them through `shipper`.
    pub fn new(segment_records: usize, shipper: LogShipper) -> Self {
        Self::resume_at(segment_records, shipper, SeqNo::ZERO)
    }

    /// Creates a logger that resumes a promoted log: sequence numbers and
    /// commit timestamps continue from `cut` (a promoted replica's exposed
    /// cut), so the new primary's log is a seamless continuation of the old
    /// one — a backup that applied the old log through `cut` can keep
    /// consuming this logger's segments without a gap, and every new commit
    /// timestamp exceeds every version the promoted store holds (the backup
    /// installs versions at log positions, all `<= cut`).
    pub fn resume_at(segment_records: usize, shipper: LogShipper, cut: SeqNo) -> Self {
        Self {
            inner: Mutex::new(StreamingInner {
                builder: SegmentBuilder::new(segment_records),
                next_seq: cut,
                next_commit_ts: Timestamp(cut.as_u64()),
                appended_txns: 0,
            }),
            shipper,
        }
    }

    /// Appends a committed transaction. The commit timestamp is assigned here
    /// (commit order = log order for the 2PL engine) and returned.
    ///
    /// Returns the assigned commit timestamp.
    pub fn append(&self, txn: TxnId, writes: Vec<c5_common::RowWrite>) -> Timestamp {
        self.append_tokened(txn, writes).0
    }

    /// Appends a committed transaction and also returns its **causal token**:
    /// the sequence number of the transaction's last write (its boundary).
    /// A backup whose exposed cut reaches the token has made this
    /// transaction visible, so the token is what a session carries to get
    /// read-your-writes from the replica fleet. A write-free transaction's
    /// token is the boundary of the previous transaction (nothing new to
    /// wait for).
    pub fn append_tokened(
        &self,
        txn: TxnId,
        writes: Vec<c5_common::RowWrite>,
    ) -> (Timestamp, SeqNo) {
        let mut inner = self.inner.lock();
        inner.next_commit_ts = inner.next_commit_ts.next();
        let commit_ts = inner.next_commit_ts;
        let entry = TxnEntry::new(txn, commit_ts, writes);
        let (records, next_seq) = explode_txn(&entry, inner.next_seq);
        inner.next_seq = next_seq;
        inner.appended_txns += 1;
        let seg = if records.is_empty() {
            None
        } else {
            inner.builder.push_txn(records)
        };
        if let Some(seg) = seg {
            // Ship while still holding the logger lock: the order of segments
            // on the wire must equal log order, and releasing the lock first
            // would let a concurrent append overtake between building a
            // segment and shipping it (the backup's per-row `prev_seq`
            // stamping silently corrupts on reordered segments). Backpressure
            // from a bounded shipper deliberately propagates to committers.
            self.shipper.ship(seg);
        }
        (commit_ts, inner.next_seq)
    }

    /// Flushes any buffered records into a final segment and ships it.
    /// Call this when the workload ends so the backup sees every write.
    pub fn flush(&self) {
        // Hold the logger lock across the ship, for the same ordering reason
        // as `append`.
        let mut inner = self.inner.lock();
        if let Some(seg) = inner.builder.flush() {
            self.shipper.ship(seg);
        }
    }

    /// Number of transactions appended so far.
    pub fn appended_txns(&self) -> u64 {
        self.inner.lock().appended_txns
    }

    /// Highest write sequence number assigned so far. Includes records still
    /// buffered in the current segment, i.e. assigned but not yet shipped.
    pub fn last_seq(&self) -> SeqNo {
        self.inner.lock().next_seq
    }

    /// Flushes the buffered tail and closes the shipping channel, signalling
    /// end-of-log to the replica.
    ///
    /// The final flush and the channel close happen under one logger lock:
    /// the flushed tail is shipped exactly once, and no concurrent `append`
    /// or `flush` can slip another segment onto the wire after it (the
    /// replica's `BoundaryLedger` hard-asserts segment contiguity, so a
    /// post-tail segment would fail loudly there). Idempotent — a second
    /// close finds an empty builder and an already-closed shipper.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        if let Some(seg) = inner.builder.flush() {
            self.shipper.ship(seg);
        }
        self.shipper.close();
    }

    /// Simulates a primary crash: closes the shipping channel *without*
    /// flushing the buffered tail. Records already assigned sequence numbers
    /// but not yet shipped are lost, exactly as an asynchronously replicated
    /// primary loses its unshipped tail on failure. The failover experiments
    /// use this to kill the primary mid-workload.
    pub fn crash(&self) {
        // Take the logger lock so no append is mid-ship while the wire
        // closes (the wire sees a clean, segment-aligned prefix).
        let _inner = self.inner.lock();
        self.shipper.close();
    }
}

/// A per-thread log, as kept by the MVTSO primary's client threads
/// (Section 7.1). Entries are appended locally with no synchronization and
/// coalesced offline.
#[derive(Debug, Default)]
pub struct ThreadLog {
    entries: Vec<TxnEntry>,
}

impl ThreadLog {
    /// Creates an empty per-thread log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a committed transaction.
    pub fn append(&mut self, entry: TxnEntry) {
        self.entries.push(entry);
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consumes the log and returns its entries.
    pub fn into_entries(self) -> Vec<TxnEntry> {
        self.entries
    }
}

/// Coalesces per-thread logs into a single, totally ordered log (sorted by
/// commit timestamp — ordering MVTSO transactions by timestamp yields a valid
/// serial schedule, Section 7.1) and packs it into segments.
pub fn coalesce(thread_logs: Vec<ThreadLog>, segment_records: usize) -> Vec<Segment> {
    let mut entries: Vec<TxnEntry> = thread_logs
        .into_iter()
        .flat_map(ThreadLog::into_entries)
        .collect();
    entries.sort_by_key(|e| e.commit_ts);
    segments_from_entries(&entries, segment_records)
}

/// Packs already-ordered transaction entries into segments.
pub fn segments_from_entries(entries: &[TxnEntry], segment_records: usize) -> Vec<Segment> {
    let mut builder = SegmentBuilder::new(segment_records);
    let mut next_seq = SeqNo::ZERO;
    let mut segments = Vec::new();
    for entry in entries {
        if entry.is_empty() {
            continue;
        }
        let (records, seq) = explode_txn(entry, next_seq);
        next_seq = seq;
        if let Some(seg) = builder.push_txn(records) {
            segments.push(seg);
        }
    }
    if let Some(seg) = builder.flush() {
        segments.push(seg);
    }
    segments
}

/// Flattens segments back into a single record stream (useful for tests and
/// for the reference replay in the consistency checker).
pub fn flatten(segments: &[Segment]) -> Vec<LogRecord> {
    segments
        .iter()
        .flat_map(|s| s.records.iter().cloned())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ship::LogShipper;
    use c5_common::{RowRef, RowWrite, Value};

    fn write(k: u64, v: u64) -> RowWrite {
        RowWrite::update(RowRef::new(0, k), Value::from_u64(v))
    }

    #[test]
    fn streaming_logger_assigns_commit_order_and_ships() {
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::new(2, shipper);

        let ts1 = logger.append(TxnId(1), vec![write(1, 1)]);
        let ts2 = logger.append(TxnId(2), vec![write(2, 2)]);
        assert!(ts2 > ts1);
        logger.close();

        let segments = receiver.drain();
        let records = flatten(&segments);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].txn, TxnId(1));
        assert_eq!(records[1].txn, TxnId(2));
        assert!(records[0].seq < records[1].seq);
        assert_eq!(logger.appended_txns(), 2);
    }

    #[test]
    fn append_tokened_returns_the_txn_boundary() {
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::new(4, shipper);
        let (ts1, tok1) = logger.append_tokened(TxnId(1), vec![write(1, 1), write(2, 1)]);
        let (ts2, tok2) = logger.append_tokened(TxnId(2), vec![write(3, 2)]);
        assert_eq!(tok1, SeqNo(2), "token is the seq of the txn's last write");
        assert_eq!(tok2, SeqNo(3));
        assert!(ts2 > ts1);
        // A write-free transaction carries the previous boundary: nothing new
        // for a session to wait on.
        let (_, tok3) = logger.append_tokened(TxnId(3), vec![]);
        assert_eq!(tok3, tok2);
        logger.close();
        drop(receiver);
    }

    #[test]
    fn streaming_logger_flush_ships_partial_segment() {
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::new(100, shipper);
        logger.append(TxnId(1), vec![write(1, 1)]);
        // Nothing shipped yet: segment target not reached.
        assert_eq!(receiver.try_len(), 0);
        logger.flush();
        assert_eq!(flatten(&receiver.drain_available()).len(), 1);
    }

    #[test]
    fn tail_shipping_is_exactly_once_across_flush_and_close() {
        // A segment target that is never reached, so every ship is a tail
        // ship: repeated flushes and closes must deliver each record exactly
        // once and never produce an empty segment on the wire.
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::new(100, shipper);
        logger.append(TxnId(1), vec![write(1, 1)]);
        logger.flush();
        logger.flush(); // nothing buffered: must ship nothing
        logger.append(TxnId(2), vec![write(2, 2)]);
        logger.close();
        logger.close(); // idempotent: no duplicate tail, no empty segment

        let segments = receiver.drain();
        assert!(
            segments.iter().all(|s| !s.is_empty()),
            "no empty segment may reach the wire"
        );
        let seqs: Vec<u64> = flatten(&segments).iter().map(|r| r.seq.as_u64()).collect();
        assert_eq!(seqs, vec![1, 2], "each record ships exactly once");
    }

    #[test]
    fn concurrent_appends_during_close_keep_the_wire_a_contiguous_prefix() {
        use std::sync::Arc;
        // Appenders race with close(); whatever reaches the wire must be a
        // gapless prefix of the assigned sequence numbers (appends that lose
        // the race are dropped whole, never reordered or duplicated).
        let (shipper, receiver) = LogShipper::unbounded();
        let logger = Arc::new(StreamingLogger::new(2, shipper));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let logger = Arc::clone(&logger);
                scope.spawn(move || {
                    for i in 0..25u64 {
                        logger.append(TxnId(1 + t * 100 + i), vec![write(t * 1000 + i, i)]);
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
            logger.close();
        });
        let seqs: Vec<u64> = flatten(&receiver.drain())
            .iter()
            .map(|r| r.seq.as_u64())
            .collect();
        let expect: Vec<u64> = (1..=seqs.len() as u64).collect();
        assert_eq!(seqs, expect, "the wire must carry a gapless log prefix");
    }

    #[test]
    fn crash_loses_the_buffered_tail() {
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::new(2, shipper);
        logger.append(TxnId(1), vec![write(1, 1), write(2, 1)]); // ships: fills a segment
        logger.append(TxnId(2), vec![write(3, 2)]); // buffered
        logger.crash();
        // Only the shipped segment survives; the buffered tail is lost even
        // though its sequence numbers were assigned.
        assert_eq!(flatten(&receiver.drain()).len(), 2);
        assert_eq!(logger.last_seq(), SeqNo(3));
        // A close after the crash must not resurrect the tail.
        logger.close();
        assert!(receiver.drain().is_empty());
    }

    #[test]
    fn resume_at_continues_seq_and_commit_order() {
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::resume_at(1, shipper, SeqNo(10));
        let ts = logger.append(TxnId(1), vec![write(5, 5)]);
        assert_eq!(ts, Timestamp(11));
        logger.close();
        let records = flatten(&receiver.drain());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].seq, SeqNo(11));
        assert_eq!(logger.last_seq(), SeqNo(11));
    }

    #[test]
    fn read_only_transactions_are_not_logged() {
        let (shipper, receiver) = LogShipper::bounded(16);
        let logger = StreamingLogger::new(1, shipper);
        logger.append(TxnId(1), vec![]);
        logger.close();
        assert!(flatten(&receiver.drain()).is_empty());
        assert_eq!(logger.appended_txns(), 1);
        assert_eq!(logger.last_seq(), SeqNo::ZERO);
    }

    #[test]
    fn coalesce_orders_by_commit_timestamp() {
        let mut t1 = ThreadLog::new();
        let mut t2 = ThreadLog::new();
        t1.append(TxnEntry::new(TxnId(1), Timestamp(30), vec![write(1, 1)]));
        t1.append(TxnEntry::new(TxnId(2), Timestamp(10), vec![write(2, 2)]));
        t2.append(TxnEntry::new(TxnId(3), Timestamp(20), vec![write(3, 3)]));

        let segments = coalesce(vec![t1, t2], 2);
        let records = flatten(&segments);
        let commit_order: Vec<u64> = records.iter().map(|r| r.commit_ts.as_u64()).collect();
        assert_eq!(commit_order, vec![10, 20, 30]);
        // Sequence numbers are contiguous from 1.
        let seqs: Vec<u64> = records.iter().map(|r| r.seq.as_u64()).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        // Every segment keeps transactions whole.
        assert!(segments.iter().all(Segment::transactions_are_whole));
    }

    #[test]
    fn segments_from_entries_skips_empty_transactions() {
        let entries = vec![
            TxnEntry::new(TxnId(1), Timestamp(1), vec![]),
            TxnEntry::new(TxnId(2), Timestamp(2), vec![write(1, 1)]),
        ];
        let segments = segments_from_entries(&entries, 8);
        assert_eq!(flatten(&segments).len(), 1);
    }
}
