//! Log records and transaction entries.

use c5_common::{RowWrite, SeqNo, Timestamp, TxnId};

/// A committed transaction as produced by a primary engine, before it is
/// broken into per-write log records.
#[derive(Debug, Clone)]
pub struct TxnEntry {
    /// The transaction's id.
    pub txn: TxnId,
    /// The primary's commit timestamp (the MVTSO timestamp, or the commit
    /// sequence number for the 2PL engine).
    pub commit_ts: Timestamp,
    /// Wall-clock commit time on the primary, in nanoseconds since the Unix
    /// epoch. Used by the replication-lag metrics ("the time between when a
    /// transaction's changes are included in the state returned by the
    /// primary and backup", Section 2.4).
    pub commit_wall_nanos: u64,
    /// The transaction's writes, at most one per row (last-writer-wins within
    /// the transaction), in operation order.
    pub writes: Vec<RowWrite>,
}

impl TxnEntry {
    /// Creates an entry, stamping the commit wall-clock time with the current
    /// system time.
    pub fn new(txn: TxnId, commit_ts: Timestamp, writes: Vec<RowWrite>) -> Self {
        Self {
            txn,
            commit_ts,
            commit_wall_nanos: now_nanos(),
            writes,
        }
    }

    /// Number of writes in the transaction.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// Whether the transaction wrote nothing (read-only transactions are not
    /// logged, but empty entries can appear in tests).
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }
}

/// Current wall-clock time in nanoseconds since the Unix epoch.
pub fn now_nanos() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// One row write as it appears in the replication log.
///
/// This is the unit the C5 scheduler sequences and the workers execute. The
/// record layout mirrors Section 7.1's description: table and row identity
/// plus a full copy of the new row version (inside [`RowWrite`]), the write's
/// timestamp, and the initially-unused `prev_timestamp`/`prev_seq` field the
/// scheduler fills in during preprocessing.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// The transaction this write belongs to.
    pub txn: TxnId,
    /// Global position of this write in the log. Strictly increasing,
    /// starting at 1. Doubles as the version timestamp the backup installs.
    pub seq: SeqNo,
    /// The primary's commit timestamp for the owning transaction.
    pub commit_ts: Timestamp,
    /// Wall-clock commit time of the owning transaction on the primary
    /// (nanoseconds since the Unix epoch).
    pub commit_wall_nanos: u64,
    /// Position of the previous write *to the same row* in the log, or
    /// [`SeqNo::ZERO`] if this is the row's first write. Unused (zero) until
    /// the C5 scheduler preprocesses the record.
    pub prev_seq: SeqNo,
    /// The write itself (row, kind, payload).
    pub write: RowWrite,
    /// Index of this write within its transaction (0-based).
    pub idx_in_txn: u32,
    /// Total number of writes in the owning transaction. Together with
    /// `idx_in_txn` this demarcates transaction boundaries in the log, which
    /// the snapshotter needs in order to align its cuts with commit
    /// boundaries (Section 4.2).
    pub txn_len: u32,
}

impl LogRecord {
    /// Whether this is the last write of its transaction.
    pub fn is_txn_last(&self) -> bool {
        self.idx_in_txn + 1 == self.txn_len
    }

    /// Whether this is the first write of its transaction.
    pub fn is_txn_first(&self) -> bool {
        self.idx_in_txn == 0
    }
}

/// Expands a transaction entry into per-write log records, assigning
/// sequence numbers starting from `next_seq`. Returns the records and the
/// next unused sequence number.
pub fn explode_txn(entry: &TxnEntry, mut next_seq: SeqNo) -> (Vec<LogRecord>, SeqNo) {
    let txn_len = entry.writes.len() as u32;
    let mut records = Vec::with_capacity(entry.writes.len());
    for (idx, write) in entry.writes.iter().enumerate() {
        next_seq = next_seq.next();
        records.push(LogRecord {
            txn: entry.txn,
            seq: next_seq,
            commit_ts: entry.commit_ts,
            commit_wall_nanos: entry.commit_wall_nanos,
            prev_seq: SeqNo::ZERO,
            write: write.clone(),
            idx_in_txn: idx as u32,
            txn_len,
        });
    }
    (records, next_seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowRef, Value};

    fn entry(txn: u64, n: usize) -> TxnEntry {
        let writes = (0..n)
            .map(|i| RowWrite::insert(RowRef::new(0, i as u64), Value::from_u64(i as u64)))
            .collect();
        TxnEntry::new(TxnId(txn), Timestamp(txn), writes)
    }

    #[test]
    fn explode_assigns_contiguous_seq_numbers() {
        let e = entry(1, 3);
        let (records, next) = explode_txn(&e, SeqNo::ZERO);
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, SeqNo(1));
        assert_eq!(records[2].seq, SeqNo(3));
        assert_eq!(next, SeqNo(3));
        assert!(records[0].is_txn_first());
        assert!(!records[0].is_txn_last());
        assert!(records[2].is_txn_last());
        assert!(records.iter().all(|r| r.prev_seq == SeqNo::ZERO));
    }

    #[test]
    fn explode_continues_from_given_seq() {
        let e1 = entry(1, 2);
        let e2 = entry(2, 2);
        let (_, next) = explode_txn(&e1, SeqNo::ZERO);
        let (records, next2) = explode_txn(&e2, next);
        assert_eq!(records[0].seq, SeqNo(3));
        assert_eq!(next2, SeqNo(4));
    }

    #[test]
    fn empty_txn_produces_no_records() {
        let e = TxnEntry::new(TxnId(9), Timestamp(9), vec![]);
        assert!(e.is_empty());
        let (records, next) = explode_txn(&e, SeqNo(10));
        assert!(records.is_empty());
        assert_eq!(next, SeqNo(10));
    }

    #[test]
    fn commit_wall_nanos_is_monotone_enough() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        assert!(a > 0);
    }
}
