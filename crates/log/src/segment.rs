//! Log segments.
//!
//! Section 7.1: "The log is divided into fixed-size segments ... Each
//! segment's header indicates the number of log records it contains. For
//! simplicity, the logger ensures transactions never span segment
//! boundaries." The `preprocessed` flag in the header is set by the C5
//! scheduler once it has filled in every record's previous-write pointer.

use c5_common::SeqNo;

use crate::record::LogRecord;

/// Metadata at the head of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Monotonically increasing segment id, starting at 0.
    pub id: u64,
    /// Number of records in the segment.
    pub record_count: usize,
    /// Set by the C5 scheduler once every record's `prev_seq` has been
    /// computed. Workers only execute preprocessed segments.
    pub preprocessed: bool,
    /// The log position this segment's stream is complete through. For a
    /// whole-log segment this is simply its last record's position; for a
    /// per-shard sub-segment produced by key-ranged routing it is the *parent*
    /// segment's last position — the shard has seen every record it owns up
    /// to there, even when none of them landed in its range. Shard progress
    /// tracking depends on this to advance through gaps.
    pub covers_through: SeqNo,
}

/// A batch of log records that never splits a transaction.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The segment header.
    pub header: SegmentHeader,
    /// The records, in log order.
    pub records: Vec<LogRecord>,
}

impl Segment {
    /// Creates a segment from records. The caller is responsible for keeping
    /// transactions whole; [`SegmentBuilder`] does this automatically.
    pub fn new(id: u64, records: Vec<LogRecord>) -> Self {
        let covers_through = records.last().map(|r| r.seq).unwrap_or(SeqNo::ZERO);
        Self {
            header: SegmentHeader {
                id,
                record_count: records.len(),
                preprocessed: false,
                covers_through,
            },
            records,
        }
    }

    /// Creates a per-shard sub-segment: `records` are the shard's slice of a
    /// parent segment whose stream is complete through `covers_through`.
    pub fn sub_segment(id: u64, records: Vec<LogRecord>, covers_through: SeqNo) -> Self {
        let mut seg = Self::new(id, records);
        seg.header.covers_through = covers_through;
        seg
    }

    /// First sequence number in the segment, if any.
    pub fn first_seq(&self) -> Option<SeqNo> {
        self.records.first().map(|r| r.seq)
    }

    /// Last sequence number in the segment, if any.
    pub fn last_seq(&self) -> Option<SeqNo> {
        self.records.last().map(|r| r.seq)
    }

    /// The log position this segment's stream is complete through (see
    /// [`SegmentHeader::covers_through`]). Never below the last record.
    pub fn covered_through(&self) -> SeqNo {
        self.last_seq()
            .unwrap_or(SeqNo::ZERO)
            .max(self.header.covers_through)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct transactions whose last write falls in this
    /// segment (i.e. transactions that commit within the segment).
    pub fn committed_txns(&self) -> usize {
        self.records.iter().filter(|r| r.is_txn_last()).count()
    }

    /// Checks the invariant that no transaction spans the segment boundary:
    /// the first record must be the first write of its transaction and the
    /// last record the last write of its transaction.
    pub fn transactions_are_whole(&self) -> bool {
        match (self.records.first(), self.records.last()) {
            (None, None) => true,
            (Some(first), Some(last)) => first.is_txn_first() && last.is_txn_last(),
            _ => unreachable!("first/last must both exist or both be absent"),
        }
    }
}

/// Packs transactions into segments of a target size without ever splitting
/// a transaction across segments.
#[derive(Debug)]
pub struct SegmentBuilder {
    target_records: usize,
    next_id: u64,
    current: Vec<LogRecord>,
}

impl SegmentBuilder {
    /// Creates a builder that closes a segment once it holds at least
    /// `target_records` records (a whole transaction is always admitted, so
    /// segments may exceed the target when a single transaction is larger
    /// than it).
    pub fn new(target_records: usize) -> Self {
        Self {
            target_records: target_records.max(1),
            next_id: 0,
            current: Vec::new(),
        }
    }

    /// Adds a whole transaction's records. Returns a completed segment if the
    /// addition filled one.
    pub fn push_txn(&mut self, records: Vec<LogRecord>) -> Option<Segment> {
        self.current.extend(records);
        if self.current.len() >= self.target_records {
            Some(self.flush_inner())
        } else {
            None
        }
    }

    /// Flushes any buffered records into a final (possibly undersized)
    /// segment. Returns `None` if nothing is buffered.
    pub fn flush(&mut self) -> Option<Segment> {
        if self.current.is_empty() {
            None
        } else {
            Some(self.flush_inner())
        }
    }

    fn flush_inner(&mut self) -> Segment {
        let records = std::mem::take(&mut self.current);
        let seg = Segment::new(self.next_id, records);
        self.next_id += 1;
        seg
    }

    /// Number of records currently buffered.
    pub fn buffered(&self) -> usize {
        self.current.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{explode_txn, TxnEntry};
    use c5_common::{RowRef, RowWrite, SeqNo, Timestamp, TxnId, Value};

    fn txn_records(txn: u64, n: usize, start: SeqNo) -> (Vec<LogRecord>, SeqNo) {
        let writes = (0..n)
            .map(|i| {
                RowWrite::insert(
                    RowRef::new(0, txn * 100 + i as u64),
                    Value::from_u64(i as u64),
                )
            })
            .collect();
        let entry = TxnEntry::new(TxnId(txn), Timestamp(txn), writes);
        explode_txn(&entry, start)
    }

    #[test]
    fn builder_packs_transactions_without_splitting() {
        let mut b = SegmentBuilder::new(4);
        let (r1, next) = txn_records(1, 3, SeqNo::ZERO);
        let (r2, next) = txn_records(2, 3, next);
        let (r3, _) = txn_records(3, 1, next);

        assert!(b.push_txn(r1).is_none());
        let seg = b.push_txn(r2).expect("second txn fills the segment");
        assert_eq!(seg.len(), 6);
        assert!(seg.transactions_are_whole());
        assert_eq!(seg.committed_txns(), 2);

        assert!(b.push_txn(r3).is_none());
        let tail = b.flush().expect("flush returns the tail");
        assert_eq!(tail.len(), 1);
        assert_eq!(tail.header.id, 1);
        assert!(b.flush().is_none());
    }

    #[test]
    fn oversized_transaction_gets_its_own_segment() {
        let mut b = SegmentBuilder::new(2);
        let (r, _) = txn_records(1, 10, SeqNo::ZERO);
        let seg = b.push_txn(r).expect("oversized txn closes immediately");
        assert_eq!(seg.len(), 10);
        assert!(seg.transactions_are_whole());
    }

    #[test]
    fn segment_seq_accessors() {
        let (r, _) = txn_records(1, 3, SeqNo::ZERO);
        let seg = Segment::new(0, r);
        assert_eq!(seg.first_seq(), Some(SeqNo(1)));
        assert_eq!(seg.last_seq(), Some(SeqNo(3)));
        assert!(!seg.is_empty());
        assert!(!seg.header.preprocessed);
    }

    #[test]
    fn empty_segment_is_whole() {
        let seg = Segment::new(0, vec![]);
        assert!(seg.transactions_are_whole());
        assert!(seg.is_empty());
        assert_eq!(seg.first_seq(), None);
        assert_eq!(seg.covered_through(), SeqNo::ZERO);
    }

    #[test]
    fn coverage_defaults_to_last_record_and_sub_segments_extend_it() {
        let (r, _) = txn_records(1, 3, SeqNo::ZERO);
        let seg = Segment::new(0, r.clone());
        assert_eq!(seg.covered_through(), SeqNo(3));

        // A shard's slice of a larger parent covers the parent's whole span.
        let sub = Segment::sub_segment(0, vec![r[0].clone()], SeqNo(3));
        assert_eq!(sub.last_seq(), Some(SeqNo(1)));
        assert_eq!(sub.covered_through(), SeqNo(3));

        // An empty slice still carries the coverage.
        let empty = Segment::sub_segment(0, vec![], SeqNo(3));
        assert!(empty.is_empty());
        assert_eq!(empty.covered_through(), SeqNo(3));
    }
}
