//! Log shipping between the primary and the backups.
//!
//! The paper assumes the log is delivered promptly (Section 2.4, Section 3.1
//! assumes instantaneous delivery); the interesting dynamics are entirely in
//! how fast a backup can *apply* it. The shipper is therefore a thin set of
//! bounded channels with an optional artificial per-segment delay used only
//! by tests that need to exercise slow-network behaviour.
//!
//! One shipper can feed **several replicas at once**
//! ([`LogShipper::fan_out`]): each replica gets its own bounded channel, so
//! every replica observes the identical segment stream but exerts
//! *independent* backpressure — a slow replica fills only its own channel
//! (eventually pacing the primary to the slowest replica, as any bounded
//! fan-out must), and per-replica lag stays individually observable. This is
//! the "one primary serving many read replicas" deployment of Section 2.1.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, SendError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::segment::Segment;

/// The shared, immutable set of per-replica senders. Behind its own `Arc` so
/// `ship` can snapshot it with a refcount bump per segment instead of
/// cloning the vector.
type FanOutSenders = Arc<Vec<Sender<Segment>>>;

/// Sending half of the replication channel (owned by the primary's logger).
///
/// Cloning a shipper clones the underlying senders; the receivers observe
/// end-of-log once every clone has been closed or dropped.
#[derive(Clone)]
pub struct LogShipper {
    txs: Arc<Mutex<Option<FanOutSenders>>>,
    delay: Option<Duration>,
}

/// Receiving half of the replication channel (owned by a backup replica).
#[derive(Clone)]
pub struct LogReceiver {
    rx: Receiver<Segment>,
}

impl LogShipper {
    fn from_senders(txs: Vec<Sender<Segment>>) -> LogShipper {
        LogShipper {
            txs: Arc::new(Mutex::new(Some(Arc::new(txs)))),
            delay: None,
        }
    }

    /// Creates a bounded shipping channel. Bounded so that a hopelessly slow
    /// replica exerts backpressure on benchmark drivers instead of buffering
    /// the whole run in memory.
    pub fn bounded(capacity: usize) -> (LogShipper, LogReceiver) {
        let (shipper, mut receivers) = Self::fan_out(1, capacity);
        (shipper, receivers.remove(0))
    }

    /// Creates an unbounded shipping channel. Used by experiments that
    /// specifically measure how far a replica falls behind (backpressure
    /// would mask the lag the experiment wants to expose).
    pub fn unbounded() -> (LogShipper, LogReceiver) {
        let (shipper, mut receivers) = Self::fan_out_unbounded(1);
        (shipper, receivers.remove(0))
    }

    /// Creates a fan-out shipper feeding `replicas` receivers, each over its
    /// own bounded channel of `capacity` segments. Every shipped segment is
    /// delivered to every receiver; a full channel blocks the shipper until
    /// that replica catches up, without affecting segments already queued to
    /// the others.
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn fan_out(replicas: usize, capacity: usize) -> (LogShipper, Vec<LogReceiver>) {
        assert!(replicas > 0, "fan-out requires at least one replica");
        let mut txs = Vec::with_capacity(replicas);
        let mut receivers = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let (tx, rx) = channel::bounded(capacity);
            txs.push(tx);
            receivers.push(LogReceiver { rx });
        }
        (Self::from_senders(txs), receivers)
    }

    /// Creates a fan-out shipper with unbounded per-replica channels (for
    /// experiments that measure how far each replica falls behind).
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    pub fn fan_out_unbounded(replicas: usize) -> (LogShipper, Vec<LogReceiver>) {
        assert!(replicas > 0, "fan-out requires at least one replica");
        let mut txs = Vec::with_capacity(replicas);
        let mut receivers = Vec::with_capacity(replicas);
        for _ in 0..replicas {
            let (tx, rx) = channel::unbounded();
            txs.push(tx);
            receivers.push(LogReceiver { rx });
        }
        (Self::from_senders(txs), receivers)
    }

    /// Number of replicas this shipper feeds (zero once closed).
    pub fn replica_count(&self) -> usize {
        self.txs.lock().as_ref().map_or(0, |txs| txs.len())
    }

    /// Adds an artificial delay before each shipped segment.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = if delay.is_zero() { None } else { Some(delay) };
        self
    }

    /// Ships a segment to every replica. Blocks while any replica's channel
    /// is full. Segments shipped after [`LogShipper::close`] or into dropped
    /// receivers are discarded (a single dropped receiver does not affect
    /// delivery to the others).
    pub fn ship(&self, segment: Segment) {
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        // Clone the senders out of the mutex so a full (blocking) channel
        // does not hold the lock and deadlock against `close()`.
        let senders = self.txs.lock().clone();
        let Some(senders) = senders else { return };
        let last = senders.len() - 1;
        for sender in &senders[..last] {
            match sender.send(segment.clone()) {
                Ok(()) => {}
                Err(SendError(_)) => {
                    // That receiver dropped; the others still get the log.
                }
            }
        }
        // The last replica takes the original — a 1→1 shipper never clones.
        let _ = senders[last].send(segment);
    }

    /// Closes this shipper handle. Once every clone sharing this handle is
    /// closed (or dropped), the receivers observe end-of-log.
    pub fn close(&self) {
        self.txs.lock().take();
    }
}

impl LogReceiver {
    /// Blocks until the next segment arrives or the log ends.
    pub fn recv(&self) -> Option<Segment> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Segment> {
        match self.rx.try_recv() {
            Ok(seg) => Some(seg),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Segment> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Number of segments currently queued.
    pub fn try_len(&self) -> usize {
        self.rx.len()
    }

    /// Drains every remaining segment, blocking until the channel closes.
    pub fn drain(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        while let Some(seg) = self.recv() {
            out.push(seg);
        }
        out
    }

    /// Drains whatever is currently available without blocking.
    pub fn drain_available(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        while let Some(seg) = self.try_recv() {
            out.push(seg);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{explode_txn, TxnEntry};
    use c5_common::{RowRef, RowWrite, SeqNo, Timestamp, TxnId, Value};

    fn segment(id: u64) -> Segment {
        let entry = TxnEntry::new(
            TxnId(id),
            Timestamp(id),
            vec![RowWrite::insert(RowRef::new(0, id), Value::from_u64(id))],
        );
        let (records, _) = explode_txn(&entry, SeqNo(id * 10));
        Segment::new(id, records)
    }

    #[test]
    fn ship_and_receive_in_order() {
        let (tx, rx) = LogShipper::bounded(8);
        tx.ship(segment(1));
        tx.ship(segment(2));
        drop(tx);
        let got = rx.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].header.id, 1);
        assert_eq!(got[1].header.id, 2);
    }

    #[test]
    fn receiver_sees_end_of_log_when_all_senders_drop() {
        let (tx, rx) = LogShipper::bounded(8);
        let tx2 = tx.clone();
        tx.ship(segment(1));
        drop(tx);
        // Another sender still exists, so the channel is not closed.
        assert!(rx.recv().is_some());
        drop(tx2);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn try_recv_does_not_block() {
        let (_tx, rx) = LogShipper::bounded(8);
        assert!(rx.try_recv().is_none());
        assert_eq!(rx.try_len(), 0);
    }

    #[test]
    fn shipping_into_dropped_receiver_does_not_panic() {
        let (tx, rx) = LogShipper::bounded(1);
        drop(rx);
        tx.ship(segment(1));
    }

    #[test]
    fn delayed_shipper_still_delivers() {
        let (tx, rx) = LogShipper::bounded(8);
        let tx = tx.with_delay(Duration::from_millis(1));
        tx.ship(segment(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().header.id,
            7
        );
    }

    #[test]
    fn fan_out_delivers_every_segment_to_every_replica() {
        let (tx, receivers) = LogShipper::fan_out(3, 8);
        assert_eq!(tx.replica_count(), 3);
        tx.ship(segment(1));
        tx.ship(segment(2));
        tx.close();
        assert_eq!(tx.replica_count(), 0);
        for rx in &receivers {
            let got = rx.drain();
            assert_eq!(got.len(), 2);
            assert_eq!(got[0].header.id, 1);
            assert_eq!(got[1].header.id, 2);
        }
    }

    #[test]
    fn fan_out_channels_backpressure_independently() {
        // Replica 0 never consumes; its channel has room for exactly the
        // shipped load, so replica 1 keeps receiving everything promptly.
        let (tx, receivers) = LogShipper::fan_out(2, 4);
        for id in 1..=4 {
            tx.ship(segment(id));
        }
        assert_eq!(receivers[0].try_len(), 4);
        let fast = receivers[1].drain_available();
        assert_eq!(fast.len(), 4);
        // The stalled replica's queue is untouched by the fast one draining.
        assert_eq!(receivers[0].try_len(), 4);
        tx.close();
        assert_eq!(receivers[0].drain().len(), 4);
    }

    #[test]
    fn fan_out_survives_one_replica_dropping() {
        let (tx, mut receivers) = LogShipper::fan_out(3, 4);
        let dead = receivers.remove(1);
        drop(dead);
        tx.ship(segment(9));
        tx.close();
        for rx in &receivers {
            assert_eq!(rx.drain().len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replica_fan_out_panics() {
        let _ = LogShipper::fan_out(0, 4);
    }
}
