//! Log shipping between the primary and the backups.
//!
//! The paper assumes the log is delivered promptly (Section 2.4, Section 3.1
//! assumes instantaneous delivery); the interesting dynamics are entirely in
//! how fast a backup can *apply* it. The shipper is therefore a thin set of
//! bounded channels with an optional artificial per-segment delay used only
//! by tests that need to exercise slow-network behaviour.
//!
//! One shipper can feed **several replicas at once**
//! ([`LogShipper::fan_out`]): each replica gets its own bounded channel, so
//! every replica observes the identical segment stream but exerts
//! *independent* backpressure — a slow replica fills only its own channel
//! (eventually pacing the primary to the slowest replica, as any bounded
//! fan-out must), and per-replica lag stays individually observable. This is
//! the "one primary serving many read replicas" deployment of Section 2.1.
//!
//! Membership is **dynamic**: the shipper keeps a subscription registry, not
//! a fixed sender vector. [`LogShipper::subscribe`] attaches a new receiver
//! mid-stream and returns, atomically with respect to concurrent ships, the
//! coverage watermark the live stream starts *after* —
//! [`Subscription::starts_after`] — so a joining replica knows exactly which
//! archived prefix to backfill: every record at or below `starts_after`
//! must come from a checkpoint or the [`LogArchive`], every record above it
//! will arrive on the returned channel, and no sequence number falls between
//! the two (the gap-closure invariant the online-join protocol in `c5-core`
//! is built on). [`LogShipper::unsubscribe`] detaches one receiver without
//! disturbing delivery to its peers, and a shipper with **zero** subscribers
//! is a valid state — segments still advance the watermark and the attached
//! archive, exactly what an empty-then-join fleet needs.
//!
//! Beyond replicating the whole log, a shipper can **shard** it
//! ([`LogShipper::shard_routed`]): a [`ShardRouter`] assigns every row a
//! shard by key range, and each shipped segment is split into one sub-segment
//! per shard ([`route_segment`]), delivered on that shard's own channel.
//! Unlike fan-out, every record travels to exactly *one* receiver; a shard
//! that owns none of a segment's rows still receives an empty sub-segment
//! carrying the coverage watermark (`covers_through`), which is what lets a
//! quiet shard's progress advance through the gap — the cross-shard cut
//! coordinator in `c5-core` depends on that.
//!
//! ## Routing buffer reuse
//!
//! Splitting runs once per segment per stream on the replication hot path,
//! so [`route_segment_with`] is written to amortize its allocations: the
//! per-record shard assignments and per-shard counts live in scratch buffers
//! inside the persistent [`TxnShardTracker`] both streaming call sites
//! already thread through every call (they grow to one segment's size once
//! and are reused forever after), and each sub-segment's record buffer is
//! allocated exactly once at its final size — a shard that owns nothing in a
//! segment allocates nothing. The invariant that makes the tracker reusable
//! across calls: `route_segment_with` must see every segment of a stream in
//! order, because the tracker also carries the open-transaction masks that
//! classify transactions straddling a segment boundary as cross-shard.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, SendError, Sender, TryRecvError};
use parking_lot::Mutex;

use c5_common::{pacing::Pacer, Error, Result, SeqNo, ShardRouter, TxnId};
use c5_obs::{Counter, Histogram, Obs, TraceEvent};

use crate::archive::LogArchive;
use crate::segment::Segment;

/// Stable identity of one subscription in a shipper's registry, handed out
/// by [`LogShipper::subscribe`] and accepted by [`LogShipper::unsubscribe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

/// One live subscription: a new member of the fan-out returned by
/// [`LogShipper::subscribe`].
pub struct Subscription {
    /// Identity to pass to [`LogShipper::unsubscribe`].
    pub id: SubscriptionId,
    /// The receiving half of the new member's channel.
    pub receiver: LogReceiver,
    /// The coverage watermark of the last segment shipped before this
    /// subscription took effect: the live stream delivers exactly the
    /// records **above** this position, so a joiner must backfill
    /// `(checkpoint cut, starts_after]` from an archive (or a checkpoint at
    /// or above it) and nothing else. Always a segment boundary, because
    /// ships advance it whole-segment-at-a-time under the same lock
    /// `subscribe` reads it under.
    pub starts_after: SeqNo,
}

/// One registered fan-out member.
#[derive(Clone)]
struct Subscriber {
    id: SubscriptionId,
    tx: Sender<Segment>,
}

/// The membership registry: the member list (copy-on-write behind an `Arc`,
/// so `ship` snapshots it with a refcount bump per segment) plus the
/// shipped-through coverage watermark that makes subscribe-vs-ship atomic.
struct Registry {
    members: Arc<Vec<Subscriber>>,
    next_id: u64,
    shipped_through: SeqNo,
}

impl Registry {
    fn new() -> Self {
        Registry {
            members: Arc::new(Vec::new()),
            next_id: 0,
            shipped_through: SeqNo::ZERO,
        }
    }
}

/// Sending half of the replication channel (owned by the primary's logger).
///
/// Cloning a shipper clones the underlying senders; the receivers observe
/// end-of-log once every clone has been closed or dropped.
#[derive(Clone)]
pub struct LogShipper {
    registry: Arc<Mutex<Option<Registry>>>,
    /// Simulated per-segment ship latency, paced by deadline arithmetic
    /// (shared across clones so concurrent shippers pace one wire).
    pace: Option<Arc<Mutex<Pacer>>>,
    /// Key-ranged routing: when set, each shipped segment is split into one
    /// sub-segment per shard instead of being replicated to every receiver.
    routing: Option<Arc<Routing>>,
    /// Retention: when set, every segment that actually goes on the wire is
    /// also recorded here (before routing, so the archive holds the whole
    /// log), enabling checkpoint truncation and cold-replica replay.
    archive: Option<Arc<LogArchive>>,
    /// Observability: when attached, every ship records one [`TraceEvent::Ship`]
    /// plus ship timing/volume metrics. Handles are resolved once here so the
    /// per-segment hot path never takes the registry lock.
    obs: Option<Arc<ShipObs>>,
}

/// Pre-resolved observability handles for the per-segment ship path.
struct ShipObs {
    obs: Arc<Obs>,
    ship_ns: Arc<Histogram>,
    segments: Arc<Counter>,
    records: Arc<Counter>,
}

/// Routing state of a sharded shipper.
struct Routing {
    router: ShardRouter,
    txns: AtomicU64,
    cross_shard_txns: AtomicU64,
    /// Shard masks of transactions whose last write has not been shipped
    /// yet, carried across segments so a transaction straddling a segment
    /// boundary is counted once, by id — not once per segment.
    tracker: Mutex<TxnShardTracker>,
}

/// Transaction counts observed by a sharded shipper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Transactions shipped.
    pub txns: u64,
    /// Transactions whose writes spanned more than one shard.
    pub cross_shard_txns: u64,
}

impl RoutingStats {
    /// Fraction of shipped transactions that crossed shards.
    pub fn cross_shard_share(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.cross_shard_txns as f64 / self.txns as f64
        }
    }
}

/// Receiving half of the replication channel (owned by a backup replica).
#[derive(Clone)]
pub struct LogReceiver {
    rx: Receiver<Segment>,
}

impl LogShipper {
    fn empty() -> LogShipper {
        LogShipper {
            registry: Arc::new(Mutex::new(Some(Registry::new()))),
            pace: None,
            routing: None,
            archive: None,
            obs: None,
        }
    }

    /// Creates a bounded shipping channel. Bounded so that a hopelessly slow
    /// replica exerts backpressure on benchmark drivers instead of buffering
    /// the whole run in memory.
    pub fn bounded(capacity: usize) -> (LogShipper, LogReceiver) {
        let (shipper, mut receivers) = Self::fan_out(1, capacity);
        (shipper, receivers.remove(0))
    }

    /// Creates an unbounded shipping channel. Used by experiments that
    /// specifically measure how far a replica falls behind (backpressure
    /// would mask the lag the experiment wants to expose).
    pub fn unbounded() -> (LogShipper, LogReceiver) {
        let (shipper, mut receivers) = Self::fan_out_unbounded(1);
        (shipper, receivers.remove(0))
    }

    /// Creates a fan-out shipper feeding `replicas` receivers, each over its
    /// own bounded channel of `capacity` segments. Every shipped segment is
    /// delivered to every receiver; a full channel blocks the shipper until
    /// that replica catches up, without affecting segments already queued to
    /// the others.
    ///
    /// A thin loop over [`LogShipper::subscribe`]; `replicas` may be zero
    /// (an empty fleet that members later join via `subscribe`).
    pub fn fan_out(replicas: usize, capacity: usize) -> (LogShipper, Vec<LogReceiver>) {
        let shipper = Self::empty();
        let receivers = (0..replicas)
            .map(|_| {
                shipper
                    .subscribe(capacity)
                    .expect("a fresh shipper accepts subscribers")
                    .receiver
            })
            .collect();
        (shipper, receivers)
    }

    /// Creates a fan-out shipper with unbounded per-replica channels (for
    /// experiments that measure how far each replica falls behind).
    /// `replicas` may be zero, as in [`LogShipper::fan_out`].
    pub fn fan_out_unbounded(replicas: usize) -> (LogShipper, Vec<LogReceiver>) {
        let shipper = Self::empty();
        let receivers = (0..replicas)
            .map(|_| {
                shipper
                    .subscribe_unbounded()
                    .expect("a fresh shipper accepts subscribers")
                    .receiver
            })
            .collect();
        (shipper, receivers)
    }

    /// Attaches a new member to the fan-out over its own bounded channel of
    /// `capacity` segments, mid-stream. Returns the new receiver together
    /// with [`Subscription::starts_after`], the coverage watermark the live
    /// stream starts above — read under the same lock `ship` advances it
    /// under, so every record at or below it is already on the archive (when
    /// one is attached) and every record above it will arrive on the channel:
    /// no sequence number falls between the backfill and the live stream.
    ///
    /// Fails with [`Error::Shutdown`] once the shipper is closed, and with
    /// [`Error::InvalidConfig`] on a sharded shipper, whose membership *is*
    /// its shard map and stays fixed at construction.
    pub fn subscribe(&self, capacity: usize) -> Result<Subscription> {
        self.subscribe_with(|| channel::bounded(capacity))
    }

    /// [`LogShipper::subscribe`] over an unbounded channel.
    pub fn subscribe_unbounded(&self) -> Result<Subscription> {
        self.subscribe_with(channel::unbounded)
    }

    fn subscribe_with(
        &self,
        make_channel: impl FnOnce() -> (Sender<Segment>, Receiver<Segment>),
    ) -> Result<Subscription> {
        if self.routing.is_some() {
            return Err(Error::InvalidConfig(
                "a sharded shipper's membership is its shard map: each channel is one \
                 shard, fixed at construction, not a replica that can join or leave"
                    .into(),
            ));
        }
        let mut guard = self.registry.lock();
        let Some(registry) = guard.as_mut() else {
            return Err(Error::Shutdown("log shipper"));
        };
        let (tx, rx) = make_channel();
        let id = SubscriptionId(registry.next_id);
        registry.next_id += 1;
        // Copy-on-write: rebuild the member vector so in-flight `ship`
        // snapshots (holding the old Arc) are undisturbed.
        let mut members: Vec<Subscriber> = registry.members.iter().cloned().collect();
        members.push(Subscriber { id, tx });
        registry.members = Arc::new(members);
        Ok(Subscription {
            id,
            receiver: LogReceiver { rx },
            starts_after: registry.shipped_through,
        })
    }

    /// Detaches one subscription. Peers are undisturbed: their channels keep
    /// delivering, and segments already queued to the detached receiver stay
    /// readable until it is dropped (its channel closes once the last
    /// in-flight `ship` snapshot holding the sender drops). Returns `false`
    /// if the id is unknown or the shipper is closed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut guard = self.registry.lock();
        let Some(registry) = guard.as_mut() else {
            return false;
        };
        if !registry.members.iter().any(|m| m.id == id) {
            return false;
        }
        registry.members = Arc::new(
            registry
                .members
                .iter()
                .filter(|m| m.id != id)
                .cloned()
                .collect(),
        );
        true
    }

    /// The coverage watermark of the last segment shipped (or recovered into
    /// the attached archive): what [`Subscription::starts_after`] would be
    /// for a subscriber attaching right now.
    pub fn shipped_through(&self) -> SeqNo {
        self.registry
            .lock()
            .as_ref()
            .map_or(SeqNo::ZERO, |r| r.shipped_through)
    }

    /// Creates a key-ranged sharded shipper: each shipped segment is split by
    /// `router` into one sub-segment per shard and delivered on that shard's
    /// own bounded channel. Every record travels to exactly one receiver; a
    /// shard owning none of a segment's rows receives an empty sub-segment
    /// whose `covers_through` still advances (quiet shards must not stall the
    /// cross-shard cut).
    pub fn shard_routed(router: ShardRouter, capacity: usize) -> (LogShipper, Vec<LogReceiver>) {
        let (mut shipper, receivers) = Self::fan_out(router.shards(), capacity);
        shipper.routing = Some(Arc::new(Routing {
            router,
            txns: AtomicU64::new(0),
            cross_shard_txns: AtomicU64::new(0),
            tracker: Mutex::new(TxnShardTracker::default()),
        }));
        (shipper, receivers)
    }

    /// Number of replicas this shipper feeds (zero once closed). For a
    /// sharded shipper this is the shard count.
    pub fn replica_count(&self) -> usize {
        self.registry.lock().as_ref().map_or(0, |r| r.members.len())
    }

    /// Adds an artificial delay before each shipped segment. The delay is
    /// paced by deadline arithmetic ([`Pacer`]): if the shipping thread
    /// oversleeps one segment, the following segments' deadlines do not move,
    /// so the simulated wire latency stays accurate under load — and a
    /// segment shipped after an idle gap still pays the full delay.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.pace = if delay.is_zero() {
            None
        } else {
            Some(Arc::new(Mutex::new(Pacer::new(delay))))
        };
        self
    }

    /// Attaches a retention archive: every segment that goes on the wire is
    /// also recorded in `archive` (whole, before any shard routing), so a
    /// checkpoint can truncate the log and a cold replica can replay its
    /// tail. Shared across clones like the wire itself.
    ///
    /// If the archive already holds a recovered prefix (a resumed shipper),
    /// the shipped-through watermark is raised to cover it, so a subscriber's
    /// `starts_after` reports the true wire position rather than this
    /// handle's lifetime position.
    pub fn with_archive(mut self, archive: Arc<LogArchive>) -> Self {
        if let Some(registry) = self.registry.lock().as_mut() {
            registry.shipped_through = registry.shipped_through.max(archive.last_seq());
        }
        self.archive = Some(archive);
        self
    }

    /// Attaches an observability sink: every shipped segment records one
    /// [`TraceEvent::Ship`] (sequence position, record count, fan-out width,
    /// wall time of the whole route/archive/send) plus a `ship_ns` histogram
    /// and `ship_segments_total` / `ship_records_total` counters. Metric
    /// handles are resolved here, once, so the per-segment path stays off the
    /// registry lock. Shared across clones like the wire itself.
    pub fn with_obs(mut self, obs: Arc<Obs>) -> Self {
        self.obs = Some(Arc::new(ShipObs {
            ship_ns: obs.metrics.histogram("ship_ns"),
            segments: obs.metrics.counter("ship_segments_total"),
            records: obs.metrics.counter("ship_records_total"),
            obs,
        }));
        self
    }

    /// Transaction counts observed so far by a sharded shipper (`None` for
    /// replicating shippers).
    pub fn routing_stats(&self) -> Option<RoutingStats> {
        self.routing.as_ref().map(|r| RoutingStats {
            txns: r.txns.load(Ordering::Relaxed),
            cross_shard_txns: r.cross_shard_txns.load(Ordering::Relaxed),
        })
    }

    /// Ships a segment: to every replica (replicating mode), or split by key
    /// range with each shard receiving exactly its own records (sharded
    /// mode). Blocks while any receiving channel is full. Segments shipped
    /// after [`LogShipper::close`] or into dropped receivers are discarded (a
    /// single dropped receiver does not affect delivery to the others).
    pub fn ship(&self, segment: Segment) {
        let Some(ship_obs) = &self.obs else {
            self.ship_inner(segment);
            return;
        };
        let segment_seq = segment.covered_through().0;
        let records = segment.len();
        let started = std::time::Instant::now();
        let subscribers = self.ship_inner(segment);
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        ship_obs.ship_ns.record(elapsed_ns);
        ship_obs.segments.inc();
        ship_obs.records.add(records as u64);
        ship_obs.obs.trace.record(TraceEvent::Ship {
            segment_seq,
            records,
            subscribers,
            elapsed_ns,
        });
    }

    /// The ship itself; returns how many receivers the segment was delivered
    /// to (0 when the shipper is closed or nobody is subscribed).
    fn ship_inner(&self, segment: Segment) -> usize {
        if let Some(pace) = &self.pace {
            // Holding the lock across the wait serializes concurrent
            // shippers, which is the point: they share one simulated wire.
            pace.lock().wait();
        }
        // One critical section covers the archive append, the watermark
        // advance, and the membership snapshot: a concurrent `subscribe`
        // therefore observes either none of this segment (it will arrive on
        // the new channel) or all of it (watermark advanced AND archived) —
        // the gap-closure invariant joiners backfill against. The sends
        // themselves happen outside the lock so a full (blocking) channel
        // cannot deadlock against `close()` or `subscribe()`.
        let members = {
            let mut guard = self.registry.lock();
            let Some(registry) = guard.as_mut() else {
                // Segments shipped into a closed shipper are discarded, and
                // deliberately not archived: a crashed primary's unshipped
                // tail is lost, so the archive holds exactly the wire.
                return 0;
            };
            if let Some(archive) = &self.archive {
                archive.append(&segment);
            }
            registry.shipped_through = registry.shipped_through.max(segment.covered_through());
            Arc::clone(&registry.members)
        };
        if let Some(routing) = &self.routing {
            let routed = route_segment_with(segment, &routing.router, &mut routing.tracker.lock());
            routing.txns.fetch_add(routed.txns, Ordering::Relaxed);
            routing
                .cross_shard_txns
                .fetch_add(routed.cross_shard_txns, Ordering::Relaxed);
            for (member, part) in members.iter().zip(routed.parts) {
                let _ = member.tx.send(part);
            }
            return members.len();
        }
        // Zero subscribers is a valid state: the segment stays on the
        // archive (and the watermark advanced) for members that join later.
        let Some(last) = members.len().checked_sub(1) else {
            return 0;
        };
        for member in &members[..last] {
            match member.tx.send(segment.clone()) {
                Ok(()) => {}
                Err(SendError(_)) => {
                    // That receiver dropped; the others still get the log.
                }
            }
        }
        // The last replica takes the original — a 1→1 shipper never clones.
        let _ = members[last].tx.send(segment);
        members.len()
    }

    /// Closes this shipper handle. Once every clone sharing this handle is
    /// closed (or dropped), the receivers observe end-of-log.
    pub fn close(&self) {
        self.registry.lock().take();
    }
}

/// The result of splitting one segment by key range: one sub-segment per
/// shard (possibly empty, always carrying the parent's coverage watermark)
/// plus the transaction counts the split observed.
#[derive(Debug)]
pub struct RoutedSegments {
    /// One sub-segment per shard, indexed by shard. Records *move* here from
    /// the parent segment; nothing is cloned.
    pub parts: Vec<Segment>,
    /// Transactions committing in the parent segment.
    pub txns: u64,
    /// Of those, transactions whose writes spanned more than one shard.
    pub cross_shard_txns: u64,
}

/// Shard membership of transactions whose last write has not been seen yet,
/// keyed by transaction id. Carrying this state across
/// [`route_segment_with`] calls makes the cross-shard count *per
/// transaction*: a transaction whose records straddle a segment boundary
/// accumulates one mask and is judged once, at its last write — instead of
/// being judged per segment, which either double-counts a transaction whose
/// every fragment spans shards or misses one that only spans shards across
/// the boundary.
#[derive(Debug, Default)]
pub struct TxnShardTracker {
    open: HashMap<TxnId, u64>,
    /// Routing scratch, reused across calls: the shard assignment of each
    /// record in the segment currently being routed. Lives here because both
    /// streaming call sites (the sharded shipper and the sharded replica's
    /// ingest) already thread one persistent tracker through every call, so
    /// the buffer grows to one segment's size once and is never reallocated
    /// again.
    shard_of: Vec<u8>,
    /// Routing scratch, reused across calls: per-shard record counts of the
    /// segment currently being routed, so each sub-segment buffer can be
    /// allocated exactly once at its final size (and empty shards allocate
    /// nothing).
    counts: Vec<u32>,
}

impl TxnShardTracker {
    /// Number of transactions whose last write has not been routed yet
    /// (diagnostic; non-zero only while a transaction straddles segments).
    pub fn open_txns(&self) -> usize {
        self.open.len()
    }
}

/// Splits a segment into per-shard sub-segments under `router`. Each record
/// moves to the shard owning its row; within a shard, records keep their log
/// order. Every part's `covers_through` is the parent's, so a shard that owns
/// nothing in this segment still learns the log has moved past it.
///
/// Convenience form of [`route_segment_with`] for producers whose segments
/// never split transactions (the [`crate::segment::SegmentBuilder`]
/// invariant); a stream that *can* split them must thread one
/// [`TxnShardTracker`] through every call to keep the cross-shard count
/// exact.
pub fn route_segment(segment: Segment, router: &ShardRouter) -> RoutedSegments {
    route_segment_with(segment, router, &mut TxnShardTracker::default())
}

/// [`route_segment`] with cross-segment transaction state: shard masks of
/// transactions still open at the segment boundary are carried in `tracker`,
/// so each transaction is counted exactly once, by id, at its last write.
pub fn route_segment_with(
    segment: Segment,
    router: &ShardRouter,
    tracker: &mut TxnShardTracker,
) -> RoutedSegments {
    let covers = segment.covered_through();
    let id = segment.header.id;
    let mut txns = 0u64;
    let mut cross_shard_txns = 0u64;
    // First pass, by reference: route every record (shards fit in a u8 —
    // `ShardRouter` caps at 64), count per shard, and settle the cross-shard
    // masks. The scratch buffers persist in the tracker, so after the first
    // segment this pass allocates nothing.
    let TxnShardTracker {
        open,
        shard_of,
        counts,
    } = tracker;
    shard_of.clear();
    shard_of.reserve(segment.records.len());
    counts.clear();
    counts.resize(router.shards(), 0);
    for record in &segment.records {
        let shard = router.route(record.write.row);
        shard_of.push(shard as u8);
        counts[shard] += 1;
        if record.is_txn_last() {
            // The complete mask: fragments from earlier segments, if any,
            // plus this final write's shard.
            let mask = open.remove(&record.txn).unwrap_or(0) | (1u64 << shard);
            txns += 1;
            if !mask.is_power_of_two() {
                cross_shard_txns += 1;
            }
        } else {
            *open.entry(record.txn).or_insert(0) |= 1u64 << shard;
        }
    }
    // Second pass, by value: move each record into its sub-segment buffer,
    // every buffer allocated exactly once at its final size. Shards owning
    // nothing in this segment allocate nothing (their sub-segment only
    // carries the coverage watermark).
    let mut parts: Vec<Vec<crate::record::LogRecord>> = counts
        .iter()
        .map(|&count| {
            if count == 0 {
                Vec::new()
            } else {
                Vec::with_capacity(count as usize)
            }
        })
        .collect();
    for (record, &shard) in segment.records.into_iter().zip(shard_of.iter()) {
        parts[shard as usize].push(record);
    }
    RoutedSegments {
        parts: parts
            .into_iter()
            .map(|records| Segment::sub_segment(id, records, covers))
            .collect(),
        txns,
        cross_shard_txns,
    }
}

impl LogReceiver {
    /// Blocks until the next segment arrives or the log ends.
    pub fn recv(&self) -> Option<Segment> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Segment> {
        match self.rx.try_recv() {
            Ok(seg) => Some(seg),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Segment> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Number of segments currently queued.
    pub fn try_len(&self) -> usize {
        self.rx.len()
    }

    /// Drains every remaining segment, blocking until the channel closes.
    pub fn drain(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        while let Some(seg) = self.recv() {
            out.push(seg);
        }
        out
    }

    /// Drains whatever is currently available without blocking.
    pub fn drain_available(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        while let Some(seg) = self.try_recv() {
            out.push(seg);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{explode_txn, TxnEntry};
    use c5_common::{RowRef, RowWrite, SeqNo, Timestamp, TxnId, Value};

    fn segment(id: u64) -> Segment {
        let entry = TxnEntry::new(
            TxnId(id),
            Timestamp(id),
            vec![RowWrite::insert(RowRef::new(0, id), Value::from_u64(id))],
        );
        let (records, _) = explode_txn(&entry, SeqNo(id * 10));
        Segment::new(id, records)
    }

    #[test]
    fn ship_and_receive_in_order() {
        let (tx, rx) = LogShipper::bounded(8);
        tx.ship(segment(1));
        tx.ship(segment(2));
        drop(tx);
        let got = rx.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].header.id, 1);
        assert_eq!(got[1].header.id, 2);
    }

    #[test]
    fn receiver_sees_end_of_log_when_all_senders_drop() {
        let (tx, rx) = LogShipper::bounded(8);
        let tx2 = tx.clone();
        tx.ship(segment(1));
        drop(tx);
        // Another sender still exists, so the channel is not closed.
        assert!(rx.recv().is_some());
        drop(tx2);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn try_recv_does_not_block() {
        let (_tx, rx) = LogShipper::bounded(8);
        assert!(rx.try_recv().is_none());
        assert_eq!(rx.try_len(), 0);
    }

    #[test]
    fn shipping_into_dropped_receiver_does_not_panic() {
        let (tx, rx) = LogShipper::bounded(1);
        drop(rx);
        tx.ship(segment(1));
    }

    #[test]
    fn delayed_shipper_still_delivers() {
        let (tx, rx) = LogShipper::bounded(8);
        let tx = tx.with_delay(Duration::from_millis(1));
        tx.ship(segment(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().header.id,
            7
        );
    }

    #[test]
    fn fan_out_delivers_every_segment_to_every_replica() {
        let (tx, receivers) = LogShipper::fan_out(3, 8);
        assert_eq!(tx.replica_count(), 3);
        tx.ship(segment(1));
        tx.ship(segment(2));
        tx.close();
        assert_eq!(tx.replica_count(), 0);
        for rx in &receivers {
            let got = rx.drain();
            assert_eq!(got.len(), 2);
            assert_eq!(got[0].header.id, 1);
            assert_eq!(got[1].header.id, 2);
        }
    }

    #[test]
    fn fan_out_channels_backpressure_independently() {
        // Replica 0 never consumes; its channel has room for exactly the
        // shipped load, so replica 1 keeps receiving everything promptly.
        let (tx, receivers) = LogShipper::fan_out(2, 4);
        for id in 1..=4 {
            tx.ship(segment(id));
        }
        assert_eq!(receivers[0].try_len(), 4);
        let fast = receivers[1].drain_available();
        assert_eq!(fast.len(), 4);
        // The stalled replica's queue is untouched by the fast one draining.
        assert_eq!(receivers[0].try_len(), 4);
        tx.close();
        assert_eq!(receivers[0].drain().len(), 4);
    }

    #[test]
    fn fan_out_survives_one_replica_dropping() {
        let (tx, mut receivers) = LogShipper::fan_out(3, 4);
        let dead = receivers.remove(1);
        drop(dead);
        tx.ship(segment(9));
        tx.close();
        for rx in &receivers {
            assert_eq!(rx.drain().len(), 1);
        }
    }

    /// A one-write segment starting exactly at `start` (archive-contiguous,
    /// unlike [`segment`] which jumps to `id * 10`).
    fn contiguous_segment(id: u64, start: SeqNo) -> (Segment, SeqNo) {
        let entry = TxnEntry::new(
            TxnId(id),
            Timestamp(id),
            vec![RowWrite::insert(RowRef::new(0, id), Value::from_u64(id))],
        );
        let (records, next) = explode_txn(&entry, start);
        (Segment::new(id, records), next)
    }

    #[test]
    fn zero_subscriber_fan_out_is_valid_and_still_archives() {
        let archive = Arc::new(crate::archive::LogArchive::new());
        let (tx, receivers) = LogShipper::fan_out(0, 4);
        assert!(receivers.is_empty());
        assert_eq!(tx.replica_count(), 0);
        let tx = tx.with_archive(Arc::clone(&archive));
        // Nobody is listening, but the segment is still "on the wire": the
        // watermark and archive advance so a later joiner can backfill it.
        let (seg1, next) = contiguous_segment(1, SeqNo::ZERO);
        tx.ship(seg1);
        assert_eq!(tx.shipped_through(), SeqNo(1));
        assert_eq!(archive.last_seq(), SeqNo(1));
        // A member joining now starts exactly above the archived prefix.
        let sub = tx.subscribe(4).unwrap();
        assert_eq!(sub.starts_after, SeqNo(1));
        let (seg2, _) = contiguous_segment(2, next);
        tx.ship(seg2);
        tx.close();
        let got = sub.receiver.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].header.id, 2);
    }

    #[test]
    fn unsubscribe_detaches_without_disturbing_peers() {
        let (tx, _) = LogShipper::fan_out(0, 8);
        let stays = tx.subscribe(8).unwrap();
        let leaves = tx.subscribe(8).unwrap();
        assert_ne!(stays.id, leaves.id);
        tx.ship(segment(1));
        assert!(tx.unsubscribe(leaves.id));
        assert!(!tx.unsubscribe(leaves.id), "already detached");
        assert_eq!(tx.replica_count(), 1);
        tx.ship(segment(2));
        tx.close();
        // The survivor saw everything; the detached member got only the
        // segment shipped while it was subscribed, then end-of-log.
        assert_eq!(stays.receiver.drain().len(), 2);
        assert_eq!(leaves.receiver.drain().len(), 1);
    }

    #[test]
    fn subscribe_after_close_is_a_typed_error() {
        let (tx, _rx) = LogShipper::bounded(4);
        tx.close();
        assert!(matches!(tx.subscribe(4), Err(Error::Shutdown(_))));
        assert!(!tx.unsubscribe(SubscriptionId(0)));
    }

    #[test]
    fn sharded_shipper_rejects_subscription() {
        let router = c5_common::ShardRouter::new(2, 8);
        let (tx, _receivers) = LogShipper::shard_routed(router, 8);
        assert!(matches!(tx.subscribe(4), Err(Error::InvalidConfig(_))));
    }

    #[test]
    fn resumed_shipper_reports_the_recovered_watermark() {
        // A shipper resuming over an archive with history must hand joiners
        // a `starts_after` covering that history, not its own lifetime.
        let archive = Arc::new(crate::archive::LogArchive::new());
        let (tx, _rx) = LogShipper::bounded(8);
        let tx = tx.with_archive(Arc::clone(&archive));
        let (seg1, _) = contiguous_segment(1, SeqNo::ZERO);
        tx.ship(seg1);
        tx.close();

        let (resumed, _rx2) = LogShipper::bounded(8);
        let resumed = resumed.with_archive(archive);
        assert_eq!(resumed.shipped_through(), SeqNo(1));
        assert_eq!(resumed.subscribe(4).unwrap().starts_after, SeqNo(1));
    }

    /// A segment of three transactions: txn A writes keys {1, 5} (cross-shard
    /// under a 2-shard router over [0, 8)), txn B writes {2} (shard 0), txn C
    /// writes {6, 7} (shard 1).
    fn multi_shard_segment() -> Segment {
        let entries = vec![
            TxnEntry::new(
                TxnId(1),
                Timestamp(1),
                vec![
                    RowWrite::insert(RowRef::new(0, 1), Value::from_u64(1)),
                    RowWrite::insert(RowRef::new(0, 5), Value::from_u64(5)),
                ],
            ),
            TxnEntry::new(
                TxnId(2),
                Timestamp(2),
                vec![RowWrite::insert(RowRef::new(0, 2), Value::from_u64(2))],
            ),
            TxnEntry::new(
                TxnId(3),
                Timestamp(3),
                vec![
                    RowWrite::insert(RowRef::new(0, 6), Value::from_u64(6)),
                    RowWrite::insert(RowRef::new(0, 7), Value::from_u64(7)),
                ],
            ),
        ];
        let mut records = Vec::new();
        let mut next = SeqNo::ZERO;
        for entry in &entries {
            let (recs, n) = explode_txn(entry, next);
            next = n;
            records.extend(recs);
        }
        Segment::new(9, records)
    }

    #[test]
    fn route_segment_moves_each_record_to_its_shard() {
        let router = c5_common::ShardRouter::new(2, 8);
        let routed = route_segment(multi_shard_segment(), &router);
        assert_eq!(routed.txns, 3);
        assert_eq!(routed.cross_shard_txns, 1);
        assert_eq!(routed.parts.len(), 2);

        let keys =
            |s: &Segment| -> Vec<u64> { s.records.iter().map(|r| r.write.row.key.0).collect() };
        assert_eq!(keys(&routed.parts[0]), vec![1, 2]);
        assert_eq!(keys(&routed.parts[1]), vec![5, 6, 7]);
        // Records keep their global order within a shard, and every part
        // covers the parent's full span.
        for part in &routed.parts {
            assert!(part.records.windows(2).all(|w| w[0].seq < w[1].seq));
            assert_eq!(part.covered_through(), SeqNo(5));
            assert_eq!(part.header.id, 9);
        }
    }

    #[test]
    fn sharded_shipper_delivers_disjoint_streams_with_coverage() {
        let router = c5_common::ShardRouter::new(2, 8);
        let (tx, receivers) = LogShipper::shard_routed(router, 8);
        tx.ship(multi_shard_segment());
        // A segment owned entirely by shard 1 still sends shard 0 coverage.
        let entry = TxnEntry::new(
            TxnId(4),
            Timestamp(4),
            vec![RowWrite::insert(RowRef::new(0, 7), Value::from_u64(8))],
        );
        let (records, _) = explode_txn(&entry, SeqNo(5));
        tx.ship(Segment::new(10, records));
        let stats = tx.routing_stats().expect("sharded shipper has stats");
        assert_eq!(stats.txns, 4);
        assert_eq!(stats.cross_shard_txns, 1);
        assert!((stats.cross_shard_share() - 0.25).abs() < 1e-9);
        tx.close();

        let shard0 = receivers[0].drain();
        let shard1 = receivers[1].drain();
        assert_eq!(shard0.len(), 2);
        assert_eq!(shard1.len(), 2);
        assert!(shard0[1].is_empty(), "shard 0 owns nothing in segment 10");
        assert_eq!(shard0[1].covered_through(), SeqNo(6));
        assert_eq!(shard1[1].len(), 1);
        // No record is delivered twice across shards.
        let total: usize = shard0.iter().chain(&shard1).map(Segment::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn replicating_shipper_reports_no_routing_stats() {
        let (tx, _rx) = LogShipper::bounded(4);
        assert!(tx.routing_stats().is_none());
    }

    /// One cross-shard transaction (keys 1 and 5 under a 2-shard router over
    /// [0, 8)) whose two records are deliberately split across two segments —
    /// the shape a segment-splitting producer would emit.
    fn straddling_txn_segments() -> (Segment, Segment) {
        let entry = TxnEntry::new(
            TxnId(1),
            Timestamp(1),
            vec![
                RowWrite::insert(RowRef::new(0, 1), Value::from_u64(1)),
                RowWrite::insert(RowRef::new(0, 5), Value::from_u64(5)),
            ],
        );
        let (mut records, _) = explode_txn(&entry, SeqNo::ZERO);
        let second = records.split_off(1);
        (Segment::new(0, records), Segment::new(1, second))
    }

    #[test]
    fn txn_straddling_segments_is_counted_once_by_id() {
        let router = c5_common::ShardRouter::new(2, 8);
        let (seg1, seg2) = straddling_txn_segments();
        let mut tracker = TxnShardTracker::default();

        let first = route_segment_with(seg1, &router, &mut tracker);
        // No last write seen yet: nothing is counted, the mask stays open.
        assert_eq!(first.txns, 0);
        assert_eq!(first.cross_shard_txns, 0);
        assert_eq!(tracker.open_txns(), 1);

        let second = route_segment_with(seg2, &router, &mut tracker);
        // The final write completes the mask {shard 0, shard 1}: exactly one
        // transaction, counted as cross-shard exactly once. Without the
        // carried mask the second segment only sees shard 1 and the
        // transaction would be misclassified as single-shard.
        assert_eq!(second.txns, 1);
        assert_eq!(second.cross_shard_txns, 1);
        assert_eq!(tracker.open_txns(), 0);
    }

    #[test]
    fn sharded_shipper_counts_straddling_txns_once() {
        let router = c5_common::ShardRouter::new(2, 8);
        let (tx, receivers) = LogShipper::shard_routed(router, 8);
        let (seg1, seg2) = straddling_txn_segments();
        tx.ship(seg1);
        tx.ship(seg2);
        let stats = tx.routing_stats().unwrap();
        assert_eq!(stats.txns, 1);
        assert_eq!(stats.cross_shard_txns, 1);
        tx.close();
        // Both records still arrive, each on its own shard (alongside the
        // empty coverage-only sub-segments of the shard that owns nothing
        // in a given parent segment).
        let total: usize = receivers
            .iter()
            .flat_map(|r| r.drain())
            .map(|s| s.len())
            .sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn attached_obs_traces_each_ship_with_fanout_width() {
        let obs = Arc::new(c5_obs::Obs::new());
        let (tx, receivers) = LogShipper::fan_out(2, 8);
        let tx = tx.with_obs(Arc::clone(&obs));
        tx.ship(segment(3));
        tx.close();
        // Shipping into a closed shipper is still traced — with zero
        // subscribers, because nothing went on the wire.
        tx.ship(segment(4));
        drop(receivers);

        let timeline = obs.trace.merged();
        let ships: Vec<_> = timeline
            .iter()
            .filter_map(|r| match r.event {
                TraceEvent::Ship {
                    records,
                    subscribers,
                    ..
                } => Some((records, subscribers)),
                _ => None,
            })
            .collect();
        assert_eq!(ships, vec![(1, 2), (1, 0)]);
        let snap = obs.metrics.snapshot();
        assert_eq!(snap.counter("ship_segments_total"), Some(2));
        assert_eq!(snap.counter("ship_records_total"), Some(2));
        assert_eq!(snap.histogram("ship_ns").map(|h| h.count()), Some(2));
    }

    #[test]
    fn attached_archive_records_exactly_the_wire() {
        let archive = Arc::new(crate::archive::LogArchive::new());
        let (tx, rx) = LogShipper::bounded(8);
        let tx = tx.with_archive(Arc::clone(&archive));
        let entry = TxnEntry::new(
            TxnId(1),
            Timestamp(1),
            vec![RowWrite::insert(RowRef::new(0, 1), Value::from_u64(1))],
        );
        let (records, next) = explode_txn(&entry, SeqNo::ZERO);
        tx.ship(Segment::new(0, records));
        tx.close();
        // A segment shipped after close never reached the wire, so the
        // archive must not retain it either.
        let entry2 = TxnEntry::new(
            TxnId(2),
            Timestamp(2),
            vec![RowWrite::insert(RowRef::new(0, 2), Value::from_u64(2))],
        );
        let (records2, _) = explode_txn(&entry2, next);
        tx.ship(Segment::new(1, records2));

        assert_eq!(rx.drain().len(), 1);
        assert_eq!(archive.retained_records(), 1);
        assert_eq!(archive.last_seq(), SeqNo(1));
    }
}
