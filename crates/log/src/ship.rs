//! Log shipping between the primary and the backup.
//!
//! The paper assumes the log is delivered promptly (Section 2.4, Section 3.1
//! assumes instantaneous delivery); the interesting dynamics are entirely in
//! how fast the backup can *apply* it. The shipper is therefore a thin
//! bounded channel with an optional artificial per-segment delay used only by
//! tests that need to exercise slow-network behaviour.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{self, Receiver, SendError, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::segment::Segment;

/// Sending half of the replication channel (owned by the primary's logger).
///
/// Cloning a shipper clones the underlying sender; the receiver observes
/// end-of-log once every clone has been closed or dropped.
#[derive(Clone)]
pub struct LogShipper {
    tx: Arc<Mutex<Option<Sender<Segment>>>>,
    delay: Option<Duration>,
}

/// Receiving half of the replication channel (owned by the backup replica).
#[derive(Clone)]
pub struct LogReceiver {
    rx: Receiver<Segment>,
}

impl LogShipper {
    fn from_sender(tx: Sender<Segment>) -> LogShipper {
        LogShipper {
            tx: Arc::new(Mutex::new(Some(tx))),
            delay: None,
        }
    }

    /// Creates a bounded shipping channel. Bounded so that a hopelessly slow
    /// replica exerts backpressure on benchmark drivers instead of buffering
    /// the whole run in memory.
    pub fn bounded(capacity: usize) -> (LogShipper, LogReceiver) {
        let (tx, rx) = channel::bounded(capacity);
        (Self::from_sender(tx), LogReceiver { rx })
    }

    /// Creates an unbounded shipping channel. Used by experiments that
    /// specifically measure how far a replica falls behind (backpressure
    /// would mask the lag the experiment wants to expose).
    pub fn unbounded() -> (LogShipper, LogReceiver) {
        let (tx, rx) = channel::unbounded();
        (Self::from_sender(tx), LogReceiver { rx })
    }

    /// Adds an artificial delay before each shipped segment.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = if delay.is_zero() { None } else { Some(delay) };
        self
    }

    /// Ships a segment. Blocks if the channel is full. Segments shipped after
    /// [`LogShipper::close`] or into a dropped receiver are discarded.
    pub fn ship(&self, segment: Segment) {
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        // Clone the sender out of the mutex so a full (blocking) channel does
        // not hold the lock and deadlock against `close()`.
        let sender = self.tx.lock().clone();
        if let Some(sender) = sender {
            match sender.send(segment) {
                Ok(()) => {}
                Err(SendError(_)) => {
                    // Receiver dropped; nothing useful to do.
                }
            }
        }
    }

    /// Closes this shipper handle. Once every clone sharing this handle is
    /// closed (or dropped), the receiver observes end-of-log.
    pub fn close(&self) {
        self.tx.lock().take();
    }
}

impl LogReceiver {
    /// Blocks until the next segment arrives or the log ends.
    pub fn recv(&self) -> Option<Segment> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Segment> {
        match self.rx.try_recv() {
            Ok(seg) => Some(seg),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Segment> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Number of segments currently queued.
    pub fn try_len(&self) -> usize {
        self.rx.len()
    }

    /// Drains every remaining segment, blocking until the channel closes.
    pub fn drain(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        while let Some(seg) = self.recv() {
            out.push(seg);
        }
        out
    }

    /// Drains whatever is currently available without blocking.
    pub fn drain_available(&self) -> Vec<Segment> {
        let mut out = Vec::new();
        while let Some(seg) = self.try_recv() {
            out.push(seg);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{explode_txn, TxnEntry};
    use c5_common::{RowRef, RowWrite, SeqNo, Timestamp, TxnId, Value};

    fn segment(id: u64) -> Segment {
        let entry = TxnEntry::new(
            TxnId(id),
            Timestamp(id),
            vec![RowWrite::insert(RowRef::new(0, id), Value::from_u64(id))],
        );
        let (records, _) = explode_txn(&entry, SeqNo(id * 10));
        Segment::new(id, records)
    }

    #[test]
    fn ship_and_receive_in_order() {
        let (tx, rx) = LogShipper::bounded(8);
        tx.ship(segment(1));
        tx.ship(segment(2));
        drop(tx);
        let got = rx.drain();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].header.id, 1);
        assert_eq!(got[1].header.id, 2);
    }

    #[test]
    fn receiver_sees_end_of_log_when_all_senders_drop() {
        let (tx, rx) = LogShipper::bounded(8);
        let tx2 = tx.clone();
        tx.ship(segment(1));
        drop(tx);
        // Another sender still exists, so the channel is not closed.
        assert!(rx.recv().is_some());
        drop(tx2);
        assert!(rx.recv().is_none());
    }

    #[test]
    fn try_recv_does_not_block() {
        let (_tx, rx) = LogShipper::bounded(8);
        assert!(rx.try_recv().is_none());
        assert_eq!(rx.try_len(), 0);
    }

    #[test]
    fn shipping_into_dropped_receiver_does_not_panic() {
        let (tx, rx) = LogShipper::bounded(1);
        drop(rx);
        tx.ship(segment(1));
    }

    #[test]
    fn delayed_shipper_still_delivers() {
        let (tx, rx) = LogShipper::bounded(8);
        let tx = tx.with_delay(Duration::from_millis(1));
        tx.ship(segment(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(1)).unwrap().header.id,
            7
        );
    }
}
