//! The on-disk segment format.
//!
//! A durable [`crate::archive::LogArchive`] persists each retained segment as
//! one file, and recovery reads them back after a crash. The format is the
//! smallest one that supports the corrupt-tail contract ("truncate at the
//! first bad frame, never panic"):
//!
//! ```text
//! +--------------------------+
//! | magic  "C5WSEG1\n"       |  8 bytes
//! | header frame             |  id, record count, preprocessed,
//! |                          |  covers_through, first/last SeqNo,
//! |                          |  commit-timestamp range
//! | record frame             |  one per LogRecord, in log order
//! | ...                      |
//! +--------------------------+
//! ```
//!
//! Every frame is length-prefixed and CRC-32-checksummed
//! ([`c5_common::frame`]). Decoding validates the magic, the header, every
//! record frame, and the header's cross-checks (count, first/last position);
//! any damage — a torn tail from `kill -9` mid-write, a flipped bit — yields
//! the longest valid prefix **trimmed back to a transaction boundary**, so
//! the recovered log never ends inside a transaction (segments keep
//! transactions whole, which makes the trim local to one segment).

use c5_common::frame::{read_frames, write_frame, PayloadReader, PayloadWriter};
use c5_common::{RowRef, RowWrite, SeqNo, Timestamp, TxnId, Value, WriteKind};

use crate::record::LogRecord;
use crate::segment::Segment;

/// Magic bytes at the head of every segment file.
pub const WAL_MAGIC: &[u8; 8] = b"C5WSEG1\n";

/// The result of decoding a segment file.
#[derive(Debug)]
pub enum DecodedWal {
    /// Every byte validated and the header's cross-checks held.
    Clean(Segment),
    /// The file was damaged (torn tail, checksum mismatch, or a header that
    /// disagrees with the records). The payload is the longest valid prefix
    /// of whole transactions — `None` when not even one transaction
    /// survived.
    Torn(Option<Segment>),
}

impl DecodedWal {
    /// The recovered segment, if any survived, plus whether it was clean.
    pub fn into_segment(self) -> (Option<Segment>, bool) {
        match self {
            DecodedWal::Clean(segment) => (Some(segment), true),
            DecodedWal::Torn(segment) => (segment, false),
        }
    }
}

fn encode_record(record: &LogRecord) -> Vec<u8> {
    let mut w = PayloadWriter::new();
    w.u64(record.txn.0)
        .u64(record.seq.as_u64())
        .u64(record.commit_ts.as_u64())
        .u64(record.commit_wall_nanos)
        .u64(record.prev_seq.as_u64())
        .u32(record.idx_in_txn)
        .u32(record.txn_len)
        .u32(record.write.row.table.as_u32())
        .u64(record.write.row.key.as_u64());
    let kind = match record.write.kind {
        WriteKind::Insert => 0u8,
        WriteKind::Update => 1,
        WriteKind::Delete => 2,
    };
    w.u8(kind);
    match &record.write.value {
        Some(value) => {
            w.u8(1).bytes(value.as_bytes());
        }
        None => {
            w.u8(0);
        }
    }
    w.finish()
}

fn decode_record(payload: &[u8]) -> Option<LogRecord> {
    let mut r = PayloadReader::new(payload);
    let txn = TxnId(r.u64()?);
    let seq = SeqNo(r.u64()?);
    let commit_ts = Timestamp(r.u64()?);
    let commit_wall_nanos = r.u64()?;
    let prev_seq = SeqNo(r.u64()?);
    let idx_in_txn = r.u32()?;
    let txn_len = r.u32()?;
    let row = RowRef::new(r.u32()?, r.u64()?);
    let kind = match r.u8()? {
        0 => WriteKind::Insert,
        1 => WriteKind::Update,
        2 => WriteKind::Delete,
        _ => return None,
    };
    let value = match r.u8()? {
        0 => None,
        1 => Some(Value::from(r.bytes()?)),
        _ => return None,
    };
    if !r.is_exhausted() {
        return None;
    }
    Some(LogRecord {
        txn,
        seq,
        commit_ts,
        commit_wall_nanos,
        prev_seq,
        write: RowWrite { row, kind, value },
        idx_in_txn,
        txn_len,
    })
}

/// Encodes one segment into its on-disk byte representation.
pub fn encode_segment(segment: &Segment) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + segment.records.len() * 96);
    out.extend_from_slice(WAL_MAGIC);

    let (ts_min, ts_max) = segment
        .records
        .iter()
        .fold((u64::MAX, 0u64), |(lo, hi), r| {
            (lo.min(r.commit_ts.as_u64()), hi.max(r.commit_ts.as_u64()))
        });
    let mut header = PayloadWriter::new();
    header
        .u64(segment.header.id)
        .u64(segment.records.len() as u64)
        .u8(segment.header.preprocessed as u8)
        .u64(segment.header.covers_through.as_u64())
        .u64(segment.first_seq().unwrap_or(SeqNo::ZERO).as_u64())
        .u64(segment.last_seq().unwrap_or(SeqNo::ZERO).as_u64())
        .u64(if segment.is_empty() { 0 } else { ts_min })
        .u64(ts_max);
    write_frame(&mut out, &header.finish());

    for record in &segment.records {
        write_frame(&mut out, &encode_record(record));
    }
    out
}

/// Drops trailing records of an incomplete transaction, so a torn prefix
/// still ends at a commit boundary.
fn trim_to_txn_boundary(records: &mut Vec<LogRecord>) {
    while let Some(last) = records.last() {
        if last.is_txn_last() {
            break;
        }
        records.pop();
    }
}

/// Decodes a segment file's bytes, truncating (never panicking) on damage.
pub fn decode_segment(bytes: &[u8]) -> DecodedWal {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return DecodedWal::Torn(None);
    }
    let scan = read_frames(&bytes[WAL_MAGIC.len()..]);
    let scan_clean = scan.is_clean();
    let mut frames = scan.frames.into_iter();
    let Some(header_payload) = frames.next() else {
        return DecodedWal::Torn(None);
    };
    let mut h = PayloadReader::new(&header_payload);
    let (Some(id), Some(count), Some(preprocessed), Some(covers_through)) =
        (h.u64(), h.u64(), h.u8(), h.u64())
    else {
        return DecodedWal::Torn(None);
    };
    let (Some(first), Some(last), Some(_ts_min), Some(_ts_max)) =
        (h.u64(), h.u64(), h.u64(), h.u64())
    else {
        return DecodedWal::Torn(None);
    };

    let mut records = Vec::new();
    let mut record_damage = false;
    for payload in frames {
        match decode_record(&payload) {
            Some(record) => records.push(record),
            None => {
                record_damage = true;
                break;
            }
        }
    }

    let clean = scan_clean
        && !record_damage
        && records.len() as u64 == count
        && records.first().map(|r| r.seq.as_u64()).unwrap_or(0) == first
        && records.last().map(|r| r.seq.as_u64()).unwrap_or(0) == last;

    if clean {
        let mut segment = Segment::sub_segment(id, records, SeqNo(covers_through));
        segment.header.preprocessed = preprocessed != 0;
        return DecodedWal::Clean(segment);
    }

    trim_to_txn_boundary(&mut records);
    if records.is_empty() {
        return DecodedWal::Torn(None);
    }
    // A torn segment's coverage claim is no longer trustworthy beyond its
    // last surviving record: Segment::new pins covers_through there.
    let mut segment = Segment::new(id, records);
    segment.header.preprocessed = preprocessed != 0;
    DecodedWal::Torn(Some(segment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logger::segments_from_entries;
    use crate::record::TxnEntry;

    fn log_segments() -> Vec<Segment> {
        let entries: Vec<TxnEntry> = (1..=4u64)
            .map(|t| {
                TxnEntry::new(
                    TxnId(t),
                    Timestamp(10 + t),
                    vec![
                        RowWrite::update(RowRef::new(0, t), Value::from_u64(t)),
                        RowWrite::delete(RowRef::new(1, t)),
                        RowWrite::insert(RowRef::new(2, t), Value::from(vec![1u8, 2, 3])),
                    ],
                )
            })
            .collect();
        segments_from_entries(&entries, 6)
    }

    #[test]
    fn segments_round_trip_exactly() {
        for segment in log_segments() {
            let bytes = encode_segment(&segment);
            let DecodedWal::Clean(decoded) = decode_segment(&bytes) else {
                panic!("round trip must be clean");
            };
            assert_eq!(decoded.header, segment.header);
            assert_eq!(decoded.len(), segment.len());
            for (a, b) in decoded.records.iter().zip(&segment.records) {
                assert_eq!(a.txn, b.txn);
                assert_eq!(a.seq, b.seq);
                assert_eq!(a.commit_ts, b.commit_ts);
                assert_eq!(a.commit_wall_nanos, b.commit_wall_nanos);
                assert_eq!(a.prev_seq, b.prev_seq);
                assert_eq!(a.write, b.write);
                assert_eq!(a.idx_in_txn, b.idx_in_txn);
                assert_eq!(a.txn_len, b.txn_len);
            }
        }
    }

    #[test]
    fn sub_segment_coverage_and_preprocessed_flag_survive() {
        let parent = &log_segments()[0];
        let mut sub = Segment::sub_segment(7, parent.records[..3].to_vec(), SeqNo(99));
        sub.header.preprocessed = true;
        let DecodedWal::Clean(decoded) = decode_segment(&encode_segment(&sub)) else {
            panic!("clean");
        };
        assert_eq!(decoded.header.covers_through, SeqNo(99));
        assert!(decoded.header.preprocessed);
    }

    #[test]
    fn torn_tail_trims_to_a_transaction_boundary() {
        let segment = &log_segments()[0]; // 2 txns x 3 writes
        let bytes = encode_segment(segment);
        // Cut the file mid-way through the last transaction's frames.
        let cut = bytes.len() - 40;
        let (recovered, clean) = decode_segment(&bytes[..cut]).into_segment();
        assert!(!clean);
        let recovered = recovered.expect("the first transaction survives");
        assert!(recovered.transactions_are_whole());
        assert_eq!(recovered.len(), 3, "trimmed back to txn 1's boundary");
        assert_eq!(recovered.covered_through(), SeqNo(3));
    }

    #[test]
    fn flipped_byte_truncates_and_never_panics() {
        let segment = &log_segments()[0];
        let clean_bytes = encode_segment(segment);
        // Flip every byte position in turn; decoding must never panic, and
        // whatever survives must be a transaction-aligned prefix.
        for i in 0..clean_bytes.len() {
            let mut bytes = clean_bytes.clone();
            bytes[i] ^= 0x40;
            let (recovered, _) = decode_segment(&bytes).into_segment();
            if let Some(seg) = recovered {
                assert!(seg.transactions_are_whole());
                assert!(seg.len() <= segment.len());
            }
        }
    }

    #[test]
    fn bad_magic_recovers_nothing() {
        let bytes = encode_segment(&log_segments()[0]);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_segment(&bad), DecodedWal::Torn(None)));
        assert!(matches!(decode_segment(&[]), DecodedWal::Torn(None)));
        assert!(matches!(
            decode_segment(&bytes[..4]),
            DecodedWal::Torn(None)
        ));
    }

    #[test]
    fn header_record_count_mismatch_is_damage() {
        let segment = &log_segments()[0];
        let mut bytes = encode_segment(segment);
        // Drop the last record's frame entirely: frames all validate but the
        // header's count no longer matches.
        let record_frames = encode_record(&segment.records[segment.len() - 1]);
        bytes.truncate(bytes.len() - record_frames.len() - 8);
        let (recovered, clean) = decode_segment(&bytes).into_segment();
        assert!(!clean);
        let seg = recovered.expect("first txn survives");
        assert!(seg.transactions_are_whole());
    }

    #[test]
    fn empty_segment_round_trips() {
        let empty = Segment::sub_segment(3, vec![], SeqNo(17));
        let DecodedWal::Clean(decoded) = decode_segment(&encode_segment(&empty)) else {
            panic!("clean");
        };
        assert!(decoded.is_empty());
        assert_eq!(decoded.header.covers_through, SeqNo(17));
        assert_eq!(decoded.header.id, 3);
    }
}
