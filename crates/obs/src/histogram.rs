//! Fixed-bucket log-linear histogram over `u64` values.
//!
//! The bucket scheme is the HDR-histogram one: values are grouped by their
//! power-of-two octave, and each octave is split into [`SUB_BUCKETS`] equal
//! sub-buckets, so the relative bucket width is at most `1/SUB_BUCKETS`
//! (12.5%) everywhere. With 64 octaves the whole `u64` range — this crate
//! records nanoseconds, so from 1 ns to ~584 years — fits in
//! [`BUCKET_COUNT`] buckets (~4 KiB of atomics per histogram), which is what
//! makes the histogram *bounded*: recording forever never allocates, unlike
//! the sampled `Mutex<Vec<f64>>` reservoirs it replaces.
//!
//! Recording is lock-free — five relaxed atomic RMWs — and safe from any
//! number of threads. `count` and `sum` are exact (each value contributes
//! one `fetch_add` to each), `min`/`max` are exact (`fetch_min`/`fetch_max`),
//! and percentiles are nearest-rank over the bucket array: the reported
//! value is the upper edge of the bucket holding the ranked sample, clamped
//! to the observed `[min, max]`, so the estimate is within one bucket
//! (≤ 12.5% relative) of a serial sort and *exact* whenever every sample in
//! the ranked bucket is the same value (e.g. single-sample histograms).
//!
//! The nearest-rank rule is the one `LagStats::from_millis` documents —
//! rank `⌈p·N⌉`, clamped to at least the first sample — so summaries built
//! from these histograms are directly comparable to the lag figures.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave. Eight sub-buckets bound the relative
/// bucket width at 12.5%.
pub const SUB_BUCKETS: usize = 8;

/// `log2(SUB_BUCKETS)` — how many value bits index the sub-bucket.
const SUB_BITS: u32 = 3;

/// One octave per `u64` bit.
const OCTAVES: usize = 64;

/// Total buckets: a dedicated zero bucket plus [`SUB_BUCKETS`] per octave.
pub const BUCKET_COUNT: usize = 1 + OCTAVES * SUB_BUCKETS;

/// Maps a value to its bucket index.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let octave = 63 - v.leading_zeros();
    let sub = if octave < SUB_BITS {
        // Octaves 0..3 are narrower than eight sub-buckets; every value gets
        // its own width-1 bucket and the tail sub-buckets stay empty.
        (v - (1u64 << octave)) as u32
    } else {
        ((v >> (octave - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as u32
    };
    1 + octave as usize * SUB_BUCKETS + sub as usize
}

/// Largest value that maps to bucket `index` (its inclusive upper edge).
fn bucket_upper(index: usize) -> u64 {
    if index == 0 {
        return 0;
    }
    let linear = index - 1;
    let octave = (linear / SUB_BUCKETS) as u32;
    let sub = (linear % SUB_BUCKETS) as u64;
    if octave < SUB_BITS {
        (1u64 << octave) + sub
    } else {
        let width = 1u64 << (octave - SUB_BITS);
        // Subtract first: the top bucket's edge is exactly `u64::MAX` and
        // adding before subtracting would overflow.
        (1u64 << octave) - 1 + (sub + 1) * width
    }
}

/// A concurrent fixed-memory histogram of `u64` observations (nanoseconds,
/// by convention throughout this workspace).
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (allocates its full bucket array once).
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free; callable from any thread.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating at
    /// `u64::MAX`, ~584 years).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out. Concurrent `record` calls may land
    /// partially (a bucket incremented but not yet the total), so a snapshot
    /// taken mid-recording is weakly consistent; a snapshot taken after
    /// recorders quiesce is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// An immutable copy of a [`Histogram`]'s state: mergeable, and the unit of
/// exposition (percentiles, Prometheus text, JSON all read from here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the identity for [`merge`](Self::merge)).
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations (exact).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (exact), or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (exact), or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (exact: `sum / count`), or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile, `p` in `[0, 1]`: the upper edge of the
    /// bucket holding the `⌈p·N⌉`-th smallest observation (rank clamped to
    /// at least 1, matching `LagStats::from_millis`), clamped to the exact
    /// observed `[min, max]`. Returns 0 for an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let rank = ((self.count as f64 * p).ceil().max(1.0) as u64).min(self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(index).clamp(self.min, self.max);
            }
        }
        // Unreachable when count equals the bucket totals; under a weakly
        // consistent mid-recording snapshot fall back to the maximum.
        self.max
    }

    /// Folds another snapshot into this one. Count, sum, min and max stay
    /// exact; bucket counts add, so merged percentiles keep the one-bucket
    /// error bound.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_agree() {
        // Every probe value must land in a bucket whose upper edge is the
        // largest value mapping back to the same bucket.
        let probes = [
            0u64,
            1,
            2,
            3,
            4,
            7,
            8,
            9,
            15,
            16,
            100,
            1_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v, "upper {upper} < value {v}");
            assert_eq!(
                bucket_index(upper),
                idx,
                "upper edge {upper} of value {v} maps to a different bucket"
            );
            if upper < u64::MAX {
                assert_ne!(
                    bucket_index(upper + 1),
                    idx,
                    "bucket of {v} leaks past its upper edge {upper}"
                );
            }
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for &v in &[8u64, 100, 5_000, 1_000_000, 123_456_789_000] {
            let upper = bucket_upper(bucket_index(v));
            // upper/v ≤ 1 + 1/8 for values at or above the first full octave.
            assert!(
                (upper as f64) <= v as f64 * (1.0 + 1.0 / SUB_BUCKETS as f64),
                "bucket of {v} too wide: upper {upper}"
            );
        }
    }

    #[test]
    fn exact_stats_and_single_value_percentiles() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 100);
        assert_eq!(s.min(), 10);
        assert_eq!(s.max(), 40);
        assert!((s.mean() - 25.0).abs() < 1e-9);

        // Small values get width-1 buckets below octave 3 and exact clamping
        // via min/max elsewhere: a single-sample histogram is exact at every
        // percentile.
        let one = Histogram::new();
        one.record(123_456);
        let s1 = one.snapshot();
        assert_eq!(s1.percentile(0.25), 123_456);
        assert_eq!(s1.percentile(0.5), 123_456);
        assert_eq!(s1.percentile(0.99), 123_456);
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_preserves_exact_aggregates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v * 100);
        }
        for v in 51..=100u64 {
            b.record(v * 100);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.sum(), (1..=100u64).map(|v| v * 100).sum::<u64>());
        assert_eq!(merged.min(), 100);
        assert_eq!(merged.max(), 10_000);

        let mut from_empty = HistogramSnapshot::empty();
        from_empty.merge(&merged);
        assert_eq!(from_empty, merged);
    }

    #[test]
    fn zero_values_have_their_own_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.min(), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert!(s.percentile(0.99) >= 1_000_000);
    }
}
