//! # c5-obs — unified observability for the C5 reproduction
//!
//! The paper's claim — backups that *always keep up* — is an observability
//! claim: replication lag, stage dwell, and takeover latency are the
//! product. This crate is the one place the rest of the workspace records
//! those signals:
//!
//! * [`MetricsRegistry`] — named counters, gauges and fixed-bucket
//!   log-scale [`Histogram`]s. Registration takes a lock once; recording is
//!   lock-free atomics on `Arc` handles; [`MetricsRegistry::snapshot`]
//!   reads everything coherently in one pass.
//! * [`TraceRecorder`] — bounded per-thread rings of typed [`TraceEvent`]s
//!   covering the pipeline stages, the log shipper, the read router, fleet
//!   lifecycle transitions, and recovery phases.
//! * [`Obs`] — the pair of them, shared as `Arc<Obs>` through
//!   `ReplicaConfig` / `ReadConfig` so every layer reaches the same sink
//!   without new plumbing; [`Obs::global`] is the default sink for code
//!   that was not handed one.
//!
//! The crate sits *below* `c5-common` (it depends only on the
//! `parking_lot` shim), which is what lets configs carry an `Arc<Obs>`.
//! Exposition to Prometheus text lives here
//! ([`MetricsSnapshot::to_prometheus`]); JSON exposition lives in
//! `c5-bench`, which owns the workspace's hand-rolled JSON.

#![warn(missing_docs)]

pub mod histogram;
pub mod registry;
pub mod trace;

use std::sync::{Arc, OnceLock};

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use trace::{now_nanos, PipelineStage, RouteOutcome, TraceEvent, TraceRecord, TraceRecorder};

/// Default per-thread trace-ring capacity for [`Obs::new`]: enough for an
/// experiment's full timeline at per-segment granularity, ~a few hundred
/// KiB per thread at worst.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// One observability sink: a metrics registry plus a trace recorder.
///
/// Shared as `Arc<Obs>`; cloning the `Arc` is the only coupling between
/// subsystems and their telemetry.
pub struct Obs {
    /// Named counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// Typed event timeline.
    pub trace: TraceRecorder,
}

impl Obs {
    /// Creates a fresh sink with the default trace capacity.
    pub fn new() -> Arc<Self> {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates a fresh sink whose per-thread trace rings hold
    /// `capacity_per_thread` records.
    pub fn with_trace_capacity(capacity_per_thread: usize) -> Arc<Self> {
        Arc::new(Self {
            metrics: MetricsRegistry::new(),
            trace: TraceRecorder::new(capacity_per_thread),
        })
    }

    /// The process-wide default sink, used by components that were not
    /// configured with their own. Created on first use, never dropped.
    pub fn global() -> &'static Arc<Obs> {
        static GLOBAL: OnceLock<Arc<Obs>> = OnceLock::new();
        GLOBAL.get_or_init(Obs::new)
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Configs derive Debug and carry an Arc<Obs>; keep their output
        // readable instead of dumping every bucket array.
        f.debug_struct("Obs").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_a_singleton() {
        let a = Arc::clone(Obs::global());
        let b = Arc::clone(Obs::global());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn fresh_sinks_are_independent() {
        let a = Obs::new();
        let b = Obs::new();
        a.metrics.counter("x").inc();
        assert_eq!(a.metrics.snapshot().counter("x"), Some(1));
        assert_eq!(b.metrics.snapshot().counter("x"), None);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(format!("{a:?}").contains("Obs"));
    }
}
