//! The named-metric registry and its coherent snapshot.
//!
//! The registry's only lock guards the name → metric map, and it is touched
//! only at registration and snapshot time. Hot paths hold `Arc` handles to
//! [`Counter`]s, [`Gauge`]s and [`Histogram`]s obtained once up front, and
//! every recording operation on a handle is lock-free.
//!
//! Metric names may embed Prometheus-style labels directly in the name —
//! `stage_dwell_ns{stage="apply"}` — which the text exposition renders
//! verbatim. [`MetricsRegistry::snapshot`] reads the entire registry in one
//! pass under the registration lock, so a snapshot is a coherent set: no
//! metric registered halfway through is half-present, and all values were
//! read within one critical section instead of one-by-one at different
//! instants.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge (queue depths, fleet sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`sub`](Self::sub)).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Registry of named metrics. Cheap to share (`Arc`), locked only for
/// registration and snapshots.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a naming bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    fn register(&self, name: &str, create: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock();
        metrics
            .entry(name.to_owned())
            .or_insert_with(create)
            .clone()
    }

    /// Reads every registered metric in one pass under the registration
    /// lock: the returned snapshot is a coherent set of values taken within
    /// a single critical section, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        let mut snapshot = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => snapshot.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snapshot.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snapshot.histograms.push((name.clone(), h.snapshot())),
            }
        }
        snapshot
    }
}

/// A coherent point-in-time copy of every metric in a registry, ready for
/// exposition. Each vector is sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram snapshots by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Splits `stage_dwell_ns{stage="apply"}` into its base name and the label
/// block (empty when there are no labels), so suffixed series keep their
/// labels: `stage_dwell_ns_count{stage="apply"}`.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(at) => (&name[..at], &name[at..]),
        None => (name, ""),
    }
}

impl MetricsSnapshot {
    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as Prometheus-style text exposition: one `TYPE`
    /// comment per base name, counters and gauges as bare samples, and each
    /// histogram as `_count`/`_sum`/`_min`/`_max` samples plus
    /// `{quantile="…"}` summary lines.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let (base, labels) = split_labels(name);
            out.push_str(&format!("# TYPE {base} counter\n{base}{labels} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let (base, labels) = split_labels(name);
            out.push_str(&format!("# TYPE {base} gauge\n{base}{labels} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let (base, labels) = split_labels(name);
            out.push_str(&format!("# TYPE {base} summary\n"));
            out.push_str(&format!("{base}_count{labels} {}\n", h.count()));
            out.push_str(&format!("{base}_sum{labels} {}\n", h.sum()));
            out.push_str(&format!("{base}_min{labels} {}\n", h.min()));
            out.push_str(&format!("{base}_max{labels} {}\n", h.max()));
            for (q, p) in [("0.5", 0.5), ("0.99", 0.99)] {
                let labels = if labels.is_empty() {
                    format!("{{quantile=\"{q}\"}}")
                } else {
                    format!("{},quantile=\"{q}\"}}", &labels[..labels.len() - 1])
                };
                out.push_str(&format!("{base}{labels} {}\n", h.percentile(p)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_snapshot_is_complete() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("records_total");
        reg.counter("records_total").add(2);
        c.inc();
        let g = reg.gauge("queue_depth");
        g.set(-3);
        let h = reg.histogram("dwell_ns");
        h.record(500);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("records_total"), Some(3));
        assert_eq!(snap.gauge("queue_depth"), Some(-3));
        assert_eq!(snap.histogram("dwell_ns").unwrap().count(), 1);
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn prometheus_rendering_carries_labels_through() {
        let reg = MetricsRegistry::new();
        reg.counter("ship_segments_total").add(7);
        reg.gauge("fleet_size").set(3);
        let h = reg.histogram("stage_dwell_ns{stage=\"apply\"}");
        h.record(1000);
        h.record(2000);

        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ship_segments_total counter"));
        assert!(text.contains("ship_segments_total 7"));
        assert!(text.contains("fleet_size 3"));
        assert!(text.contains("# TYPE stage_dwell_ns summary"));
        assert!(text.contains("stage_dwell_ns_count{stage=\"apply\"} 2"));
        assert!(text.contains("stage_dwell_ns_sum{stage=\"apply\"} 3000"));
        assert!(text.contains("stage_dwell_ns{stage=\"apply\",quantile=\"0.99\"}"));
    }

    #[test]
    fn snapshots_are_ordered_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("zebra");
        reg.counter("aardvark");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["aardvark", "zebra"]);
    }
}
