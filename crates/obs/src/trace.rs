//! Bounded structured stage tracing.
//!
//! A [`TraceRecorder`] collects typed [`TraceEvent`]s into one bounded ring
//! buffer per recording thread. Recording takes a single uncontended mutex
//! (each ring is owned by exactly one thread; the lock exists only so a
//! merge can read a ring its owner is still appending to), pushes one
//! record, and overwrites the oldest record when the ring is full — memory
//! is bounded no matter how long the run, and a `dropped` counter says how
//! much history was overwritten.
//!
//! The per-thread ring for a given recorder is found through a thread-local
//! cache keyed by the recorder's process-unique id (an address would alias
//! after drop and silently cross-wire recorders), so the steady-state cost
//! of a record is one TLS lookup, one timestamp, and one `VecDeque` push.
//!
//! [`TraceRecorder::merged`] collects every thread's ring and sorts by
//! wall-clock nanoseconds into one timeline — the `experiments obs` dump.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Wall-clock nanoseconds since the Unix epoch — the same clock the log
/// records stamp commits with, so trace timelines and lag samples align.
pub fn now_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// The four stages of the replica pipeline, in log order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStage {
    /// Segment receipt: time from enqueue into the ingest channel until the
    /// scheduler dequeues it.
    Ingest,
    /// Dependency stamping and dispatch to workers.
    Schedule,
    /// Applying one unit of work (a segment or a transaction) to the store.
    Apply,
    /// Publishing one transaction-aligned cut.
    Expose,
}

impl PipelineStage {
    /// Lower-case stage name, used as the `stage` label on metrics.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::Ingest => "ingest",
            PipelineStage::Schedule => "schedule",
            PipelineStage::Apply => "apply",
            PipelineStage::Expose => "expose",
        }
    }

    /// All four stages in pipeline order.
    pub fn all() -> [PipelineStage; 4] {
        [
            PipelineStage::Ingest,
            PipelineStage::Schedule,
            PipelineStage::Apply,
            PipelineStage::Expose,
        ]
    }
}

/// Why a routed read ended the way it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// A replica satisfied the freshness requirement (possibly after
    /// blocking).
    Served,
    /// No replica reached the required position within the deadline.
    Timeout,
}

impl RouteOutcome {
    /// Lower-case outcome name for dumps.
    pub fn name(&self) -> &'static str {
        match self {
            RouteOutcome::Served => "served",
            RouteOutcome::Timeout => "timeout",
        }
    }
}

/// One typed observation. Every instrumented subsystem has its own variant,
/// so a merged timeline can be filtered and counted by source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// One pipeline-stage completion: how long the unit of work dwelt in
    /// the stage and how deep the stage's input queue was.
    Stage {
        /// Which stage.
        stage: PipelineStage,
        /// Time the unit spent in (or waiting for) the stage, nanoseconds.
        dwell_ns: u64,
        /// Depth of the stage's input queue observed at completion.
        queue_depth: usize,
    },
    /// One `LogShipper::ship` call: route + archive + fan-out of a segment.
    Ship {
        /// First sequence number in the shipped segment.
        segment_seq: u64,
        /// Records in the segment.
        records: usize,
        /// Subscribers the segment was fanned out to.
        subscribers: usize,
        /// Wall time of the whole ship call, nanoseconds.
        elapsed_ns: u64,
    },
    /// One `ReadRouter` route decision.
    Route {
        /// Consistency class name (`strong` / `causal` / `bounded`).
        class: &'static str,
        /// Chosen replica id, if one served the read.
        replica: Option<u64>,
        /// Time spent blocked waiting for a replica to catch up.
        blocked_ns: u64,
        /// How the decision ended.
        outcome: RouteOutcome,
    },
    /// One `FleetController` replica lifecycle transition.
    Lifecycle {
        /// Replica id.
        replica: u64,
        /// State the replica left.
        from: &'static str,
        /// State the replica entered.
        to: &'static str,
    },
    /// One completed `recover_replica` phase.
    Recovery {
        /// Phase name (`load_checkpoint` / `replay_tail` / …).
        phase: &'static str,
        /// Phase wall time, nanoseconds.
        elapsed_ns: u64,
    },
    /// A generic named span, for instrumentation that fits no other variant.
    Span {
        /// Span name.
        name: &'static str,
        /// Span wall time, nanoseconds.
        elapsed_ns: u64,
    },
}

impl TraceEvent {
    /// Event-kind slug (`stage`, `ship`, `route`, `lifecycle`, `recovery`,
    /// `span`), the key timeline summaries count by.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Stage { .. } => "stage",
            TraceEvent::Ship { .. } => "ship",
            TraceEvent::Route { .. } => "route",
            TraceEvent::Lifecycle { .. } => "lifecycle",
            TraceEvent::Recovery { .. } => "recovery",
            TraceEvent::Span { .. } => "span",
        }
    }
}

/// One timestamped event on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Wall-clock nanoseconds since the Unix epoch at record time.
    pub at_nanos: u64,
    /// Name of the recording thread (`unnamed-<id>` if anonymous).
    pub thread: Arc<str>,
    /// The event.
    pub event: TraceEvent,
}

struct RingState {
    records: VecDeque<TraceRecord>,
    dropped: u64,
}

struct Ring {
    state: Mutex<RingState>,
    capacity: usize,
}

impl Ring {
    fn push(&self, record: TraceRecord) {
        let mut state = self.state.lock();
        if state.records.len() == self.capacity {
            state.records.pop_front();
            state.dropped += 1;
        }
        state.records.push_back(record);
    }
}

thread_local! {
    /// (recorder id, this thread's ring in that recorder). A small linear
    /// vector: a thread rarely records into more than a handful of
    /// recorders over its life.
    static THREAD_RINGS: RefCell<Vec<(u64, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);

/// Collects typed trace events into bounded per-thread rings.
pub struct TraceRecorder {
    id: u64,
    capacity: usize,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl TraceRecorder {
    /// Creates a recorder whose per-thread rings keep at most
    /// `capacity_per_thread` records (oldest overwritten first).
    pub fn new(capacity_per_thread: usize) -> Self {
        Self {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity: capacity_per_thread.max(1),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Records one event on the calling thread, stamped with the current
    /// wall clock.
    pub fn record(&self, event: TraceEvent) {
        let record = TraceRecord {
            at_nanos: now_nanos(),
            thread: thread_label(),
            event,
        };
        THREAD_RINGS.with(|rings| {
            let mut rings = rings.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push(record);
                return;
            }
            let ring = Arc::new(Ring {
                state: Mutex::new(RingState {
                    records: VecDeque::with_capacity(self.capacity.min(1024)),
                    dropped: 0,
                }),
                capacity: self.capacity,
            });
            ring.push(record);
            self.rings.lock().push(Arc::clone(&ring));
            rings.push((self.id, ring));
        });
    }

    /// Times `f` and records it as a [`TraceEvent::Span`].
    pub fn span<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        self.record(TraceEvent::Span {
            name,
            elapsed_ns: u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        });
        out
    }

    /// Every retained record from every thread, merged into one timeline
    /// sorted by wall-clock timestamp.
    pub fn merged(&self) -> Vec<TraceRecord> {
        let rings = self.rings.lock();
        let mut all = Vec::new();
        for ring in rings.iter() {
            all.extend(ring.state.lock().records.iter().cloned());
        }
        drop(rings);
        all.sort_by_key(|r| r.at_nanos);
        all
    }

    /// Total records overwritten across every ring (history lost to the
    /// capacity bound).
    pub fn dropped(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|ring| ring.state.lock().dropped)
            .sum()
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("id", &self.id)
            .field("capacity_per_thread", &self.capacity)
            .finish_non_exhaustive()
    }
}

fn thread_label() -> Arc<str> {
    thread_local! {
        static LABEL: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
    }
    LABEL.with(|label| {
        label
            .borrow_mut()
            .get_or_insert_with(|| {
                let current = std::thread::current();
                match current.name() {
                    Some(name) => Arc::from(name),
                    None => Arc::from(format!("unnamed-{:?}", current.id()).as_str()),
                }
            })
            .clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_merge_into_a_sorted_timeline() {
        let recorder = TraceRecorder::new(64);
        recorder.record(TraceEvent::Stage {
            stage: PipelineStage::Ingest,
            dwell_ns: 10,
            queue_depth: 2,
        });
        recorder.record(TraceEvent::Ship {
            segment_seq: 1,
            records: 8,
            subscribers: 3,
            elapsed_ns: 99,
        });
        std::thread::scope(|s| {
            s.spawn(|| {
                recorder.record(TraceEvent::Lifecycle {
                    replica: 7,
                    from: "joining",
                    to: "serving",
                });
            });
        });

        let timeline = recorder.merged();
        assert_eq!(timeline.len(), 3);
        assert!(timeline.windows(2).all(|w| w[0].at_nanos <= w[1].at_nanos));
        let kinds: Vec<&str> = timeline.iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"stage"));
        assert!(kinds.contains(&"ship"));
        assert!(kinds.contains(&"lifecycle"));
        assert_eq!(recorder.dropped(), 0);
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let recorder = TraceRecorder::new(4);
        for i in 0..10 {
            recorder.record(TraceEvent::Span {
                name: "tick",
                elapsed_ns: i,
            });
        }
        let timeline = recorder.merged();
        assert_eq!(timeline.len(), 4, "ring keeps only the newest records");
        assert_eq!(recorder.dropped(), 6);
        // The survivors are the most recent four.
        let kept: Vec<u64> = timeline
            .iter()
            .map(|r| match r.event {
                TraceEvent::Span { elapsed_ns, .. } => elapsed_ns,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn two_recorders_do_not_cross_wire() {
        let a = TraceRecorder::new(8);
        let b = TraceRecorder::new(8);
        a.record(TraceEvent::Span {
            name: "a",
            elapsed_ns: 1,
        });
        b.record(TraceEvent::Span {
            name: "b",
            elapsed_ns: 2,
        });
        assert_eq!(a.merged().len(), 1);
        assert_eq!(b.merged().len(), 1);
        assert!(matches!(
            a.merged()[0].event,
            TraceEvent::Span { name: "a", .. }
        ));
    }

    #[test]
    fn span_times_the_closure() {
        let recorder = TraceRecorder::new(8);
        let out = recorder.span("work", || 42);
        assert_eq!(out, 42);
        let timeline = recorder.merged();
        assert_eq!(timeline.len(), 1);
        assert!(matches!(
            timeline[0].event,
            TraceEvent::Span { name: "work", .. }
        ));
    }
}
