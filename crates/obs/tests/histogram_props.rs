//! Property tests for the concurrent histogram: under N recording threads,
//! the merged snapshot's count and sum are exact, min/max are exact, and
//! every percentile lands within one bucket of a serial sort's
//! nearest-rank answer.

use c5_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Nearest-rank percentile over a sorted slice — the `LagStats` rule.
fn serial_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((sorted.len() as f64 * p).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

/// The histogram's relative bucket width is 1/8, so "within one bucket"
/// means the estimate and the exact answer differ by at most two bucket
/// widths of the exact value (the ranked sample may sit anywhere inside
/// its bucket, and ties at the rank boundary may resolve to the adjacent
/// bucket). For values below the first full octave buckets are exact.
fn within_one_bucket(estimate: u64, exact: u64) -> bool {
    let tolerance = (exact / 4).max(1);
    estimate.abs_diff(exact) <= tolerance
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// N threads record disjoint slices of a random value set concurrently;
    /// the quiesced snapshot must aggregate exactly.
    #[test]
    fn concurrent_recording_is_exact(
        values in prop::collection::vec(0u64..=10_000_000_000, 1..400),
        threads in 1usize..8,
    ) {
        let hist = Histogram::new();
        let chunk = values.len().div_ceil(threads);
        std::thread::scope(|s| {
            for slice in values.chunks(chunk) {
                let hist = &hist;
                s.spawn(move || {
                    for &v in slice {
                        hist.record(v);
                    }
                });
            }
        });

        let snap = hist.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(snap.min(), sorted[0]);
        prop_assert_eq!(snap.max(), *sorted.last().unwrap());
        for p in [0.25, 0.5, 0.75, 0.99] {
            let exact = serial_percentile(&sorted, p);
            let estimate = snap.percentile(p);
            prop_assert!(
                within_one_bucket(estimate, exact),
                "p{} estimate {} too far from exact {} over {} samples",
                p, estimate, exact, sorted.len()
            );
        }
    }

    /// Recording everything into one histogram and recording shards into
    /// separate histograms then merging must agree exactly on aggregates
    /// and bucket-for-bucket on the distribution.
    #[test]
    fn merged_shards_equal_the_whole(
        values in prop::collection::vec(0u64..=1_000_000_000, 1..200),
        shards in 1usize..6,
    ) {
        let whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        let chunk = values.len().div_ceil(shards);
        let mut merged = HistogramSnapshot::empty();
        for slice in values.chunks(chunk) {
            let part = Histogram::new();
            for &v in slice {
                part.record(v);
            }
            merged.merge(&part.snapshot());
        }

        prop_assert_eq!(whole.snapshot(), merged);
    }
}
