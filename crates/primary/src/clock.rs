//! Loosely synchronized per-thread clocks, as used by Cicada.
//!
//! Section 7.1: "Each client thread maintains a local clock. The local clocks
//! are loosely synchronized and individually return increasing values. A
//! client uses its clock to assign a unique timestamp to each transaction."
//!
//! [`ClockSet`] reproduces that: each thread owns a coarse counter; a new
//! timestamp is one greater than the maximum of the thread's own counter and
//! the globally observed maximum (the loose synchronization), and the thread
//! index is packed into the low bits so that timestamps are globally unique
//! without any cross-thread coordination on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

use c5_common::Timestamp;

/// Number of low bits reserved for the thread index.
const THREAD_BITS: u32 = 8;
/// Maximum number of threads a `ClockSet` supports.
pub const MAX_CLOCK_THREADS: usize = 1 << THREAD_BITS;

/// A set of per-thread clocks.
#[derive(Debug)]
pub struct ClockSet {
    locals: Vec<AtomicU64>,
    global_max: AtomicU64,
}

impl ClockSet {
    /// Creates clocks for `threads` threads.
    ///
    /// # Panics
    /// Panics if `threads` is zero or exceeds [`MAX_CLOCK_THREADS`].
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "ClockSet requires at least one thread");
        assert!(
            threads <= MAX_CLOCK_THREADS,
            "ClockSet supports at most {MAX_CLOCK_THREADS} threads"
        );
        Self {
            locals: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            global_max: AtomicU64::new(0),
        }
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.locals.len()
    }

    /// Returns a fresh, globally unique timestamp for `thread`.
    pub fn next_timestamp(&self, thread: usize) -> Timestamp {
        let local = &self.locals[thread];
        let observed = self.global_max.load(Ordering::Relaxed);
        let mine = local.load(Ordering::Relaxed);
        let coarse = mine.max(observed) + 1;
        local.store(coarse, Ordering::Relaxed);
        // Loose synchronization: occasionally publish our progress. Doing it
        // every time keeps the clocks tightly bunched, which reduces
        // avoidable MVTSO aborts without affecting uniqueness.
        self.global_max.fetch_max(coarse, Ordering::Relaxed);
        Timestamp((coarse << THREAD_BITS) | thread as u64)
    }

    /// Fast-forwards the global clock after observing an external timestamp
    /// (e.g. a conflicting transaction's commit timestamp).
    pub fn observe(&self, ts: Timestamp) {
        let coarse = ts.as_u64() >> THREAD_BITS;
        self.global_max.fetch_max(coarse, Ordering::Relaxed);
    }

    /// Fast-forwards the global clock past a raw *coarse* value — used when
    /// an engine resumes over a promoted backup store, whose version
    /// timestamps are log positions rather than packed clock values: after
    /// `fast_forward(cut)`, every timestamp any thread issues exceeds `cut`
    /// even before the thread-index packing.
    pub fn fast_forward(&self, coarse: u64) {
        self.global_max.fetch_max(coarse, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;

    #[test]
    fn per_thread_timestamps_strictly_increase() {
        let clocks = ClockSet::new(2);
        let a = clocks.next_timestamp(0);
        let b = clocks.next_timestamp(0);
        let c = clocks.next_timestamp(0);
        assert!(a < b && b < c);
    }

    #[test]
    fn timestamps_are_globally_unique_across_threads() {
        let clocks = Arc::new(ClockSet::new(4));
        let mut handles = Vec::new();
        for t in 0..4 {
            let clocks = Arc::clone(&clocks);
            handles.push(std::thread::spawn(move || {
                (0..1000)
                    .map(|_| clocks.next_timestamp(t))
                    .collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for ts in h.join().unwrap() {
                assert!(all.insert(ts), "duplicate timestamp {ts}");
            }
        }
        assert_eq!(all.len(), 4000);
    }

    #[test]
    fn observe_fast_forwards_other_threads() {
        let clocks = ClockSet::new(2);
        let big = Timestamp(1_000_000 << 8);
        clocks.observe(big);
        let next = clocks.next_timestamp(1);
        assert!(next > big);
    }

    #[test]
    fn loose_synchronization_keeps_threads_close() {
        let clocks = ClockSet::new(2);
        for _ in 0..100 {
            clocks.next_timestamp(0);
        }
        // Thread 1 has issued nothing, but its next timestamp is pulled up by
        // the global max rather than starting from 1.
        let t1 = clocks.next_timestamp(1);
        assert!(t1.as_u64() >> 8 >= 100);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ClockSet::new(0);
    }
}
