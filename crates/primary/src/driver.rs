//! Closed-loop workload drivers.
//!
//! The paper's experiments generate load "with a fixed number of closed-loop
//! clients" (Section 6): each client repeatedly draws the next transaction
//! from the workload mix, submits it, waits for the result, and immediately
//! submits the next one. [`ClosedLoopDriver`] reproduces that for both
//! primary engines; every client owns a seeded RNG so runs are reproducible.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::mvtso::MvtsoEngine;
use crate::stats::PrimaryRunStats;
use crate::tpl::TplEngine;
use crate::txn::StoredProcedure;

/// Produces the next transaction for a client. Implemented by every workload
/// in `c5-workloads`.
pub trait TxnFactory: Send + Sync {
    /// Returns the stored procedure the given client should run next.
    fn next_txn(&self, client: usize, rng: &mut StdRng) -> Box<dyn StoredProcedure>;

    /// A short label for reports.
    fn label(&self) -> &'static str {
        "workload"
    }
}

/// How long a driver run lasts.
#[derive(Debug, Clone, Copy)]
pub enum RunLength {
    /// Run for a wall-clock duration.
    Timed(Duration),
    /// Run until each client has submitted this many transactions.
    PerClientCount(u64),
}

/// Closed-loop driver for the primary engines.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClosedLoopDriver {
    /// Base RNG seed; client `i` uses `seed + i`.
    pub seed: u64,
}

impl ClosedLoopDriver {
    /// Creates a driver with a fixed base seed.
    pub fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    /// Drives the 2PL engine with `clients` closed-loop clients.
    pub fn run_tpl(
        &self,
        engine: &Arc<TplEngine>,
        factory: &Arc<dyn TxnFactory>,
        clients: usize,
        length: RunLength,
    ) -> PrimaryRunStats {
        let committed_before = engine.committed();
        let aborted_before = engine.aborted();
        let (wall, failed) = self.run_clients(factory, clients, length, |client, proc| {
            let _ = client;
            engine.execute(proc.as_ref()).is_err()
        });
        PrimaryRunStats {
            committed: engine.committed() - committed_before,
            aborted: engine.aborted() - aborted_before,
            failed,
            wall,
        }
    }

    /// Drives the MVTSO engine with `threads` client threads (client `i` is
    /// bound to engine thread `i`, matching Cicada's thread-per-client model).
    pub fn run_mvtso(
        &self,
        engine: &Arc<MvtsoEngine>,
        factory: &Arc<dyn TxnFactory>,
        threads: usize,
        length: RunLength,
    ) -> PrimaryRunStats {
        assert!(
            threads <= engine.config().threads,
            "driver threads must not exceed engine threads"
        );
        let committed_before = engine.committed();
        let aborted_before = engine.aborted();
        let (wall, failed) = self.run_clients(factory, threads, length, |client, proc| {
            engine.execute_on(client, proc.as_ref()).is_err()
        });
        PrimaryRunStats {
            committed: engine.committed() - committed_before,
            aborted: engine.aborted() - aborted_before,
            failed,
            wall,
        }
    }

    /// Runs `clients` closed-loop clients, calling `submit` for every
    /// generated transaction. `submit` returns whether the transaction
    /// ultimately failed. Returns the wall time and the failure count.
    fn run_clients<F>(
        &self,
        factory: &Arc<dyn TxnFactory>,
        clients: usize,
        length: RunLength,
        submit: F,
    ) -> (Duration, u64)
    where
        F: Fn(usize, Box<dyn StoredProcedure>) -> bool + Sync,
    {
        assert!(clients > 0, "at least one client is required");
        let start = Instant::now();
        let failed = AtomicU64::new(0);
        let submit = &submit;
        let failed_ref = &failed;
        let seed = self.seed;

        std::thread::scope(|scope| {
            for client in 0..clients {
                let factory = Arc::clone(factory);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(client as u64));
                    let mut submitted = 0u64;
                    loop {
                        match length {
                            RunLength::Timed(d) => {
                                if start.elapsed() >= d {
                                    break;
                                }
                            }
                            RunLength::PerClientCount(n) => {
                                if submitted >= n {
                                    break;
                                }
                            }
                        }
                        let proc = factory.next_txn(client, &mut rng);
                        if submit(client, proc) {
                            failed_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        submitted += 1;
                    }
                });
            }
        });
        (start.elapsed(), failed.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::TxnCtx;
    use c5_common::{PrimaryConfig, Result, RowRef, Value};
    use c5_log::{LogShipper, StreamingLogger};
    use c5_storage::MvStore;
    use std::sync::atomic::AtomicU64 as StdAtomicU64;

    /// A workload whose transactions insert unique rows.
    struct UniqueInserts {
        next: StdAtomicU64,
    }

    impl TxnFactory for UniqueInserts {
        fn next_txn(&self, _client: usize, _rng: &mut StdRng) -> Box<dyn StoredProcedure> {
            let key = self.next.fetch_add(1, Ordering::Relaxed);
            Box::new(move |ctx: &mut dyn TxnCtx| -> Result<()> {
                ctx.insert(RowRef::new(0, key), Value::from_u64(key))
            })
        }
        fn label(&self) -> &'static str {
            "unique-inserts"
        }
    }

    fn tpl_engine(threads: usize) -> Arc<TplEngine> {
        let (shipper, _receiver) = LogShipper::unbounded();
        let logger = StreamingLogger::new(64, shipper);
        Arc::new(TplEngine::new(
            Arc::new(MvStore::default()),
            PrimaryConfig::default().with_threads(threads),
            logger,
        ))
    }

    #[test]
    fn per_client_count_run_commits_exactly_that_many() {
        let engine = tpl_engine(2);
        let factory: Arc<dyn TxnFactory> = Arc::new(UniqueInserts {
            next: StdAtomicU64::new(0),
        });
        let stats = ClosedLoopDriver::with_seed(7).run_tpl(
            &engine,
            &factory,
            2,
            RunLength::PerClientCount(50),
        );
        assert_eq!(stats.committed, 100);
        assert_eq!(stats.failed, 0);
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn timed_run_finishes_near_the_deadline() {
        let engine = tpl_engine(2);
        let factory: Arc<dyn TxnFactory> = Arc::new(UniqueInserts {
            next: StdAtomicU64::new(1_000_000),
        });
        let stats = ClosedLoopDriver::with_seed(7).run_tpl(
            &engine,
            &factory,
            2,
            RunLength::Timed(Duration::from_millis(50)),
        );
        assert!(stats.committed > 0);
        assert!(stats.wall >= Duration::from_millis(50));
        assert!(stats.wall < Duration::from_secs(5));
    }

    #[test]
    fn mvtso_driver_binds_clients_to_threads() {
        let store = Arc::new(MvStore::default());
        let engine = Arc::new(MvtsoEngine::new(
            store,
            PrimaryConfig::default().with_threads(2),
        ));
        let factory: Arc<dyn TxnFactory> = Arc::new(UniqueInserts {
            next: StdAtomicU64::new(0),
        });
        let stats = ClosedLoopDriver::with_seed(1).run_mvtso(
            &engine,
            &factory,
            2,
            RunLength::PerClientCount(25),
        );
        assert_eq!(stats.committed, 50);
        assert_eq!(stats.failed, 0);
        assert_eq!(factory.label(), "unique-inserts");
    }
}
