//! Primary-database engines.
//!
//! The paper evaluates C5 against two very different primaries:
//!
//! * **MyRocks** (Sections 5–6): a disk-based MySQL fork whose concurrency
//!   control is two-phase locking. Its essential property for the paper is
//!   that non-conflicting row writes of concurrent transactions execute in
//!   parallel while conflicting writes serialize on row locks, and that the
//!   replication log reflects the commit order. [`tpl::TplEngine`] reproduces
//!   exactly that over the shared [`c5_storage::MvStore`], streaming its log
//!   live through [`c5_log::StreamingLogger`].
//! * **Cicada** (Section 7): an in-memory multi-version database using a
//!   variant of multi-version timestamp ordering with loosely synchronized
//!   per-thread clocks. [`mvtso::MvtsoEngine`] reproduces the protocol: reads
//!   record read timestamps, writes are buffered and validated at commit, and
//!   committed transactions append to per-thread logs that are coalesced into
//!   a totally ordered log afterwards — matching the paper's prototype logger.
//!
//! Both engines execute [`txn::StoredProcedure`]s through the [`txn::TxnCtx`]
//! interface (the paper's workloads all use stored procedures so that parsing
//! and planning never bottleneck the primary), honour the
//! [`c5_common::OpCost`] model, and are driven by the closed-loop clients in
//! [`driver`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod driver;
pub mod lock;
pub mod mvtso;
pub mod stats;
pub mod tpl;
pub mod txn;

pub use driver::{ClosedLoopDriver, RunLength, TxnFactory};
pub use lock::{LockManager, LockMode};
pub use mvtso::MvtsoEngine;
pub use stats::PrimaryRunStats;
pub use tpl::TplEngine;
pub use txn::{StoredProcedure, TxnCtx};
