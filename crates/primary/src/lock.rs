//! A row-granularity lock manager with FIFO grant order.
//!
//! The paper's formal model (Section 3.1) assumes a two-phase-locking primary
//! in which conflicting operations are granted the lock in the order
//! requested. This lock manager provides exactly that: per-row shared and
//! exclusive locks, a FIFO waiter queue per row, lock upgrades, and a wait
//! timeout that resolves the (rare, workload-dependent) deadlocks the way
//! production MySQL does — by aborting the waiter so the client retries.

use std::collections::hash_map::RandomState;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::BuildHasher;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use c5_common::{Error, Result, RowRef, TxnId};

/// Lock mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock; incompatible with everything.
    Exclusive,
}

#[derive(Debug, Default)]
struct LockEntry {
    shared: HashSet<TxnId>,
    exclusive: Option<TxnId>,
    waiters: VecDeque<(TxnId, LockMode)>,
}

impl LockEntry {
    fn is_free(&self) -> bool {
        self.shared.is_empty() && self.exclusive.is_none() && self.waiters.is_empty()
    }

    /// Whether `txn` may be granted `mode` right now, ignoring the waiter
    /// queue (the caller enforces FIFO separately).
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => match self.exclusive {
                Some(holder) => holder == txn,
                None => true,
            },
            LockMode::Exclusive => {
                let exclusive_ok = match self.exclusive {
                    Some(holder) => holder == txn,
                    None => true,
                };
                let shared_ok = self.shared.is_empty()
                    || (self.shared.len() == 1 && self.shared.contains(&txn));
                exclusive_ok && shared_ok
            }
        }
    }

    fn grant(&mut self, txn: TxnId, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                self.shared.insert(txn);
            }
            LockMode::Exclusive => {
                // Upgrades drop the shared entry; the exclusive lock subsumes it.
                self.shared.remove(&txn);
                self.exclusive = Some(txn);
            }
        }
    }

    fn position_in_queue(&self, txn: TxnId, mode: LockMode) -> Option<usize> {
        self.waiters
            .iter()
            .position(|&(t, m)| t == txn && m == mode)
    }
}

struct Shard {
    entries: Mutex<HashMap<RowRef, LockEntry>>,
    cv: Condvar,
}

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    hasher: RandomState,
    wait_timeout: Duration,
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("shards", &self.shards.len())
            .field("wait_timeout", &self.wait_timeout)
            .finish()
    }
}

impl Default for LockManager {
    fn default() -> Self {
        Self::new(128, Duration::from_millis(100))
    }
}

impl LockManager {
    /// Creates a lock manager with the given number of shards and lock-wait
    /// timeout. A waiter that cannot be granted within the timeout is aborted
    /// with a deadlock error so the engine retries the transaction.
    pub fn new(shards: usize, wait_timeout: Duration) -> Self {
        assert!(shards > 0, "LockManager requires at least one shard");
        Self {
            shards: (0..shards)
                .map(|_| Shard {
                    entries: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            hasher: RandomState::new(),
            wait_timeout,
        }
    }

    fn shard_for(&self, row: RowRef) -> &Shard {
        let idx = (self.hasher.hash_one(row) as usize) % self.shards.len();
        &self.shards[idx]
    }

    /// Acquires `mode` on `row` for `txn`, blocking in FIFO order behind
    /// incompatible holders/waiters. Re-entrant acquisitions (same or weaker
    /// mode) return immediately.
    pub fn acquire(&self, txn: TxnId, row: RowRef, mode: LockMode) -> Result<()> {
        let shard = self.shard_for(row);
        let mut entries = shard.entries.lock();

        // Fast path: already hold a sufficient lock.
        {
            let entry = entries.entry(row).or_default();
            if Self::already_holds(entry, txn, mode) {
                return Ok(());
            }
            // Grant immediately when compatible and nobody is queued ahead.
            if entry.waiters.is_empty() && entry.compatible(txn, mode) {
                entry.grant(txn, mode);
                return Ok(());
            }
            entry.waiters.push_back((txn, mode));
        }

        // Slow path: wait until we are at the head of the queue and the lock
        // is compatible, or until the timeout fires.
        loop {
            {
                let entry = entries.get_mut(&row).expect("entry exists while queued");
                let at_head = entry.waiters.front().map(|&(t, m)| (t, m)) == Some((txn, mode));
                if at_head && entry.compatible(txn, mode) {
                    entry.waiters.pop_front();
                    entry.grant(txn, mode);
                    // Wake the next waiter(s); a newly granted shared lock may
                    // allow further shared waiters to proceed.
                    shard.cv.notify_all();
                    return Ok(());
                }
            }
            let timed_out = shard
                .cv
                .wait_for(&mut entries, self.wait_timeout)
                .timed_out();
            if timed_out {
                let entry = entries.get_mut(&row).expect("entry exists while queued");
                // Re-check once more after the timeout: we may have become
                // grantable between the deadline and reacquiring the mutex.
                let at_head = entry.waiters.front().map(|&(t, m)| (t, m)) == Some((txn, mode));
                if at_head && entry.compatible(txn, mode) {
                    entry.waiters.pop_front();
                    entry.grant(txn, mode);
                    shard.cv.notify_all();
                    return Ok(());
                }
                if let Some(pos) = entry.position_in_queue(txn, mode) {
                    entry.waiters.remove(pos);
                }
                if entry.is_free() {
                    entries.remove(&row);
                }
                shard.cv.notify_all();
                return Err(Error::TxnAborted {
                    txn,
                    reason: c5_common::error::AbortReason::Deadlock,
                });
            }
        }
    }

    fn already_holds(entry: &LockEntry, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => entry.shared.contains(&txn) || entry.exclusive == Some(txn),
            LockMode::Exclusive => entry.exclusive == Some(txn),
        }
    }

    /// Releases whatever lock `txn` holds on `row` (no-op if none).
    pub fn release(&self, txn: TxnId, row: RowRef) {
        let shard = self.shard_for(row);
        let mut entries = shard.entries.lock();
        if let Some(entry) = entries.get_mut(&row) {
            entry.shared.remove(&txn);
            if entry.exclusive == Some(txn) {
                entry.exclusive = None;
            }
            if entry.is_free() {
                entries.remove(&row);
            }
        }
        shard.cv.notify_all();
    }

    /// Releases a batch of rows for `txn`.
    pub fn release_all<'a>(&self, txn: TxnId, rows: impl IntoIterator<Item = &'a RowRef>) {
        for row in rows {
            self.release(txn, *row);
        }
    }

    /// Number of rows that currently have lock state (held or queued). Used
    /// by tests to check that locks are not leaked.
    pub fn active_rows(&self) -> usize {
        self.shards.iter().map(|s| s.entries.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), row(1), LockMode::Shared).unwrap();
        lm.release(TxnId(1), row(1));
        lm.release(TxnId(2), row(1));
        assert_eq!(lm.active_rows(), 0);
    }

    #[test]
    fn exclusive_lock_blocks_until_released() {
        let lm = Arc::new(LockManager::new(8, Duration::from_secs(2)));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();

        let acquired = Arc::new(AtomicUsize::new(0));
        let lm2 = Arc::clone(&lm);
        let acquired2 = Arc::clone(&acquired);
        let handle = std::thread::spawn(move || {
            lm2.acquire(TxnId(2), row(1), LockMode::Exclusive).unwrap();
            acquired2.store(1, Ordering::SeqCst);
            lm2.release(TxnId(2), row(1));
        });

        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(acquired.load(Ordering::SeqCst), 0, "waiter must block");
        lm.release(TxnId(1), row(1));
        handle.join().unwrap();
        assert_eq!(acquired.load(Ordering::SeqCst), 1);
        assert_eq!(lm.active_rows(), 0);
    }

    #[test]
    fn conflicting_waiters_are_granted_in_fifo_order() {
        let lm = Arc::new(LockManager::new(8, Duration::from_secs(5)));
        lm.acquire(TxnId(0), row(1), LockMode::Exclusive).unwrap();

        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 1..=4u64 {
            let lm = Arc::clone(&lm);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                lm.acquire(TxnId(i), row(1), LockMode::Exclusive).unwrap();
                order.lock().push(i);
                lm.release(TxnId(i), row(1));
            }));
            // Stagger arrivals so the queue order is deterministic.
            std::thread::sleep(Duration::from_millis(20));
        }

        lm.release(TxnId(0), row(1));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn reentrant_and_upgrade_acquisition() {
        let lm = LockManager::default();
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        // Re-entrant shared.
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        // Upgrade to exclusive while sole holder.
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        // Shared request while holding exclusive is a no-op.
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        lm.release(TxnId(1), row(1));
        assert_eq!(lm.active_rows(), 0);
    }

    #[test]
    fn lock_wait_timeout_aborts_the_waiter() {
        let lm = Arc::new(LockManager::new(8, Duration::from_millis(30)));
        lm.acquire(TxnId(1), row(1), LockMode::Exclusive).unwrap();
        let err = lm
            .acquire(TxnId(2), row(1), LockMode::Exclusive)
            .unwrap_err();
        assert!(err.is_retryable());
        // The holder is unaffected and can still release.
        lm.release(TxnId(1), row(1));
        assert_eq!(lm.active_rows(), 0);
    }

    #[test]
    fn upgrade_deadlock_is_broken_by_timeout() {
        // Two transactions both hold shared and both try to upgrade; one of
        // them must eventually time out rather than hang forever.
        let lm = Arc::new(LockManager::new(8, Duration::from_millis(50)));
        lm.acquire(TxnId(1), row(1), LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), row(1), LockMode::Shared).unwrap();

        let lm2 = Arc::clone(&lm);
        let t2 = std::thread::spawn(move || lm2.acquire(TxnId(2), row(1), LockMode::Exclusive));
        let r1 = lm.acquire(TxnId(1), row(1), LockMode::Exclusive);
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one upgrade must abort to break the deadlock"
        );
    }

    #[test]
    fn release_of_unheld_lock_is_a_noop() {
        let lm = LockManager::default();
        lm.release(TxnId(1), row(9));
        assert_eq!(lm.active_rows(), 0);
    }
}
