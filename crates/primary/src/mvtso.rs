//! The multi-version timestamp-ordering engine (the Cicada role).
//!
//! Section 7.1 describes Cicada's protocol: each client thread owns a loosely
//! synchronized clock and assigns a unique timestamp to each transaction;
//! writes create new row versions carrying the transaction's timestamp; reads
//! raise the read timestamp of the version they observe; and a transaction
//! commits only if doing so is consistent with serializability — ordering
//! transactions by timestamp yields a valid serial schedule.
//!
//! [`MvtsoEngine`] reproduces that protocol over [`c5_storage::MvStore`]:
//!
//! * `read` records the reader's timestamp on the row, then reads the newest
//!   version at or below its timestamp.
//! * Writes are buffered in the transaction's write set.
//! * Commit validates every buffered write: the write is admissible only if
//!   no newer version exists and no transaction with a later timestamp has
//!   already read the row. If validation passes, the versions are installed
//!   at the transaction's timestamp and the transaction is appended to the
//!   executing thread's log.
//!
//! Like the paper's prototype (which adds logging to a system that has none),
//! the engine keeps per-thread logs that are coalesced into a single, totally
//! ordered log once the workload finishes; the replica is then driven from
//! the coalesced segments.
//!
//! Validation and installation happen atomically for the whole write set via
//! [`MvStore::install_all_validated`], which stands in for Cicada's
//! pending-version machinery: it closes the race between validating a write
//! and installing it, so read-modify-write transactions never lose updates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use c5_common::{
    error::AbortReason, Error, PrimaryConfig, Result, RowRef, RowWrite, SeqNo, Timestamp, TxnId,
    Value,
};
use c5_log::{coalesce, Segment, ThreadLog, TxnEntry};
use c5_storage::MvStore;

use crate::clock::ClockSet;
use crate::txn::{StoredProcedure, TxnCtx, WriteSet};

/// The MVTSO engine.
pub struct MvtsoEngine {
    store: Arc<MvStore>,
    clocks: ClockSet,
    config: PrimaryConfig,
    next_txn: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    thread_logs: Vec<Mutex<ThreadLog>>,
}

impl MvtsoEngine {
    /// Creates an engine with `config.threads` client threads over `store`.
    pub fn new(store: Arc<MvStore>, config: PrimaryConfig) -> Self {
        let threads = config.threads.max(1);
        Self {
            store,
            clocks: ClockSet::new(threads),
            config,
            next_txn: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            thread_logs: (0..threads).map(|_| Mutex::new(ThreadLog::new())).collect(),
        }
    }

    /// Creates an engine resuming over a **promoted backup store** (the
    /// failover takeover path): the clocks are fast-forwarded past `cut`, so
    /// every new commit timestamp strictly exceeds every version the backup
    /// installed (backups install versions at log positions, all `<= cut`),
    /// and MVTSO validation admits new transactions immediately.
    pub fn resume_at(store: Arc<MvStore>, config: PrimaryConfig, cut: SeqNo) -> Self {
        let engine = Self::new(store, config);
        engine.clocks.fast_forward(cut.as_u64());
        engine
    }

    /// The underlying store.
    pub fn store(&self) -> &Arc<MvStore> {
        &self.store
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PrimaryConfig {
        &self.config
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of aborted transaction attempts.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Loads a row directly into the store (initial population), bypassing
    /// concurrency control and logging.
    pub fn load_row(&self, row: RowRef, value: Value) {
        self.store
            .install(row, Timestamp(1), c5_common::WriteKind::Insert, Some(value));
        self.clocks.observe(Timestamp(1 << 8));
    }

    /// Executes a stored procedure on behalf of client thread `thread`,
    /// retrying on validation aborts. Returns the commit timestamp.
    pub fn execute_on(&self, thread: usize, proc: &dyn StoredProcedure) -> Result<Timestamp> {
        assert!(thread < self.clocks.threads(), "thread index out of range");
        let mut attempts = 0;
        loop {
            let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed) + 1);
            match self.try_execute(thread, txn, proc) {
                Ok(ts) => {
                    self.committed.fetch_add(1, Ordering::Relaxed);
                    return Ok(ts);
                }
                Err(err) if err.is_retryable() && attempts < self.config.max_retries => {
                    self.aborted.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                }
                Err(err) => {
                    self.aborted.fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
            }
        }
    }

    fn try_execute(
        &self,
        thread: usize,
        txn: TxnId,
        proc: &dyn StoredProcedure,
    ) -> Result<Timestamp> {
        let ts = self.clocks.next_timestamp(thread);
        let mut ctx = MvtsoCtx {
            engine: self,
            ts,
            writes: WriteSet::new(),
        };
        proc.execute(&mut ctx)?;
        self.commit(thread, txn, ts, ctx.writes)
    }

    fn commit(
        &self,
        thread: usize,
        txn: TxnId,
        ts: Timestamp,
        writes: WriteSet,
    ) -> Result<Timestamp> {
        let writes = writes.into_writes();
        // Validate and install atomically: either every write is admissible
        // at `ts` and all versions appear, or nothing does and we abort.
        if !self.store.install_all_validated(&writes, ts) {
            return Err(Error::TxnAborted {
                txn,
                reason: AbortReason::ValidationFailed,
            });
        }
        if !writes.is_empty() {
            self.thread_logs[thread]
                .lock()
                .append(TxnEntry::new(txn, ts, writes));
        }
        Ok(ts)
    }

    /// Coalesces the per-thread logs into a single totally ordered log packed
    /// into segments of `segment_records` records, consuming the logs. This
    /// mirrors the paper's prototype, where coalescing happens after the
    /// primary's run and before the backup starts.
    pub fn take_segments(&self, segment_records: usize) -> Vec<Segment> {
        let logs: Vec<ThreadLog> = self
            .thread_logs
            .iter()
            .map(|l| std::mem::take(&mut *l.lock()))
            .collect();
        coalesce(logs, segment_records)
    }
}

impl std::fmt::Debug for MvtsoEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MvtsoEngine")
            .field("threads", &self.clocks.threads())
            .field("committed", &self.committed())
            .field("aborted", &self.aborted())
            .finish()
    }
}

struct MvtsoCtx<'e> {
    engine: &'e MvtsoEngine,
    ts: Timestamp,
    writes: WriteSet,
}

impl MvtsoCtx<'_> {
    fn charge(&self) {
        self.engine.config.op_cost.charge_primary();
    }
}

impl TxnCtx for MvtsoCtx<'_> {
    fn read(&mut self, row: RowRef) -> Result<Option<Value>> {
        self.charge();
        if let Some(write) = self.writes.get(row) {
            return Ok(write.value.clone());
        }
        // Record the read before performing it so that a concurrent writer
        // with a smaller timestamp fails validation rather than invalidating
        // this read after the fact.
        self.engine.store.observe_read(row, self.ts);
        Ok(self.engine.store.read_at(row, self.ts))
    }

    fn insert(&mut self, row: RowRef, value: Value) -> Result<()> {
        self.charge();
        let exists = self.engine.store.exists_at(row, self.ts)
            || self
                .writes
                .get(row)
                .map(|w| w.kind != c5_common::WriteKind::Delete)
                .unwrap_or(false);
        if exists {
            return Err(Error::DuplicateRow(row));
        }
        self.writes.push(RowWrite::insert(row, value));
        Ok(())
    }

    fn update(&mut self, row: RowRef, value: Value) -> Result<()> {
        self.charge();
        self.writes.push(RowWrite::update(row, value));
        Ok(())
    }

    fn delete(&mut self, row: RowRef) -> Result<()> {
        self.charge();
        self.writes.push(RowWrite::delete(row));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_log::flatten;

    fn engine(threads: usize) -> Arc<MvtsoEngine> {
        let store = Arc::new(MvStore::default());
        let config = PrimaryConfig::default().with_threads(threads);
        Arc::new(MvtsoEngine::new(store, config))
    }

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    #[test]
    fn committed_writes_become_visible() {
        let e = engine(1);
        e.execute_on(0, &|ctx: &mut dyn TxnCtx| {
            ctx.insert(row(1), Value::from_u64(5))
        })
        .unwrap();
        let ts = e
            .execute_on(0, &|ctx: &mut dyn TxnCtx| {
                let v = ctx.read_expected(row(1))?.as_u64().unwrap();
                ctx.update(row(1), Value::from_u64(v * 2))
            })
            .unwrap();
        assert!(ts > Timestamp::ZERO);
        assert_eq!(e.store().read_latest(row(1)).unwrap().as_u64(), Some(10));
        assert_eq!(e.committed(), 2);
    }

    #[test]
    fn concurrent_counter_increments_never_lose_updates() {
        let e = engine(4);
        e.execute_on(0, &|ctx: &mut dyn TxnCtx| {
            ctx.insert(row(0), Value::from_u64(0))
        })
        .unwrap();

        let mut handles = Vec::new();
        for t in 0..4usize {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    e.execute_on(t, &|ctx: &mut dyn TxnCtx| {
                        let v = ctx.read_expected(row(0))?.as_u64().unwrap();
                        ctx.update(row(0), Value::from_u64(v + 1))
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // MVTSO validation guarantees no lost updates: the final counter must
        // equal the number of successful increments.
        assert_eq!(e.store().read_latest(row(0)).unwrap().as_u64(), Some(200));
    }

    #[test]
    fn contention_causes_validation_aborts() {
        // Give each operation a non-trivial cost so concurrent transactions
        // genuinely overlap on the hot row (on a fast machine, zero-cost
        // transactions finish before a conflict can arise).
        let store = Arc::new(MvStore::default());
        let config = PrimaryConfig::default()
            .with_threads(4)
            .with_op_cost(c5_common::OpCost::symmetric(50_000));
        let e = Arc::new(MvtsoEngine::new(store, config));
        e.execute_on(0, &|ctx: &mut dyn TxnCtx| {
            ctx.insert(row(0), Value::from_u64(0))
        })
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..4usize {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let _ = e.execute_on(t, &|ctx: &mut dyn TxnCtx| {
                        let v = ctx.read_expected(row(0))?.as_u64().unwrap();
                        ctx.update(row(0), Value::from_u64(v + 1))
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            e.aborted() > 0,
            "a contended counter should cause MVTSO aborts"
        );
    }

    #[test]
    fn take_segments_produces_a_timestamp_ordered_log() {
        let e = engine(2);
        for t in 0..2usize {
            for i in 0..10u64 {
                e.execute_on(t, &|ctx: &mut dyn TxnCtx| {
                    ctx.insert(row(1000 + t as u64 * 100 + i), Value::from_u64(i))
                })
                .unwrap();
            }
        }
        let segments = e.take_segments(8);
        let records = flatten(&segments);
        assert_eq!(records.len(), 20);
        let commit_ts: Vec<u64> = records.iter().map(|r| r.commit_ts.as_u64()).collect();
        assert!(
            commit_ts.windows(2).all(|w| w[0] <= w[1]),
            "log must be timestamp ordered"
        );
        // Taking segments again yields nothing (logs are consumed).
        assert!(e.take_segments(8).is_empty());
    }

    #[test]
    fn duplicate_insert_rejected_without_retry_storm() {
        let e = engine(1);
        e.execute_on(0, &|ctx: &mut dyn TxnCtx| {
            ctx.insert(row(7), Value::from_u64(1))
        })
        .unwrap();
        let err = e
            .execute_on(0, &|ctx: &mut dyn TxnCtx| {
                ctx.insert(row(7), Value::from_u64(2))
            })
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateRow(_)));
    }

    #[test]
    fn resume_at_commits_strictly_above_the_promoted_cut() {
        // A promoted backup store: versions live at log positions <= cut.
        let store = Arc::new(MvStore::default());
        store.install(
            row(1),
            Timestamp(40),
            c5_common::WriteKind::Insert,
            Some(Value::from_u64(40)),
        );
        let e = MvtsoEngine::resume_at(
            Arc::clone(&store),
            PrimaryConfig::default().with_threads(2),
            SeqNo(40),
        );
        // Without the fast-forward this transaction's timestamp would start
        // near zero and fail validation against the promoted versions
        // forever; resumed, it reads the promoted state and commits above it.
        let ts = e
            .execute_on(0, &|ctx: &mut dyn TxnCtx| {
                let v = ctx.read_expected(row(1))?.as_u64().unwrap();
                ctx.update(row(1), Value::from_u64(v + 2))
            })
            .unwrap();
        assert!(ts > Timestamp(40));
        assert_eq!(store.read_latest(row(1)).unwrap().as_u64(), Some(42));
        assert_eq!(e.aborted(), 0);
    }

    #[test]
    fn read_only_transactions_produce_no_log_entries() {
        let e = engine(1);
        e.execute_on(0, &|ctx: &mut dyn TxnCtx| {
            ctx.insert(row(1), Value::from_u64(1))
        })
        .unwrap();
        e.execute_on(0, &|ctx: &mut dyn TxnCtx| {
            let _ = ctx.read(row(1))?;
            Ok(())
        })
        .unwrap();
        let records = flatten(&e.take_segments(4));
        assert_eq!(records.len(), 1);
    }
}
