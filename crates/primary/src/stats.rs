//! Run statistics reported by the closed-loop drivers.

use std::time::Duration;

/// Outcome of driving a primary engine for some interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrimaryRunStats {
    /// Transactions that committed.
    pub committed: u64,
    /// Transaction attempts aborted by the concurrency control protocol
    /// (each retry of the same logical transaction counts once).
    pub aborted: u64,
    /// Transactions that ultimately failed (exhausted retries or hit a
    /// non-retryable error).
    pub failed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
}

impl PrimaryRunStats {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.committed as f64 / self.wall.as_secs_f64()
        }
    }

    /// Fraction of attempts that aborted: `aborted / (aborted + committed)`.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.aborted + self.committed;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Merges per-client statistics into a whole-run total. The wall time is
    /// the maximum of the two (clients run concurrently).
    pub fn merge(&mut self, other: &PrimaryRunStats) {
        self.committed += other.committed;
        self.aborted += other.aborted;
        self.failed += other.failed;
        self.wall = self.wall.max(other.wall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_and_abort_rate() {
        let stats = PrimaryRunStats {
            committed: 100,
            aborted: 25,
            failed: 0,
            wall: Duration::from_secs(2),
        };
        assert!((stats.throughput() - 50.0).abs() < 1e-9);
        assert!((stats.abort_rate() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let stats = PrimaryRunStats::default();
        assert_eq!(stats.throughput(), 0.0);
        assert_eq!(stats.abort_rate(), 0.0);
    }

    #[test]
    fn merge_sums_counts_and_takes_max_wall() {
        let mut a = PrimaryRunStats {
            committed: 10,
            aborted: 1,
            failed: 0,
            wall: Duration::from_secs(1),
        };
        let b = PrimaryRunStats {
            committed: 20,
            aborted: 2,
            failed: 3,
            wall: Duration::from_secs(2),
        };
        a.merge(&b);
        assert_eq!(a.committed, 30);
        assert_eq!(a.aborted, 3);
        assert_eq!(a.failed, 3);
        assert_eq!(a.wall, Duration::from_secs(2));
    }
}
