//! The two-phase-locking primary engine (the MyRocks role).
//!
//! This engine reproduces the concurrency behaviour the paper attributes to
//! the MyRocks primary (Sections 3, 5 and 6):
//!
//! * Writes to *different* rows by concurrent transactions execute in
//!   parallel on different executor threads.
//! * Writes to the *same* row serialize on a FIFO row lock, so the commit
//!   order of conflicting transactions is the lock acquisition order of their
//!   first conflicting write.
//! * The replication log reflects the commit order: the log append happens
//!   while the transaction still holds its write locks, so per-row log order
//!   always equals per-row lock order.
//!
//! Stored procedures run through `TplCtx`; the engine retries transactions
//! aborted by lock-wait timeouts (the stand-in for deadlock handling, as in
//! production MySQL).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use c5_common::{
    error::AbortReason, Error, IsolationLevel, PrimaryConfig, Result, RowRef, RowWrite, SeqNo,
    Timestamp, TxnId, Value,
};
use c5_log::StreamingLogger;
use c5_storage::MvStore;

use crate::lock::{LockManager, LockMode};
use crate::txn::{StoredProcedure, TxnCtx, WriteSet};

/// The two-phase-locking engine.
pub struct TplEngine {
    store: Arc<MvStore>,
    locks: LockManager,
    logger: StreamingLogger,
    config: PrimaryConfig,
    next_txn: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
}

impl TplEngine {
    /// Creates an engine over `store`, logging committed transactions through
    /// `logger`.
    pub fn new(store: Arc<MvStore>, config: PrimaryConfig, logger: StreamingLogger) -> Self {
        Self {
            store,
            locks: LockManager::default(),
            logger,
            config,
            next_txn: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
        }
    }

    /// The underlying store (shared with tests and loaders).
    pub fn store(&self) -> &Arc<MvStore> {
        &self.store
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PrimaryConfig {
        &self.config
    }

    /// Number of committed transactions.
    pub fn committed(&self) -> u64 {
        self.committed.load(Ordering::Relaxed)
    }

    /// Number of aborted transaction attempts.
    pub fn aborted(&self) -> u64 {
        self.aborted.load(Ordering::Relaxed)
    }

    /// Flushes and closes the replication log (call when the workload ends).
    pub fn close_log(&self) {
        self.logger.close();
    }

    /// Ships the log's buffered tail without closing it. Read routers use
    /// this so strong and causal reads never wait on records that are
    /// committed but still sitting in a partially filled segment.
    pub fn flush_log(&self) {
        self.logger.flush();
    }

    /// Crashes the replication log: the shipping channel closes *without*
    /// flushing the buffered tail, which is lost exactly as an
    /// asynchronously replicated primary loses its unshipped writes on
    /// failure. Failover experiments use this to kill the primary.
    pub fn crash_log(&self) {
        self.logger.crash();
    }

    /// Highest log position assigned so far, including any buffered
    /// (crash-lossable) tail. The durable log end after a crash is the
    /// attached archive's `last_seq`, not this.
    pub fn log_last_seq(&self) -> SeqNo {
        self.logger.last_seq()
    }

    /// Loads a row directly into the store, bypassing concurrency control and
    /// the log. Used to install the initial database population (the paper's
    /// backups start from a copy of the primary's state).
    pub fn load_row(&self, row: RowRef, value: Value) {
        self.store.install(
            row,
            Timestamp::ZERO.next(),
            c5_common::WriteKind::Insert,
            Some(value),
        );
    }

    /// Executes a stored procedure, retrying on protocol-induced aborts up to
    /// the configured maximum. Returns the commit timestamp.
    pub fn execute(&self, proc: &dyn StoredProcedure) -> Result<Timestamp> {
        self.execute_with_token(proc).map(|(ts, _)| ts)
    }

    /// Executes a stored procedure and also returns its **causal token**:
    /// the log position of the transaction's last write. A read session
    /// carries the token to the replica fleet to get read-your-writes — a
    /// replica whose exposed cut covers the token has made this
    /// transaction's writes visible. Read-only procedures return the
    /// previous transaction's boundary (nothing new to wait for).
    pub fn execute_with_token(&self, proc: &dyn StoredProcedure) -> Result<(Timestamp, SeqNo)> {
        let mut attempts = 0;
        loop {
            let txn = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed) + 1);
            match self.try_execute(txn, proc) {
                Ok(out) => {
                    self.committed.fetch_add(1, Ordering::Relaxed);
                    return Ok(out);
                }
                Err(err) if err.is_retryable() && attempts < self.config.max_retries => {
                    self.aborted.fetch_add(1, Ordering::Relaxed);
                    attempts += 1;
                }
                Err(err) => {
                    self.aborted.fetch_add(1, Ordering::Relaxed);
                    return Err(err);
                }
            }
        }
    }

    fn try_execute(&self, txn: TxnId, proc: &dyn StoredProcedure) -> Result<(Timestamp, SeqNo)> {
        let mut ctx = TplCtx {
            engine: self,
            txn,
            held: Vec::new(),
            writes: WriteSet::new(),
        };
        match proc.execute(&mut ctx) {
            Ok(()) => {
                let out = ctx.commit();
                Ok(out)
            }
            Err(err) => {
                ctx.rollback();
                // Normalize lock-manager aborts so the retry loop sees a
                // retryable error attributed to this transaction.
                match err {
                    Error::TxnAborted { reason, .. } => Err(Error::TxnAborted { txn, reason }),
                    other => Err(other),
                }
            }
        }
    }
}

impl std::fmt::Debug for TplEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TplEngine")
            .field("committed", &self.committed())
            .field("aborted", &self.aborted())
            .finish()
    }
}

/// Transaction context handed to stored procedures by [`TplEngine`].
struct TplCtx<'e> {
    engine: &'e TplEngine,
    txn: TxnId,
    /// Rows on which this transaction currently holds a lock (any mode).
    held: Vec<RowRef>,
    writes: WriteSet,
}

impl TplCtx<'_> {
    fn lock(&mut self, row: RowRef, mode: LockMode) -> Result<()> {
        self.engine.locks.acquire(self.txn, row, mode)?;
        if !self.held.contains(&row) {
            self.held.push(row);
        }
        Ok(())
    }

    fn release_everything(&mut self) {
        self.engine.locks.release_all(self.txn, self.held.iter());
        self.held.clear();
    }

    fn commit(&mut self) -> (Timestamp, SeqNo) {
        let writes = std::mem::take(&mut self.writes).into_writes();
        // Append to the log while still holding write locks: the log order of
        // conflicting writes therefore matches the lock order, which is the
        // property the backup protocols depend on.
        let (commit_ts, token) = self.engine.logger.append_tokened(self.txn, writes.clone());
        for w in &writes {
            self.engine
                .store
                .install(w.row, commit_ts, w.kind, w.value.clone());
        }
        self.release_everything();
        (commit_ts, token)
    }

    fn rollback(&mut self) {
        // Nothing was installed (writes are buffered until commit), so
        // rollback only releases locks.
        self.release_everything();
    }

    fn charge(&self) {
        self.engine.config.op_cost.charge_primary();
    }
}

impl TxnCtx for TplCtx<'_> {
    fn read(&mut self, row: RowRef) -> Result<Option<Value>> {
        self.charge();
        if let Some(write) = self.writes.get(row) {
            return Ok(write.value.clone());
        }
        match self.engine.config.isolation {
            IsolationLevel::Serializable => {
                self.lock(row, LockMode::Shared)?;
                Ok(self.engine.store.read_latest(row))
            }
            IsolationLevel::ReadCommitted => {
                // Short read locks: acquire, read, release immediately unless
                // we already hold a (stronger) lock from an earlier write.
                let already_held = self.held.contains(&row);
                if !already_held {
                    self.engine.locks.acquire(self.txn, row, LockMode::Shared)?;
                }
                let value = self.engine.store.read_latest(row);
                if !already_held {
                    self.engine.locks.release(self.txn, row);
                }
                Ok(value)
            }
        }
    }

    fn read_for_update(&mut self, row: RowRef) -> Result<Option<Value>> {
        self.charge();
        if let Some(write) = self.writes.get(row) {
            return Ok(write.value.clone());
        }
        self.lock(row, LockMode::Exclusive)?;
        Ok(self.engine.store.read_latest(row))
    }

    fn insert(&mut self, row: RowRef, value: Value) -> Result<()> {
        self.charge();
        self.lock(row, LockMode::Exclusive)?;
        let exists_in_store = self.engine.store.read_latest(row).is_some();
        let exists_in_writes = self
            .writes
            .get(row)
            .map(|w| w.kind != c5_common::WriteKind::Delete)
            .unwrap_or(false);
        if exists_in_store || exists_in_writes {
            return Err(Error::DuplicateRow(row));
        }
        self.writes.push(RowWrite::insert(row, value));
        Ok(())
    }

    fn update(&mut self, row: RowRef, value: Value) -> Result<()> {
        self.charge();
        self.lock(row, LockMode::Exclusive)?;
        self.writes.push(RowWrite::update(row, value));
        Ok(())
    }

    fn delete(&mut self, row: RowRef) -> Result<()> {
        self.charge();
        self.lock(row, LockMode::Exclusive)?;
        self.writes.push(RowWrite::delete(row));
        Ok(())
    }
}

impl Drop for TplCtx<'_> {
    fn drop(&mut self) {
        // Safety net: a panicking stored procedure must not leak locks.
        if !self.held.is_empty() {
            self.release_everything();
        }
    }
}

/// Convenience used by tests to build an abort error from inside a stored
/// procedure (e.g. TPC-C's intentionally failing NewOrder transactions).
pub fn user_abort(txn: TxnId) -> Error {
    Error::TxnAborted {
        txn,
        reason: AbortReason::UserRequested,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_log::{flatten, LogShipper};
    use std::time::Duration;

    fn engine_with_receiver(threads: usize) -> (Arc<TplEngine>, c5_log::LogReceiver) {
        let (shipper, receiver) = LogShipper::unbounded();
        let logger = StreamingLogger::new(4, shipper);
        let store = Arc::new(MvStore::default());
        let config = PrimaryConfig::default().with_threads(threads);
        (Arc::new(TplEngine::new(store, config, logger)), receiver)
    }

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    #[test]
    fn committed_writes_are_visible_and_logged() {
        let (engine, receiver) = engine_with_receiver(1);
        engine
            .execute(&|ctx: &mut dyn TxnCtx| {
                ctx.insert(row(1), Value::from_u64(10))?;
                ctx.insert(row(2), Value::from_u64(20))
            })
            .unwrap();
        engine
            .execute(&|ctx: &mut dyn TxnCtx| {
                let v = ctx.read_expected(row(1))?.as_u64().unwrap();
                ctx.update(row(1), Value::from_u64(v + 1))
            })
            .unwrap();
        engine.close_log();

        assert_eq!(
            engine.store().read_latest(row(1)).unwrap().as_u64(),
            Some(11)
        );
        assert_eq!(engine.committed(), 2);

        let records = flatten(&receiver.drain());
        assert_eq!(records.len(), 3);
        // Log order matches commit order: txn 1's two inserts, then txn 2's update.
        assert!(records[0].commit_ts < records[2].commit_ts);
    }

    #[test]
    fn execute_with_token_returns_the_logged_boundary() {
        let (engine, receiver) = engine_with_receiver(1);
        let (_, tok1) = engine
            .execute_with_token(&|ctx: &mut dyn TxnCtx| {
                ctx.insert(row(1), Value::from_u64(1))?;
                ctx.insert(row(2), Value::from_u64(2))
            })
            .unwrap();
        let (_, tok2) = engine
            .execute_with_token(&|ctx: &mut dyn TxnCtx| ctx.update(row(1), Value::from_u64(3)))
            .unwrap();
        engine.close_log();

        // Tokens are the log boundaries of the two transactions.
        let records = flatten(&receiver.drain());
        let boundaries: Vec<SeqNo> = records
            .iter()
            .filter(|r| r.is_txn_last())
            .map(|r| r.seq)
            .collect();
        assert_eq!(boundaries, vec![tok1, tok2]);
        assert!(tok2 > tok1);
    }

    #[test]
    fn flush_log_ships_the_buffered_tail_without_closing() {
        let (shipper, receiver) = LogShipper::unbounded();
        // Huge segment target: nothing ships until flushed.
        let logger = StreamingLogger::new(1_000, shipper);
        let store = Arc::new(MvStore::default());
        let engine = TplEngine::new(store, PrimaryConfig::default(), logger);
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(1), Value::from_u64(1)))
            .unwrap();
        assert_eq!(receiver.try_len(), 0);
        engine.flush_log();
        assert_eq!(flatten(&receiver.drain_available()).len(), 1);
        // The log is still open: later commits keep flowing.
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(2), Value::from_u64(2)))
            .unwrap();
        engine.close_log();
        assert_eq!(flatten(&receiver.drain()).len(), 1);
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let (engine, receiver) = engine_with_receiver(1);
        let result = engine.execute(&|ctx: &mut dyn TxnCtx| {
            ctx.insert(row(5), Value::from_u64(1))?;
            Err(user_abort(TxnId(0)))
        });
        assert!(result.is_err());
        engine.close_log();

        assert_eq!(engine.store().read_latest(row(5)), None);
        assert!(flatten(&receiver.drain()).is_empty());
        assert_eq!(engine.committed(), 0);
        assert!(engine.aborted() >= 1);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let (engine, _receiver) = engine_with_receiver(1);
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(1), Value::from_u64(1)))
            .unwrap();
        let err = engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(1), Value::from_u64(2)))
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateRow(_)));
    }

    #[test]
    fn conflicting_counter_increments_serialize_correctly() {
        let (engine, _receiver) = engine_with_receiver(4);
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(0), Value::from_u64(0)))
            .unwrap();

        let threads = 4;
        let per_thread = 50;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for _ in 0..per_thread {
                    engine
                        .execute(&|ctx: &mut dyn TxnCtx| {
                            let v = ctx.read_for_update_expected(row(0))?.as_u64().unwrap();
                            ctx.update(row(0), Value::from_u64(v + 1))
                        })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let final_value = engine
            .store()
            .read_latest(row(0))
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(final_value, (threads * per_thread) as u64);
    }

    #[test]
    fn log_order_matches_per_row_commit_order() {
        let (engine, receiver) = engine_with_receiver(4);
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(0), Value::from_u64(0)))
            .unwrap();

        let mut handles = Vec::new();
        for t in 0..4u64 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    engine
                        .execute(&|ctx: &mut dyn TxnCtx| {
                            let v = ctx.read_for_update_expected(row(0))?.as_u64().unwrap();
                            ctx.update(row(0), Value::from_u64(v + 1))?;
                            // A non-conflicting insert per transaction.
                            ctx.insert(row(1 + t * 1000 + i), Value::from_u64(i))
                        })
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        engine.close_log();

        // Replaying the log's writes to row 0 serially must yield the store's
        // final counter value.
        let records = flatten(&receiver.drain());
        let hot_writes: Vec<u64> = records
            .iter()
            .filter(|r| r.write.row == row(0))
            .map(|r| r.write.value.as_ref().unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(*hot_writes.last().unwrap(), 100);
        // The logged counter values are strictly increasing, proving the log
        // order matches the lock (commit) order for the contended row.
        assert!(hot_writes.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            engine.store().read_latest(row(0)).unwrap().as_u64(),
            Some(100)
        );
    }

    #[test]
    fn read_committed_reads_do_not_block_writers_for_long() {
        let (engine, _receiver) = engine_with_receiver(2);
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.insert(row(1), Value::from_u64(1)))
            .unwrap();
        // A long transaction that reads row 1 under read committed releases
        // its lock immediately, so the writer below never waits.
        let start = std::time::Instant::now();
        engine
            .execute(&|ctx: &mut dyn TxnCtx| {
                let _ = ctx.read(row(1))?;
                Ok(())
            })
            .unwrap();
        engine
            .execute(&|ctx: &mut dyn TxnCtx| ctx.update(row(1), Value::from_u64(2)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn load_row_bypasses_the_log() {
        let (engine, receiver) = engine_with_receiver(1);
        engine.load_row(row(9), Value::from_u64(9));
        engine.close_log();
        assert_eq!(
            engine.store().read_latest(row(9)).unwrap().as_u64(),
            Some(9)
        );
        assert!(flatten(&receiver.drain()).is_empty());
    }
}
