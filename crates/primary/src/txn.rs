//! Stored procedures and the transaction-context interface they run against.
//!
//! The paper's evaluation uses stored procedures throughout so that parsing
//! and planning never bottleneck the primary (Section 3). A stored procedure
//! receives a [`TxnCtx`] — the engine-specific transaction handle — and
//! issues reads and writes through it. The same procedure object runs
//! unmodified on the 2PL engine and the MVTSO engine, and is re-executed from
//! scratch when the engine aborts and retries the transaction.

use c5_common::{Result, RowRef, Value};

/// The operations a stored procedure can perform inside a transaction.
pub trait TxnCtx {
    /// Reads the current value of a row (`None` if it does not exist).
    fn read(&mut self, row: RowRef) -> Result<Option<Value>>;

    /// Inserts a new row. Engines may treat an insert over an existing row as
    /// an error ([`c5_common::Error::DuplicateRow`]).
    fn insert(&mut self, row: RowRef, value: Value) -> Result<()>;

    /// Updates a row's value (blind write; no existence check).
    fn update(&mut self, row: RowRef, value: Value) -> Result<()>;

    /// Deletes a row.
    fn delete(&mut self, row: RowRef) -> Result<()>;

    /// Reads a row with the intent to update it (`SELECT ... FOR UPDATE`).
    ///
    /// The 2PL engine takes the exclusive lock up front, which avoids the
    /// upgrade deadlocks a read-then-update pattern would otherwise cause on
    /// hot rows such as TPC-C's district next-order-id. Engines without locks
    /// treat it as a plain read.
    fn read_for_update(&mut self, row: RowRef) -> Result<Option<Value>> {
        self.read(row)
    }

    /// Reads a row and returns its value or an error if it is missing.
    /// Convenience used by workloads whose schema guarantees existence.
    fn read_expected(&mut self, row: RowRef) -> Result<Value> {
        self.read(row)?.ok_or(c5_common::Error::RowNotFound(row))
    }

    /// [`TxnCtx::read_for_update`] combined with the existence check of
    /// [`TxnCtx::read_expected`].
    fn read_for_update_expected(&mut self, row: RowRef) -> Result<Value> {
        self.read_for_update(row)?
            .ok_or(c5_common::Error::RowNotFound(row))
    }
}

/// A transaction body.
///
/// Implementations must be deterministic given the context's reads — the
/// engine may execute them multiple times (once per abort/retry), and the
/// replica relies on the primary's log alone, never on re-running procedures.
pub trait StoredProcedure: Send + Sync {
    /// Executes the transaction body against `ctx`. Returning an error aborts
    /// the transaction; protocol-retryable errors cause the engine to retry.
    fn execute(&self, ctx: &mut dyn TxnCtx) -> Result<()>;

    /// A short label used by statistics and traces (e.g. `"new_order"`).
    fn label(&self) -> &'static str {
        "txn"
    }
}

/// Blanket implementation so closures can be used as stored procedures in
/// tests and examples.
impl<F> StoredProcedure for F
where
    F: Fn(&mut dyn TxnCtx) -> Result<()> + Send + Sync,
{
    fn execute(&self, ctx: &mut dyn TxnCtx) -> Result<()> {
        self(ctx)
    }
}

/// A write-set buffer shared by both engines: at most one write per row
/// (last-writer-wins within the transaction, which also guarantees the
/// replication log never contains two writes to the same row with the same
/// commit timestamp), preserving first-write order for the log.
#[derive(Debug, Default)]
pub struct WriteSet {
    order: Vec<RowRef>,
    writes: std::collections::HashMap<RowRef, c5_common::RowWrite>,
}

impl WriteSet {
    /// Creates an empty write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers a write, replacing any previous write to the same row while
    /// keeping the row's position in the operation order.
    pub fn push(&mut self, write: c5_common::RowWrite) {
        if !self.writes.contains_key(&write.row) {
            self.order.push(write.row);
        }
        self.writes.insert(write.row, write);
    }

    /// Looks up the buffered write for a row (used so reads observe the
    /// transaction's own earlier writes).
    pub fn get(&self, row: RowRef) -> Option<&c5_common::RowWrite> {
        self.writes.get(&row)
    }

    /// Number of buffered writes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the transaction wrote nothing.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Drains the buffered writes in operation order.
    pub fn into_writes(mut self) -> Vec<c5_common::RowWrite> {
        self.order
            .iter()
            .map(|row| {
                self.writes
                    .remove(row)
                    .expect("ordered row must be present")
            })
            .collect()
    }

    /// Iterates the buffered writes in operation order without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &c5_common::RowWrite> {
        self.order.iter().map(|row| &self.writes[row])
    }

    /// The rows written, in first-write order.
    pub fn rows(&self) -> &[RowRef] {
        &self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use c5_common::{RowWrite, WriteKind};

    fn row(k: u64) -> RowRef {
        RowRef::new(0, k)
    }

    #[test]
    fn write_set_is_last_writer_wins_per_row() {
        let mut ws = WriteSet::new();
        ws.push(RowWrite::insert(row(1), Value::from_u64(1)));
        ws.push(RowWrite::insert(row(2), Value::from_u64(2)));
        ws.push(RowWrite::update(row(1), Value::from_u64(10)));

        assert_eq!(ws.len(), 2);
        assert_eq!(
            ws.get(row(1)).unwrap().value.as_ref().unwrap().as_u64(),
            Some(10)
        );
        let writes = ws.into_writes();
        // Row 1 keeps its original position even though it was overwritten.
        assert_eq!(writes[0].row, row(1));
        assert_eq!(writes[0].kind, WriteKind::Update);
        assert_eq!(writes[1].row, row(2));
    }

    #[test]
    fn closures_are_stored_procedures() {
        let proc = |_ctx: &mut dyn TxnCtx| -> Result<()> { Ok(()) };
        // Compile-time check that the blanket impl applies.
        fn takes_proc(_p: &dyn StoredProcedure) {}
        takes_proc(&proc);
        assert_eq!(StoredProcedure::label(&proc), "txn");
    }

    #[test]
    fn empty_write_set_reports_empty() {
        let ws = WriteSet::new();
        assert!(ws.is_empty());
        assert_eq!(ws.rows(), &[] as &[RowRef]);
        assert!(ws.into_writes().is_empty());
    }
}
