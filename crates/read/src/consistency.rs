//! Consistency classes for reads against the replica fleet.
//!
//! The paper's backups guarantee monotonic prefix consistency per replica;
//! a *fleet* of replicas serving one client's reads needs more vocabulary,
//! because different replicas expose different prefixes. Each read names the
//! guarantee it needs, and the router turns that into a requirement on the
//! serving replica's exposed cut:
//!
//! * [`ConsistencyClass::Strong`] — the read reflects every transaction the
//!   primary had committed when the read started. The router requires the
//!   serving replica's cut to cover the primary's log frontier, sampled at
//!   read start.
//! * [`ConsistencyClass::Causal`] — the read reflects at least the
//!   transaction named by a causal token (a [`SeqNo`] handed out at commit
//!   time). Sessions use this for read-your-writes.
//! * [`ConsistencyClass::BoundedStaleness`] — the read may be stale, but by
//!   no more than the given wall-clock bound. The router maps the bound onto
//!   each replica's lag-tracker freshness estimate.
//!
//! Every class additionally inherits the session's monotonic floor, so a
//! session never reads backwards even when it switches replicas.

use std::fmt;
use std::time::Duration;

use c5_common::SeqNo;

/// The guarantee one read (or read-only transaction) asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsistencyClass {
    /// Primary-verified: the serving replica's exposed cut must cover the
    /// primary's log frontier as sampled when the read starts. Requires the
    /// router to have a [`crate::router::PrimaryFrontier`].
    Strong,
    /// Causal: the serving replica's exposed cut must cover the token (the
    /// boundary [`SeqNo`] of the transaction the reader depends on).
    Causal(SeqNo),
    /// Freshness-bounded: the serving replica's state may trail the primary
    /// by at most this much wall-clock time.
    BoundedStaleness(Duration),
}

impl ConsistencyClass {
    /// The class's kind (the metrics key).
    pub fn kind(&self) -> ClassKind {
        match self {
            ConsistencyClass::Strong => ClassKind::Strong,
            ConsistencyClass::Causal(_) => ClassKind::Causal,
            ConsistencyClass::BoundedStaleness(_) => ClassKind::BoundedStaleness,
        }
    }
}

impl fmt::Display for ConsistencyClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyClass::Strong => write!(f, "strong"),
            ConsistencyClass::Causal(token) => write!(f, "causal({token})"),
            ConsistencyClass::BoundedStaleness(bound) => {
                write!(f, "bounded-staleness({bound:?})")
            }
        }
    }
}

/// A consistency class stripped of its parameter — the key the router's
/// per-class metrics are bucketed by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClassKind {
    /// [`ConsistencyClass::Strong`].
    Strong,
    /// [`ConsistencyClass::Causal`].
    Causal,
    /// [`ConsistencyClass::BoundedStaleness`].
    BoundedStaleness,
}

impl ClassKind {
    /// Every kind, in display order.
    pub const ALL: [ClassKind; 3] = [
        ClassKind::Strong,
        ClassKind::Causal,
        ClassKind::BoundedStaleness,
    ];

    /// Short name for report tables.
    pub fn name(self) -> &'static str {
        match self {
            ClassKind::Strong => "strong",
            ClassKind::Causal => "causal",
            ClassKind::BoundedStaleness => "bounded",
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            ClassKind::Strong => 0,
            ClassKind::Causal => 1,
            ClassKind::BoundedStaleness => 2,
        }
    }
}

impl fmt::Display for ClassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_class() {
        assert_eq!(ConsistencyClass::Strong.kind(), ClassKind::Strong);
        assert_eq!(ConsistencyClass::Causal(SeqNo(7)).kind(), ClassKind::Causal);
        assert_eq!(
            ConsistencyClass::BoundedStaleness(Duration::from_millis(5)).kind(),
            ClassKind::BoundedStaleness
        );
        for (i, kind) in ClassKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ClassKind::Strong.to_string(), "strong");
        assert_eq!(
            ConsistencyClass::Causal(SeqNo(3)).to_string(),
            "causal(seq3)"
        );
        assert!(ConsistencyClass::BoundedStaleness(Duration::from_millis(1))
            .to_string()
            .starts_with("bounded-staleness"));
    }
}
