//! The read-serving layer: the first client-facing surface over the fleet.
//!
//! The paper's backups exist to *serve reads* — C5 keeps clones fresh
//! precisely so read traffic can be offloaded from the primary (Section 2.1's
//! read-mostly tier). The rest of this workspace builds and measures the
//! clones; this crate is the layer a client actually talks to:
//!
//! * [`ConsistencyClass`] names the guarantee each read needs — `Strong`
//!   (primary-verified), `Causal` (covers a commit token), or
//!   `BoundedStaleness` (freshness within a wall-clock bound, mapped onto
//!   the replicas' lag-tracker estimates).
//! * [`ReadSession`] carries causal tokens from primary commits
//!   (`TplEngine::execute_with_token`) and enforces **read-your-writes** and
//!   **monotonic reads** across replica switches: every read is served at a
//!   cut covering the session's floor, waiting (bounded) or re-routing until
//!   some replica's exposed cut covers it.
//! * [`ReadOnlyTxn`] pins one transaction-aligned view for multi-key reads —
//!   batched point reads and table scans all observe a single cut (a single
//!   cut *vector* on sharded replicas, including cross-shard scans).
//! * [`ReadRouter`] load-balances sessions across the 1→N fan-out fleet by
//!   per-replica exposed-cut freshness and in-flight load, and reports
//!   per-class throughput, latency percentiles, block time, and observed
//!   staleness ([`ClassStats`]).
//!
//! Everything is written against
//! [`ClonedConcurrencyControl`](c5_core::replica::ClonedConcurrencyControl),
//! so any protocol in the workspace — C5 in either mode, the sharded
//! replica, or a baseline — can serve the fleet.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod consistency;
pub mod metrics;
pub mod router;
pub mod session;
pub mod txn;

pub use consistency::{ClassKind, ConsistencyClass};
pub use metrics::ClassStats;
pub use router::{PrimaryFrontier, ReadRouter, ReplicaStatus};
pub use session::{ReadSession, SessionRead};
pub use txn::ReadOnlyTxn;
