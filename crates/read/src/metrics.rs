//! Per-consistency-class read metrics.
//!
//! The router buckets every read by its [`ClassKind`] and tracks counters
//! plus two sampled distributions: end-to-end read latency (routing + any
//! blocking + the storage read) and the observed staleness of the serving
//! replica at the moment the read was pinned. Percentile summaries reuse the
//! checked nearest-rank [`LagStats`] machinery from `c5-core`, so read
//! latency and replication lag are reported with identical statistics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use c5_core::lag::LagStats;

use crate::consistency::ClassKind;

/// One class's counters and reservoirs.
#[derive(Debug, Default)]
struct ClassMetrics {
    reads: AtomicU64,
    hits: AtomicU64,
    txns: AtomicU64,
    blocked: AtomicU64,
    block_nanos: AtomicU64,
    timeouts: AtomicU64,
    /// Drives the 1-in-N sampling of the reservoirs below.
    sample_clock: AtomicU64,
    latency_ms: Mutex<Vec<f64>>,
    staleness_ms: Mutex<Vec<f64>>,
}

/// All classes' metrics, owned by the router.
#[derive(Debug)]
pub(crate) struct RouterMetrics {
    classes: [ClassMetrics; 3],
    sample_every: u64,
}

impl RouterMetrics {
    pub(crate) fn new(sample_every: u64) -> Self {
        Self {
            classes: Default::default(),
            sample_every,
        }
    }

    fn class(&self, kind: ClassKind) -> &ClassMetrics {
        &self.classes[kind.index()]
    }

    /// Records one served read. `staleness_ms` is evaluated *only* on
    /// sampled ticks — computing it costs a frontier probe or a fleet
    /// sweep, which must stay off the unsampled hot path — and may return
    /// `None` when the serving replica's staleness was unbounded.
    pub(crate) fn record_read(
        &self,
        kind: ClassKind,
        latency: Duration,
        blocked: Duration,
        staleness_ms: impl FnOnce() -> Option<f64>,
        hit: bool,
    ) {
        let class = self.class(kind);
        class.reads.fetch_add(1, Ordering::Relaxed);
        if hit {
            class.hits.fetch_add(1, Ordering::Relaxed);
        }
        if !blocked.is_zero() {
            class.blocked.fetch_add(1, Ordering::Relaxed);
            class
                .block_nanos
                .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
        }
        let tick = class.sample_clock.fetch_add(1, Ordering::Relaxed);
        if tick % self.sample_every == 0 {
            class.latency_ms.lock().push(latency.as_secs_f64() * 1e3);
            if let Some(staleness) = staleness_ms() {
                class.staleness_ms.lock().push(staleness);
            }
        }
    }

    /// Records one opened read-only transaction (its pin cost counts like a
    /// read's; the reads it performs are recorded individually).
    pub(crate) fn record_txn(&self, kind: ClassKind, latency: Duration, blocked: Duration) {
        self.class(kind).txns.fetch_add(1, Ordering::Relaxed);
        // An opened transaction is not itself a row read; count only its
        // blocking and latency so pin cost is visible per class.
        let class = self.class(kind);
        if !blocked.is_zero() {
            class.blocked.fetch_add(1, Ordering::Relaxed);
            class
                .block_nanos
                .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
        }
        let tick = class.sample_clock.fetch_add(1, Ordering::Relaxed);
        if tick % self.sample_every == 0 {
            class.latency_ms.lock().push(latency.as_secs_f64() * 1e3);
        }
    }

    /// Records one read inside an already-pinned read-only transaction.
    pub(crate) fn record_txn_read(&self, kind: ClassKind, hit: bool) {
        self.record_txn_reads(kind, 1, hit as u64);
    }

    /// Records a batch of reads (a `get_many` or a scan) inside an
    /// already-pinned read-only transaction: two increments total, however
    /// large the batch.
    pub(crate) fn record_txn_reads(&self, kind: ClassKind, reads: u64, hits: u64) {
        let class = self.class(kind);
        class.reads.fetch_add(reads, Ordering::Relaxed);
        class.hits.fetch_add(hits, Ordering::Relaxed);
    }

    /// Records a read that gave up waiting.
    pub(crate) fn record_timeout(&self, kind: ClassKind, blocked: Duration) {
        let class = self.class(kind);
        class.timeouts.fetch_add(1, Ordering::Relaxed);
        class.blocked.fetch_add(1, Ordering::Relaxed);
        class
            .block_nanos
            .fetch_add(blocked.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Snapshot of one class's statistics.
    pub(crate) fn stats(&self, kind: ClassKind) -> ClassStats {
        let class = self.class(kind);
        ClassStats {
            kind,
            reads: class.reads.load(Ordering::Relaxed),
            hits: class.hits.load(Ordering::Relaxed),
            txns: class.txns.load(Ordering::Relaxed),
            blocked: class.blocked.load(Ordering::Relaxed),
            block_nanos: class.block_nanos.load(Ordering::Relaxed),
            timeouts: class.timeouts.load(Ordering::Relaxed),
            latency: LagStats::from_millis(class.latency_ms.lock().clone()),
            staleness: LagStats::from_millis(class.staleness_ms.lock().clone()),
        }
    }
}

/// A snapshot of one consistency class's read statistics.
#[derive(Debug, Clone)]
pub struct ClassStats {
    /// Which class this summarizes.
    pub kind: ClassKind,
    /// Point reads served (including reads inside read-only transactions).
    pub reads: u64,
    /// Reads that found a live row.
    pub hits: u64,
    /// Read-only transactions opened.
    pub txns: u64,
    /// Reads/transaction-opens that had to block for a fresh-enough replica.
    pub blocked: u64,
    /// Total time spent blocked, in nanoseconds.
    pub block_nanos: u64,
    /// Reads that gave up waiting ([`c5_common::Error::ReadTimeout`]).
    pub timeouts: u64,
    /// Sampled end-to-end read latency distribution (milliseconds).
    pub latency: Option<LagStats>,
    /// Sampled observed staleness of the serving replica (milliseconds).
    pub staleness: Option<LagStats>,
}

impl ClassStats {
    /// Reads per second over `wall`.
    pub fn throughput(&self, wall: Duration) -> f64 {
        if wall.is_zero() {
            0.0
        } else {
            self.reads as f64 / wall.as_secs_f64()
        }
    }

    /// Mean block time per *blocked* operation, in milliseconds.
    pub fn mean_block_ms(&self) -> f64 {
        if self.blocked == 0 {
            0.0
        } else {
            self.block_nanos as f64 / self.blocked as f64 / 1e6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_reservoirs_accumulate() {
        let m = RouterMetrics::new(1);
        m.record_read(
            ClassKind::Causal,
            Duration::from_millis(2),
            Duration::from_millis(1),
            || Some(0.5),
            true,
        );
        m.record_read(
            ClassKind::Causal,
            Duration::from_millis(4),
            Duration::ZERO,
            || None,
            false,
        );
        m.record_txn(ClassKind::Causal, Duration::from_millis(1), Duration::ZERO);
        m.record_txn_read(ClassKind::Causal, true);
        m.record_timeout(ClassKind::Strong, Duration::from_millis(10));

        let causal = m.stats(ClassKind::Causal);
        assert_eq!(causal.reads, 3);
        assert_eq!(causal.hits, 2);
        assert_eq!(causal.txns, 1);
        assert_eq!(causal.blocked, 1);
        assert_eq!(causal.timeouts, 0);
        let latency = causal.latency.expect("sampled everything");
        assert_eq!(latency.count, 3);
        assert_eq!(causal.staleness.expect("one staleness sample").count, 1);
        assert!(causal.throughput(Duration::from_secs(1)) > 0.0);
        assert!(causal.mean_block_ms() >= 1.0);

        let strong = m.stats(ClassKind::Strong);
        assert_eq!(strong.timeouts, 1);
        assert_eq!(strong.blocked, 1);

        let bounded = m.stats(ClassKind::BoundedStaleness);
        assert_eq!(bounded.reads, 0);
        assert!(bounded.latency.is_none());
        assert_eq!(bounded.throughput(Duration::ZERO), 0.0);
        assert_eq!(bounded.mean_block_ms(), 0.0);
    }

    #[test]
    fn sampling_stride_thins_the_reservoirs() {
        let m = RouterMetrics::new(4);
        // Count how often the lazy staleness probe actually runs: only on
        // sampled ticks, never on the unsampled hot path.
        let probes = AtomicU64::new(0);
        for _ in 0..16 {
            m.record_read(
                ClassKind::Strong,
                Duration::from_millis(1),
                Duration::ZERO,
                || {
                    probes.fetch_add(1, Ordering::Relaxed);
                    Some(1.0)
                },
                true,
            );
        }
        assert_eq!(probes.load(Ordering::Relaxed), 4);
        let stats = m.stats(ClassKind::Strong);
        assert_eq!(stats.reads, 16);
        assert_eq!(stats.latency.unwrap().count, 4);
    }
}
